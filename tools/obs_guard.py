#!/usr/bin/env python3
"""Observability guard for the flight-recorder smoke run.

Usage: obs_guard.py ARTIFACT.json TRACE.json

ARTIFACT.json is a `loadgen --json` artifact produced in in-process
mode with `--trace-out TRACE.json`, so the Chrome-trace file holds the
server-side span ring of the same process that served the load. The
guard exits non-zero when:

  * the trace is not well-formed Chrome trace-event JSON, or any
    event's `args.parent` link points at a span id that is not in the
    trace (a broken tree);
  * the number of root `request` spans (parent 0, `args.request_id`
    set) does not cover every job the artifact reports as executed —
    with a clean run (no timeouts/errors) the counts must match
    exactly;
  * any root `request` span has a zero duration, lacks a request id,
    or is missing `map` / `verify` / `estimate` descendants (the
    per-request pipeline stages);
  * no root span carries the full cold-leader tree: `synthesize` with
    nested `flow/*` passes, and `map` with nested `map/*` phases, all
    with non-zero durations (warm cache hits legitimately skip
    synthesis, but at least one request per run must have built the
    entry);
  * the scraped Prometheus frame embedded in the artifact (`"metrics"`)
    is missing, or its `synthd_request_latency_us` histogram count is
    zero or disagrees with the artifact's `jobs_ok` (the histogram is
    observed exactly once per job served), or `synthd_queue_wait_us`
    saw fewer observations than jobs served, or any histogram's
    cumulative buckets decrease (a malformed exposition).
"""

import json
import sys


def metric_value(metrics, name):
    """The value of a plain `name N` sample line, or None."""
    for line in metrics.splitlines():
        parts = line.split()
        if len(parts) == 2 and parts[0] == name:
            return float(parts[1])
    return None


def histogram_buckets(metrics, name):
    """[(le, cumulative_count)] for `name_bucket{le="..."}` lines."""
    buckets = []
    prefix = f'{name}_bucket{{le="'
    for line in metrics.splitlines():
        if line.startswith(prefix):
            le, count = line[len(prefix) :].split('"} ')
            buckets.append((le, float(count)))
    return buckets


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        artifact = json.load(f)
    with open(sys.argv[2]) as f:
        trace = json.load(f)
    failures = []

    # --- span tree ---------------------------------------------------------
    events = trace["traceEvents"]
    spans = {e["args"]["id"]: e for e in events if e.get("ph") == "X"}
    children = {}
    for event in events:
        parent = event["args"]["parent"]
        if parent != 0 and parent not in spans:
            failures.append(
                f"event {event['name']!r} links to unknown parent span {parent}"
            )
        children.setdefault(parent, []).append(event)

    def descendants(span_id):
        frontier, out = [span_id], []
        while frontier:
            for event in children.get(frontier.pop(), []):
                out.append(event)
                if event.get("ph") == "X":
                    frontier.append(event["args"]["id"])
        return out

    roots = [
        e
        for e in events
        if e.get("ph") == "X"
        and e["name"] == "request"
        and e["args"]["parent"] == 0
    ]
    executed = (
        artifact["jobs_ok"] + artifact["jobs_timeout"] + artifact["jobs_error"]
    )
    if artifact["jobs_timeout"] == 0 and artifact["jobs_error"] == 0:
        if len(roots) != executed:
            failures.append(
                f"{len(roots)} request root spans != {executed} executed jobs"
            )
    elif len(roots) < artifact["jobs_ok"]:
        failures.append(
            f"{len(roots)} request root spans < {artifact['jobs_ok']} jobs ok"
        )

    cold_leaders = 0
    for root in roots:
        rid = root["args"].get("request_id")
        if not rid:
            failures.append("a request root span carries no request_id")
            continue
        if root.get("dur", 0) <= 0:
            failures.append(f"request {rid}: zero-duration root span")
        tree = descendants(root["args"]["id"])
        names = [e["name"] for e in tree]
        for stage in ("map", "verify", "estimate"):
            if stage not in names:
                failures.append(f"request {rid}: no `{stage}` span under the root")
        has_flow = any(n.startswith("flow/") for n in names)
        map_phases = [
            e for e in tree if e["name"].startswith("map/") and e.get("ph") == "X"
        ]
        if "synthesize" in names and has_flow and map_phases:
            if all(
                e.get("dur", 0) > 0
                for e in tree
                if e["name"] in ("synthesize", "map")
            ):
                cold_leaders += 1
    if roots and cold_leaders == 0:
        failures.append(
            "no request span owns the full cold-leader tree "
            "(synthesize + flow/* + map/* with non-zero durations)"
        )

    # --- metrics frame -----------------------------------------------------
    metrics = artifact.get("metrics")
    if not metrics:
        failures.append("artifact carries no scraped Prometheus metrics frame")
        metrics = ""
    latency_count = metric_value(metrics, "synthd_request_latency_us_count")
    if not latency_count:
        failures.append("synthd_request_latency_us_count is missing or zero")
    elif latency_count != artifact["jobs_ok"]:
        failures.append(
            f"latency histogram count {latency_count:.0f} != "
            f"jobs_ok {artifact['jobs_ok']} (observed once per job served)"
        )
    queue_count = metric_value(metrics, "synthd_queue_wait_us_count")
    if queue_count is None or queue_count < artifact["jobs_ok"]:
        failures.append(
            f"synthd_queue_wait_us_count {queue_count} < jobs_ok "
            f"{artifact['jobs_ok']} (observed once per executed job)"
        )
    for name in ("synthd_request_latency_us", "synthd_queue_wait_us"):
        buckets = histogram_buckets(metrics, name)
        counts = [count for _, count in buckets]
        if counts != sorted(counts):
            failures.append(f"{name}: cumulative bucket counts decrease")
        if buckets and buckets[-1][0] != "+Inf":
            failures.append(f"{name}: final bucket is not +Inf")

    if failures:
        print("OBSERVABILITY GUARD FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"obs guard: {len(roots)} request span trees ({cold_leaders} cold leaders), "
        f"{len(spans)} spans, latency histogram count {latency_count:.0f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
