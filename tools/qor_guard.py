#!/usr/bin/env python3
"""QoR regression guard for the committed Table-1 baseline.

Usage: qor_guard.py COMMITTED.json REGENERATED.json

Compares the regenerated `table1 --json` artifact against the committed
baseline and exits non-zero when any circuit regresses in synthesis
quality (`and_count`) or mapped size (`gates`, any family). Also checks
the choice-mapping invariant: wherever a result records
`gates_no_choice`, the kept mapping must use no more gates than the
no-choice mapping would have.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        committed = json.load(f)
    with open(sys.argv[2]) as f:
        regenerated = json.load(f)

    base = {c["name"]: c for c in committed["circuits"]}
    families = regenerated.get("families", [])
    failures = []
    regenerated_names = {c["name"] for c in regenerated["circuits"]}
    for name in base:
        if name not in regenerated_names:
            failures.append(f"{name}: missing from the regenerated artifact (coverage lost)")
    print(f"{'circuit':<8} {'ands':>12} " + " ".join(f"{fam:>28}" for fam in families))
    for circuit in regenerated["circuits"]:
        name = circuit["name"]
        if name not in base:
            failures.append(f"{name}: not in the committed baseline")
            continue
        ref = base[name]
        ands, ref_ands = circuit["and_count"], ref["and_count"]
        if ands > ref_ands:
            failures.append(f"{name}: and_count regressed {ref_ands} -> {ands}")
        if len(circuit["results"]) < len(ref["results"]):
            failures.append(
                f"{name}: only {len(circuit['results'])} of {len(ref['results'])} "
                "family results present"
            )
        cells = [f"{ands:>5} (ref {ref_ands:>5})"]
        for fam, res, ref_res in zip(families, circuit["results"], ref["results"]):
            gates, ref_gates = res["gates"], ref_res["gates"]
            if gates > ref_gates:
                failures.append(f"{name}/{fam}: gates regressed {ref_gates} -> {gates}")
            plain = res.get("gates_no_choice")
            if plain is not None and gates > plain:
                failures.append(
                    f"{name}/{fam}: choice mapping kept a worse cover ({gates} > {plain})"
                )
            cells.append(f"{gates:>6} (ref {ref_gates:>6}, Δ{gates - ref_gates:+d})")
        print(f"{name:<8} {cells[0]:>12} " + " ".join(f"{c:>28}" for c in cells[1:]))

    if failures:
        print("\nQoR regressions detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nno QoR regressions: every circuit's and_count and gates are <= the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
