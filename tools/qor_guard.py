#!/usr/bin/env python3
"""QoR regression guard for the committed Table-1 baseline.

Usage: qor_guard.py COMMITTED.json REGENERATED.json

Compares the regenerated `table1 --json` artifact against the committed
baseline and exits non-zero when any circuit regresses in synthesis
quality (`and_count`), mapped size (`gates`, any family), or mapped
delay (`delay_s` beyond a 0.5% float-noise floor, any family).

Also checks the portfolio invariants recorded in the artifact itself,
keyed to the objective it was generated under: wherever a result records
`delay_s_no_choice` under the delay objective, the kept mapping must be
no slower than the no-choice mapping; under other objectives the
`gates_no_choice` bound applies instead (the delay portfolio arbitrates
on STA critical path, so gate counts may go either way there — the delay
guard above still bounds total size drift against the baseline).
"""

import json
import sys

# Relative headroom for delay comparisons: STA sums per-net delays, so
# noise at this level is summation-order jitter, not a regression.
DELAY_TOL = 0.005

# Under the delay objective gate counts are a tie-break, not the
# arbitration metric; allow this much per-circuit size drift before
# calling it a regression.
GATES_TOL_DELAY = 0.02


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        committed = json.load(f)
    with open(sys.argv[2]) as f:
        regenerated = json.load(f)

    objective = regenerated.get("objective", "delay")
    base = {c["name"]: c for c in committed["circuits"]}
    families = regenerated.get("families", [])
    failures = []
    regenerated_names = {c["name"] for c in regenerated["circuits"]}
    for name in base:
        if name not in regenerated_names:
            failures.append(f"{name}: missing from the regenerated artifact (coverage lost)")
    print(f"{'circuit':<8} {'ands':>12} " + " ".join(f"{fam:>42}" for fam in families))
    for circuit in regenerated["circuits"]:
        name = circuit["name"]
        if name not in base:
            failures.append(f"{name}: not in the committed baseline")
            continue
        ref = base[name]
        ands, ref_ands = circuit["and_count"], ref["and_count"]
        if ands > ref_ands:
            failures.append(f"{name}: and_count regressed {ref_ands} -> {ands}")
        if len(circuit["results"]) < len(ref["results"]):
            failures.append(
                f"{name}: only {len(circuit['results'])} of {len(ref['results'])} "
                "family results present"
            )
        cells = [f"{ands:>5} (ref {ref_ands:>5})"]
        for fam, res, ref_res in zip(families, circuit["results"], ref["results"]):
            gates, ref_gates = res["gates"], ref_res["gates"]
            gates_cap = (
                ref_gates * (1 + GATES_TOL_DELAY) if objective == "delay" else ref_gates
            )
            if gates > gates_cap:
                failures.append(f"{name}/{fam}: gates regressed {ref_gates} -> {gates}")
            delay, ref_delay = res["delay_s"], ref_res["delay_s"]
            if delay > ref_delay * (1 + DELAY_TOL):
                failures.append(
                    f"{name}/{fam}: delay_s regressed {ref_delay:.4e} -> {delay:.4e} "
                    f"({delay / ref_delay - 1:+.2%})"
                )
            plain_gates = res.get("gates_no_choice")
            plain_delay = res.get("delay_s_no_choice")
            if objective == "delay":
                if plain_delay is not None and delay > plain_delay * (1 + 1e-9):
                    failures.append(
                        f"{name}/{fam}: choice mapping kept a slower cover "
                        f"({delay:.4e} > {plain_delay:.4e})"
                    )
            elif plain_gates is not None and gates > plain_gates:
                failures.append(
                    f"{name}/{fam}: choice mapping kept a worse cover ({gates} > {plain_gates})"
                )
            cells.append(
                f"{gates:>6} (ref {ref_gates:>6}, Δ{gates - ref_gates:+d}) "
                f"d{delay / ref_delay - 1:+.2%}"
            )
        print(f"{name:<8} {cells[0]:>12} " + " ".join(f"{c:>42}" for c in cells[1:]))

    if failures:
        print("\nQoR regressions detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        "\nno QoR regressions: every circuit's and_count, gates and delay_s "
        "are within tolerance of the baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
