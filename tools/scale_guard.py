#!/usr/bin/env python3
"""Throughput regression guard for the committed scale baseline.

Usage: scale_guard.py COMMITTED.json REGENERATED.json

Compares the regenerated `scale --json` artifact against the committed
BENCH_scale.json and exits non-zero when:

  * a (family, size) workload present in the committed baseline is
    missing from the regenerated run (coverage lost) — only for sizes
    the regenerated run actually attempted, so CI can measure a reduced
    size set without tripping the guard;
  * the QoR anchors drift: `ands`, `synth_ands`, or `gates` differ at
    all (the engine is deterministic, so any drift is a real change);
  * serial throughput collapses: regenerated serial nodes/sec falls
    below NOISE_FLOOR x the committed serial number for the same
    (family, size, phase). The floor is deliberately loose (3x) because
    CI runners are noisy and share cores; the guard catches order-of-
    magnitude regressions (an accidentally quadratic loop, a lost
    cache), not few-percent jitter;
  * parallelism breaks down: when the regenerated run used more than
    one thread, the parallel synth throughput at the largest measured
    size must reach at least MIN_PARALLEL_FRACTION of serial — parallel
    never being allowed to cost more than a modest overhead over
    serial. (The >= 2x speedup acceptance target is asserted by the
    multi-core perf runner, not here, so a 1-core container can still
    run the guard.)
  * the incremental cut database is silently bypassed: on a multi-pass
    flow (the artifact's flow script has more than one step) every
    regenerated row must report profile.cuts_reused > 0 — pass 2..n of
    the script must serve at least some cut sets from the database.

Rows may carry fields this guard does not know about (`spans_top`, the
per-row top-self-time span attribution, is informational); only the
fields named above are compared, so new row fields never trip the
guard.
"""

import json
import sys

NOISE_FLOOR = 3.0
MIN_PARALLEL_FRACTION = 0.9
PHASES = ("synth", "dch", "map")


def key(result):
    return (result["family"], result["target"])


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        committed = json.load(f)
    with open(sys.argv[2]) as f:
        regenerated = json.load(f)

    base = {key(r): r for r in committed["results"]}
    regen = {key(r): r for r in regenerated["results"]}
    attempted_sizes = set(regenerated["sizes"])
    failures = []

    for (family, size), ref in sorted(base.items()):
        if size not in attempted_sizes:
            continue
        if (family, size) not in regen:
            failures.append(f"{family}/{size}: missing from the regenerated artifact")

    print(f"{'workload':<14} {'phase':<6} {'baseline n/s':>14} {'current n/s':>14} {'ratio':>7}")
    for (family, size), cur in sorted(regen.items()):
        ref = base.get((family, size))
        if ref is None:
            failures.append(f"{family}/{size}: not in the committed baseline")
            continue
        for anchor in ("ands", "synth_ands", "gates"):
            if cur[anchor] != ref[anchor]:
                failures.append(
                    f"{family}/{size}: {anchor} drifted {ref[anchor]} -> {cur[anchor]} "
                    "(the engine is deterministic; this is a functional change)"
                )
        for phase in PHASES:
            ref_nps = ref[phase]["serial_nodes_per_sec"]
            cur_nps = cur[phase]["serial_nodes_per_sec"]
            ratio = cur_nps / ref_nps if ref_nps > 0 else float("inf")
            print(f"{family}/{size:<8} {phase:<6} {ref_nps:>14.0f} {cur_nps:>14.0f} {ratio:>6.2f}x")
            if cur_nps * NOISE_FLOOR < ref_nps:
                failures.append(
                    f"{family}/{size} {phase}: serial throughput collapsed "
                    f"{ref_nps:.0f} -> {cur_nps:.0f} nodes/sec (> {NOISE_FLOOR}x slower)"
                )

    multi_pass = len([s for s in regenerated.get("flow", "").split(";") if s.strip()]) > 1
    if multi_pass:
        for (family, size), cur in sorted(regen.items()):
            reused = cur.get("profile", {}).get("cuts_reused")
            if reused is None:
                failures.append(
                    f"{family}/{size}: regenerated row carries no profile.cuts_reused "
                    "(profile emission is part of the artifact contract)"
                )
            elif reused <= 0:
                failures.append(
                    f"{family}/{size}: cuts_reused = {reused} on a multi-pass flow — "
                    "the incremental cut database is being bypassed"
                )

    if regenerated.get("threads", 1) > 1 and regen:
        largest = max(size for (_, size) in regen)
        for (family, size), cur in sorted(regen.items()):
            if size != largest:
                continue
            serial = cur["synth"]["serial_nodes_per_sec"]
            parallel = cur["synth"]["parallel_nodes_per_sec"]
            if parallel < MIN_PARALLEL_FRACTION * serial:
                failures.append(
                    f"{family}/{size} synth: parallel throughput {parallel:.0f} fell below "
                    f"{MIN_PARALLEL_FRACTION}x serial {serial:.0f} on {regenerated['threads']} threads"
                )

    if failures:
        print("\nTHROUGHPUT GUARD FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nscale guard: {len(regen)} workloads within noise of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
