#!/usr/bin/env python3
"""Health guard for a `loadgen --json` serve_load artifact.

Usage: serve_guard.py ARTIFACT.json [--p99-ms BOUND] [--min-speedup X]

Checks a BENCH_serve.json-shaped artifact (the `loadgen` binary's
output) and exits non-zero when the synthd run it records was unhealthy:

  * any job failed, timed out, or diverged (`jobs_error`,
    `jobs_timeout`, `jobs_diverged` must all be zero — synthd is
    deterministic, so a single divergent response is a real bug, not
    noise);
  * the warm cache never engaged: with `repeat` > 1 every circuit after
    wave 0 should hit, so `server.cache_hits` must be positive and
    `server.cache_misses` must not exceed the unique-job count
    (circuits x families) — more misses means the single-flight
    dedup or the content key broke;
  * one-time state was rebuilt: `server.characterizations` and
    `server.match_cache_builds` above one per gate family, or
    `server.rewrite_library_builds` above one, mean the engine-level
    caches stopped amortizing (the whole point of the daemon);
  * tail latency blew past the bound (`--p99-ms`, default 60000 — CI
    runners are slow and share cores, so the default only catches
    hangs; perf runners pass a tight bound);
  * batched throughput fell below the serial one-shot baseline
    (`--min-speedup`, default 1.0): a warm server that is slower than
    cold per-job processes is a regression by definition.
"""

import json
import sys

FAMILIES = 3  # cmos, ambipolar-static, ambipolar-dynamic


def main() -> int:
    args = sys.argv[1:]
    p99_bound_ms = 60_000.0
    min_speedup = 1.0
    paths = []
    i = 0
    while i < len(args):
        if args[i] == "--p99-ms":
            p99_bound_ms = float(args[i + 1])
            i += 2
        elif args[i] == "--min-speedup":
            min_speedup = float(args[i + 1])
            i += 2
        else:
            paths.append(args[i])
            i += 1
    if len(paths) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(paths[0]) as f:
        doc = json.load(f)
    if doc.get("artifact") != "serve_load":
        print(f"not a serve_load artifact: {paths[0]}", file=sys.stderr)
        return 2

    server = doc["server"]
    failures = []

    for counter in ("jobs_error", "jobs_timeout", "jobs_diverged"):
        if doc[counter] != 0:
            failures.append(f"{counter} = {doc[counter]} (must be 0)")

    unique_jobs = len(doc["circuits"]) * FAMILIES
    if doc["repeat"] > 1:
        if server["cache_hits"] <= 0:
            failures.append(
                f"cache_hits = {server['cache_hits']} on a repeat={doc['repeat']} "
                "run — the warm cache never engaged"
            )
        if server["cache_misses"] > unique_jobs:
            failures.append(
                f"cache_misses = {server['cache_misses']} > {unique_jobs} unique "
                "jobs — single-flight dedup or the content key broke"
            )

    if server["characterizations"] > FAMILIES:
        failures.append(
            f"characterizations = {server['characterizations']} > {FAMILIES} — "
            "per-family libraries rebuilt"
        )
    if server["match_cache_builds"] > FAMILIES:
        failures.append(
            f"match_cache_builds = {server['match_cache_builds']} > {FAMILIES} — "
            "NPN match caches rebuilt"
        )
    if server["rewrite_library_builds"] > 1:
        failures.append(
            f"rewrite_library_builds = {server['rewrite_library_builds']} > 1 — "
            "the rewrite library rebuilt"
        )

    p99 = doc["latency_ms"]["p99"]
    if p99 > p99_bound_ms:
        failures.append(f"p99 latency {p99:.0f} ms exceeds the {p99_bound_ms:.0f} ms bound")

    speedup = doc.get("speedup_vs_serial")
    if speedup is not None and speedup < min_speedup:
        failures.append(
            f"speedup_vs_serial = {speedup:.2f} < {min_speedup:.2f} — the warm "
            "server is slower than cold one-shot runs"
        )

    print(
        f"serve guard: {doc['jobs_ok']}/{doc['jobs_total']} jobs ok, "
        f"p50 {doc['latency_ms']['p50']:.0f} ms, p99 {p99:.0f} ms, "
        f"cache {server['cache_hits']} hits / {server['cache_misses']} misses"
        + (f", speedup {speedup:.2f}x vs serial" if speedup is not None else "")
    )
    if failures:
        print("\nSERVE GUARD FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
