//! Umbrella crate for the DATE 2010 ambipolar-CNTFET power reproduction.
//!
//! This crate hosts the repository's runnable [examples](https://doc.rust-lang.org/cargo/reference/cargo-targets.html#examples)
//! and cross-crate integration tests. The actual functionality lives in the
//! workspace crates, re-exported here for convenience:
//!
//! * [`ambipolar`] — the experiment pipeline (characterize → synthesize → map → estimate)
//! * [`device`] — CNTFET / CMOS compact device models
//! * [`spice_lite`] — the nonlinear DC circuit solver used for leakage characterization
//! * [`gate_lib`] — the 46-gate static ambipolar transmission-gate library
//! * [`charlib`] — power characterization (I_off pattern classification, activity factors)
//! * [`aig`] / [`techmap`] — logic synthesis and technology mapping
//! * [`sat`] — the CDCL solver behind the equivalence-checking subsystem
//! * [`bench_circuits`] — generators for the 12 Table-1 benchmark stand-ins
//! * [`power_est`] — random-pattern power estimation

pub use aig;
pub use ambipolar;
pub use bench_circuits;
pub use charlib;
pub use device;
pub use gate_lib;
pub use logic;
pub use power_est;
pub use sat;
pub use spice_lite;
pub use techmap;
