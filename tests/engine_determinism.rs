//! Cross-crate determinism contract of the experiment engine:
//!
//! * a fixed seed yields an identical [`power_est::ActivityReport`] on
//!   every run, and the parallel chunked simulation is bit-identical to
//!   the serial reference;
//! * the engine's Table-1 driver is deterministic and characterizes each
//!   gate family exactly once per process, however many runs share it.

use ambipolar::engine;
use ambipolar::experiments::Table1Config;
use ambipolar::pipeline::PipelineConfig;
use gate_lib::GateFamily;
use power_est::{simulate_activity, simulate_activity_serial, CHUNK_WORDS};
use techmap::{map_aig_with_cache, MapConfig};

fn small_netlist() -> (
    techmap::MappedNetlist,
    &'static charlib::CharacterizedLibrary,
) {
    let bench = bench_circuits::benchmark_by_name("t481").expect("t481 exists");
    let synthesized = aig::synthesize(&bench.aig);
    let lib = engine::library(GateFamily::CntfetGeneralized);
    let cache = engine::match_cache(GateFamily::CntfetGeneralized);
    let mapped = map_aig_with_cache(&synthesized, lib, cache, &MapConfig::default())
        .expect("mapping succeeds");
    (mapped, lib)
}

#[test]
fn same_seed_same_activity_report() {
    let (mapped, lib) = small_netlist();
    let patterns = CHUNK_WORDS * 64 + 4096; // force a multi-chunk run
    let a = simulate_activity(&mapped, lib, patterns, 0xDA7E_2010);
    let b = simulate_activity(&mapped, lib, patterns, 0xDA7E_2010);
    assert_eq!(a, b, "same seed must reproduce the exact report");
    let c = simulate_activity(&mapped, lib, patterns, 0xDA7E_2011);
    assert_ne!(a.toggles, c.toggles, "different seeds must differ");
}

#[test]
fn parallel_simulation_matches_serial_reference() {
    let (mapped, lib) = small_netlist();
    for patterns in [512usize, CHUNK_WORDS * 64 * 2 + 64] {
        for seed in [1u64, 0xBEEF] {
            let par = simulate_activity(&mapped, lib, patterns, seed);
            let ser = simulate_activity_serial(&mapped, lib, patterns, seed);
            assert_eq!(par, ser, "patterns {patterns} seed {seed}");
        }
    }
}

#[test]
fn engine_characterizes_each_family_at_most_once() {
    // Warm all three; repeated access from any call path must not add
    // characterization runs.
    let libs = engine::libraries();
    let after_warm = engine::characterization_count();
    assert!(after_warm <= GateFamily::ALL.len());

    let config = Table1Config {
        pipeline: PipelineConfig {
            patterns: 1024,
            ..PipelineConfig::default()
        },
    };
    let names = Some(&["t481"][..]);
    let first = engine::run_table1_subset(&config, names).expect("mapping succeeds");
    let second = engine::run_table1_subset(&config, names).expect("mapping succeeds");
    assert_eq!(
        engine::characterization_count(),
        after_warm,
        "Table-1 runs must reuse the cached libraries"
    );
    // Same &'static instances on every access.
    for (a, b) in libs.iter().zip(engine::libraries()) {
        assert!(std::ptr::eq(*a, b));
    }
    // Deterministic end to end: identical rendered tables.
    assert_eq!(format!("{first}"), format!("{second}"));
}

#[test]
fn engine_table_matches_serial_reference_table() {
    let config = Table1Config {
        pipeline: PipelineConfig {
            patterns: 1024,
            ..PipelineConfig::default()
        },
    };
    let names = Some(&["t481", "C1355"][..]);
    let par = engine::run_table1_subset(&config, names).expect("mapping succeeds");
    let ser = engine::run_table1_serial(&config, names).expect("mapping succeeds");
    assert_eq!(par.rows.len(), 2);
    assert_eq!(format!("{par}"), format!("{ser}"));
}
