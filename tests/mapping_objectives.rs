//! Full-catalog mapping coverage: every Table-1 benchmark × every gate
//! family × every mapping objective must produce a `verify_mapping`-clean
//! netlist, all through the engine's shared NPN match caches.

use ambipolar::engine;
use gate_lib::GateFamily;
use rayon::prelude::*;
use techmap::{map_aig_with_cache, verify_mapping, MapConfig, Objective};

#[test]
fn every_circuit_family_objective_triple_verifies() {
    let benches = bench_circuits::table1_benchmarks();
    // Synthesize each benchmark once (in parallel); the mapping matrix
    // below reuses the synthesized networks.
    let synthesized: Vec<(String, aig::Aig)> = benches
        .par_iter()
        .map(|bench| (bench.name.to_owned(), aig::synthesize(&bench.aig)))
        .collect();

    let jobs: Vec<(usize, GateFamily, Objective)> = (0..synthesized.len())
        .flat_map(|ci| {
            GateFamily::ALL.into_iter().flat_map(move |family| {
                Objective::ALL
                    .into_iter()
                    .map(move |objective| (ci, family, objective))
            })
        })
        .collect();
    assert_eq!(jobs.len(), synthesized.len() * 9);

    let failures: Vec<String> = jobs
        .into_par_iter()
        .map(|(ci, family, objective)| {
            let (name, aig) = &synthesized[ci];
            let library = engine::library(family);
            let cache = engine::match_cache(family);
            let config = MapConfig::for_objective(objective);
            let mapped = match map_aig_with_cache(aig, library, cache, &config) {
                Ok(mapped) => mapped,
                Err(e) => return Some(format!("{name}/{family}/{objective}: map error {e}")),
            };
            if mapped.gate_count() == 0 {
                return Some(format!("{name}/{family}/{objective}: empty netlist"));
            }
            if !verify_mapping(aig, &mapped, library, 0x0BEC ^ ci as u64, 8) {
                return Some(format!(
                    "{name}/{family}/{objective}: mapped netlist diverges from the AIG"
                ));
            }
            None
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "{failures:?}");

    // The whole matrix must have shared one match cache per family.
    assert!(
        engine::match_cache_build_count() <= GateFamily::ALL.len(),
        "match caches rebuilt: {}",
        engine::match_cache_build_count()
    );
    assert!(engine::characterization_count() <= GateFamily::ALL.len());
}
