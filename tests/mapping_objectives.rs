//! Full-catalog mapping soundness, *proven*: every Table-1 benchmark ×
//! every gate family × every mapping objective goes through
//! `verify_mapping`, which back-converts the netlist to an AIG and closes
//! the equivalence with SAT — 108 theorems, not 108 samples — all through
//! the engine's shared NPN match caches.

use ambipolar::engine;
use gate_lib::GateFamily;
use rayon::prelude::*;
use techmap::{map_aig_with_cache, verify_mapping, MapConfig, NetRef, Objective, VerifyError};

#[test]
fn every_circuit_family_objective_triple_is_sat_proven() {
    let benches = bench_circuits::table1_benchmarks();
    // Synthesize each benchmark once (in parallel); the mapping matrix
    // below reuses the synthesized networks.
    let synthesized: Vec<(String, aig::Aig)> = benches
        .par_iter()
        .map(|bench| (bench.name.to_owned(), aig::synthesize(&bench.aig)))
        .collect();

    let jobs: Vec<(usize, GateFamily, Objective)> = (0..synthesized.len())
        .flat_map(|ci| {
            GateFamily::ALL.into_iter().flat_map(move |family| {
                Objective::ALL
                    .into_iter()
                    .map(move |objective| (ci, family, objective))
            })
        })
        .collect();
    assert_eq!(jobs.len(), synthesized.len() * 9);

    let failures: Vec<String> = jobs
        .into_par_iter()
        .map(|(ci, family, objective)| {
            let (name, aig) = &synthesized[ci];
            let library = engine::library(family);
            let cache = engine::match_cache(family);
            let config = MapConfig::for_objective(objective);
            let mapped = match map_aig_with_cache(aig, library, cache, &config) {
                Ok(mapped) => mapped,
                Err(e) => return Some(format!("{name}/{family}/{objective}: map error {e}")),
            };
            if mapped.gate_count() == 0 {
                return Some(format!("{name}/{family}/{objective}: empty netlist"));
            }
            // SAT-closed proof (not sampling): Ok(()) is a theorem.
            if let Err(e) = verify_mapping(aig, &mapped, library) {
                return Some(format!("{name}/{family}/{objective}: {e}"));
            }
            None
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "{failures:?}");

    // The whole matrix must have shared one match cache per family.
    assert!(
        engine::match_cache_build_count() <= GateFamily::ALL.len(),
        "match caches rebuilt: {}",
        engine::match_cache_build_count()
    );
    assert!(engine::characterization_count() <= GateFamily::ALL.len());
}

#[test]
fn corrupted_catalog_netlist_is_refuted_with_a_concrete_pattern() {
    // The prover must not be a rubber stamp: corrupt one mapped catalog
    // circuit and demand a counterexample that simulation confirms.
    let bench = bench_circuits::benchmark_by_name("t481").expect("t481");
    let synthesized = aig::synthesize(&bench.aig);
    let library = engine::library(GateFamily::Cmos);
    let cache = engine::match_cache(GateFamily::Cmos);
    let mapped =
        map_aig_with_cache(&synthesized, library, cache, &MapConfig::default()).expect("t481 maps");
    let mut outputs = mapped.outputs().to_vec();
    outputs[0] = NetRef {
        net: outputs[0].net,
        inverted: !outputs[0].inverted,
    };
    let corrupted = techmap::MappedNetlist::new(
        mapped.family,
        mapped.pi_count,
        mapped.instances.clone(),
        outputs,
    );
    let Err(VerifyError::Mismatch(report)) = verify_mapping(&synthesized, &corrupted, library)
    else {
        panic!("corrupted netlist must be refuted with a counterexample");
    };
    assert_eq!(report.inputs.len(), synthesized.input_count());
    assert_ne!(report.expected, report.got);
    // Replay the pattern: the AIG really computes `expected` there.
    let replay = aig::sim::evaluate(&synthesized, &report.inputs);
    assert_eq!(replay[report.output], report.expected);
}
