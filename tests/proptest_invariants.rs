//! Property-based tests over the core data structures and invariants.

use aig::{Aig, Lit};
use charlib::{LeakageSimulator, OffPattern};
use device::TechParams;
use gate_lib::{GateFamily, Literal, SpNetwork};
use logic::npn::{npn_canon, NpnTransform};
use logic::{isop, TruthTable};
use proptest::prelude::*;

/// Strategy: arbitrary truth table of a given arity.
fn tt(n: usize) -> impl Strategy<Value = TruthTable> {
    let limit = if n >= 6 {
        u64::MAX
    } else {
        (1u64 << (1u64 << n)) - 1
    };
    (0..=limit).prop_map(move |bits| TruthTable::from_bits(n, bits))
}

/// Strategy: arbitrary NPN transform of a given arity.
fn transform(n: usize) -> impl Strategy<Value = NpnTransform> {
    (any::<u8>(), any::<bool>(), Just(n)).prop_perturb(|(flips, out, n), mut rng| {
        let mut perm: Vec<u8> = (0..n as u8).collect();
        for i in (1..perm.len()).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            perm.swap(i, j);
        }
        let mut parr = [0u8; 6];
        parr[..n].copy_from_slice(&perm);
        NpnTransform {
            n_vars: n as u8,
            input_flips: flips & ((1 << n) - 1),
            perm: parr,
            output_flip: out,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn npn_canon_is_class_invariant(f in tt(4), t in transform(4)) {
        let g = t.apply(f);
        prop_assert_eq!(npn_canon(f).canonical, npn_canon(g).canonical);
    }

    #[test]
    fn npn_transform_inverse_roundtrip(f in tt(4), t in transform(4)) {
        prop_assert_eq!(t.inverse().apply(t.apply(f)), f);
    }

    #[test]
    fn npn_compose_associates_with_apply(f in tt(3), a in transform(3), b in transform(3)) {
        prop_assert_eq!(b.compose(&a).apply(f), b.apply(a.apply(f)));
    }

    #[test]
    fn npn_canon_transform_round_trips(f in tt(4)) {
        // The canonizing transform maps the original onto the canonical
        // representative, and its inverse maps it back exactly.
        let c = npn_canon(f);
        prop_assert_eq!(c.transform.apply(f), c.canonical);
        prop_assert_eq!(c.transform.inverse().apply(c.canonical), f);
        // apply ∘ inverse is the identity in the other direction too.
        prop_assert_eq!(c.transform.apply(c.transform.inverse().apply(f)), f);
    }

    #[test]
    fn npn_canon_is_a_fixpoint(f in tt(3)) {
        // Canonizing a canonical representative returns it unchanged.
        let c = npn_canon(f).canonical;
        prop_assert_eq!(npn_canon(c).canonical, c);
    }

    #[test]
    fn npn_canon_invariant_under_transform_chains(f in tt(3), a in transform(3), b in transform(3)) {
        // Invariance must survive chained random transforms, not just one.
        let g = b.apply(a.apply(f));
        prop_assert_eq!(npn_canon(g).canonical, npn_canon(f).canonical);
    }

    #[test]
    fn npn_canon_round_trips_at_full_arity(f in tt(5), t in transform(5)) {
        // The mapper canonizes up to 6-variable cut functions; exercise a
        // larger arity than the other properties.
        let c = npn_canon(f);
        prop_assert_eq!(c.transform.apply(f), c.canonical);
        prop_assert_eq!(t.inverse().apply(t.apply(f)), f);
        prop_assert_eq!(npn_canon(t.apply(f)).canonical, c.canonical);
    }

    #[test]
    fn isop_covers_exactly(f in tt(4)) {
        let cover = isop(f);
        let rebuilt = cover
            .iter()
            .fold(TruthTable::zero(4), |acc, c| acc | c.to_truth_table(4));
        prop_assert_eq!(rebuilt, f);
    }

    #[test]
    fn cofactors_shannon_expansion(f in tt(5), v in 0usize..5) {
        let x = TruthTable::var(5, v);
        let rebuilt = (x & f.cofactor1(v)) | (!x & f.cofactor0(v));
        prop_assert_eq!(rebuilt, f);
    }

    #[test]
    fn shrink_then_extend_preserves_function(f in tt(5)) {
        let (g, kept) = f.shrink_to_support();
        // Re-apply through composition: variable i of g reads kept[i].
        let inputs: Vec<TruthTable> = kept
            .iter()
            .map(|&k| TruthTable::var(5, k))
            .collect();
        let rebuilt = if kept.is_empty() {
            if g.is_one() { TruthTable::one(5) } else { TruthTable::zero(5) }
        } else {
            g.compose(&inputs)
        };
        prop_assert_eq!(rebuilt, f);
    }
}

/// Strategy: random series/parallel network over ≤4 variables.
fn sp_network() -> impl Strategy<Value = SpNetwork> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(SpNetwork::nfet),
        (0u8..4, 0u8..4, any::<bool>()).prop_map(|(a, b, neg)| SpNetwork::tg(
            Literal::pos(a),
            Literal {
                var: b,
                positive: !neg
            },
        )),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..=2).prop_map(SpNetwork::Series),
            prop::collection::vec(inner, 2..=2).prop_map(SpNetwork::Parallel),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dual_network_complements_condition(net in sp_network()) {
        let cond = net.condition(4);
        prop_assert_eq!(net.dual().condition(4), !cond);
        // Dual is an involution on the conduction condition.
        prop_assert_eq!(net.dual().dual().condition(4), cond);
    }

    #[test]
    fn network_counts_are_consistent(net in sp_network()) {
        prop_assert!(net.max_series_depth() >= 1);
        prop_assert!(net.output_branches() >= 1);
        prop_assert!(net.transistor_count() >= net.max_series_depth());
        let mut loads = [0usize; 4];
        net.input_loads(&mut loads);
        prop_assert_eq!(
            loads.iter().sum::<usize>(),
            net.transistor_count() + count_tgs(&net) * 2,
            "each device has one signal gate; TGs add a polarity gate pair"
        );
    }
}

fn count_tgs(net: &SpNetwork) -> usize {
    match net {
        SpNetwork::Transistor { .. } => 0,
        SpNetwork::TransmissionGate { .. } => 1,
        SpNetwork::Series(xs) | SpNetwork::Parallel(xs) => xs.iter().map(count_tgs).sum(),
    }
}

/// Strategy: a random small AIG plus its construction recipe.
#[derive(Clone, Debug)]
enum Op {
    And(usize, usize, bool, bool),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

fn random_aig(ops: Vec<Op>, n_inputs: usize, n_outputs: usize) -> Aig {
    let mut aig = Aig::new();
    let mut nets: Vec<Lit> = (0..n_inputs).map(|_| aig.input()).collect();
    for op in &ops {
        let pick = |i: usize| nets[i % nets.len()];
        let f = match *op {
            Op::And(a, b, na, nb) => {
                let x = if na { pick(a).not() } else { pick(a) };
                let y = if nb { pick(b).not() } else { pick(b) };
                aig.and(x, y)
            }
            Op::Xor(a, b) => aig.xor(pick(a), pick(b)),
            Op::Mux(s, a, b) => aig.mux(pick(s), pick(a), pick(b)),
        };
        nets.push(f);
    }
    for k in 0..n_outputs {
        aig.output(nets[nets.len() - 1 - (k % nets.len().min(7))]);
    }
    aig
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), any::<usize>(), any::<bool>(), any::<bool>())
            .prop_map(|(a, b, na, nb)| Op::And(a, b, na, nb)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Xor(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(s, a, b)| Op::Mux(s, a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthesis_is_sat_proven_sound(ops in prop::collection::vec(op_strategy(), 1..40)) {
        // Every synthesis pass is *proven* equivalent (miter UNSAT), not
        // sampled — the probabilistic `equivalent(seed, rounds)` check
        // this replaces could in principle miss a divergence.
        let aig = random_aig(ops, 6, 3);
        let opt = aig::synthesize(&aig);
        prop_assert_eq!(
            aig::check_equivalence(&aig, &opt),
            Ok(aig::Equivalence::Equal)
        );
        prop_assert!(opt.and_count() <= aig.and_count());
    }

    #[test]
    fn balance_and_refactor_are_sat_proven_sound(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let aig = random_aig(ops, 6, 3);
        let balanced = aig::balance(&aig);
        prop_assert_eq!(
            aig::check_equivalence(&aig, &balanced),
            Ok(aig::Equivalence::Equal)
        );
        let refactored = aig::refactor(&aig);
        prop_assert_eq!(
            aig::check_equivalence(&aig, &refactored),
            Ok(aig::Equivalence::Equal)
        );
    }

    #[test]
    fn mapping_is_sat_proven_sound_all_families(ops in prop::collection::vec(op_strategy(), 1..30)) {
        let aig = random_aig(ops, 5, 2);
        // Skip degenerate cases where every output folded to a constant.
        prop_assume!(aig.output_lits().iter().all(|l| l.node() != 0));
        for family in GateFamily::ALL {
            let lib = charlib::characterize_library(family);
            let mapped = techmap::map_aig(&aig, &lib, &techmap::MapConfig::default())
                .expect("mapping succeeds");
            if let Err(e) = techmap::verify_mapping(&aig, &mapped, &lib) {
                return Err(TestCaseError::fail(format!("{family} mapping refuted: {e}")));
            }
        }
    }

    #[test]
    fn netlist_back_conversion_matches_word_simulation(
        ops in prop::collection::vec(op_strategy(), 1..30),
        words in prop::collection::vec(any::<u64>(), 5),
    ) {
        // The SAT proof of `verify_mapping` rests on `to_aig` being a
        // faithful model of the netlist; pin random mapped netlists'
        // back-conversions against the word-level simulator directly.
        let aig = random_aig(ops, 5, 2);
        prop_assume!(aig.output_lits().iter().all(|l| l.node() != 0));
        for family in GateFamily::ALL {
            let lib = charlib::characterize_library(family);
            let mapped = techmap::map_aig(&aig, &lib, &techmap::MapConfig::default())
                .expect("mapping succeeds");
            let rebuilt = mapped.to_aig(&lib);
            let values = mapped.simulate64(&lib, &words);
            let netlist_out = mapped.output_words(&values);
            let rebuilt_out = aig::simulate64(&rebuilt, &words);
            prop_assert_eq!(
                &netlist_out, &rebuilt_out,
                "{} back-conversion diverges from word simulation", family
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn leakage_monotone_under_composition(depth in 1usize..4, width in 1usize..4) {
        // Series composition suppresses, parallel composition adds.
        let mut sim = LeakageSimulator::new(TechParams::cmos_32nm());
        let stack = |d: usize| {
            if d == 1 {
                OffPattern::Device
            } else {
                OffPattern::series(vec![OffPattern::Device; d])
            }
        };
        let deeper = sim.ioff(&stack(depth + 1));
        let shallower = sim.ioff(&stack(depth));
        prop_assert!(deeper < shallower, "series must suppress: {deeper} vs {shallower}");

        let fan = |w: usize| {
            if w == 1 {
                OffPattern::Device
            } else {
                OffPattern::parallel(vec![OffPattern::Device; w])
            }
        };
        let wider = sim.ioff(&fan(width + 1));
        let narrower = sim.ioff(&fan(width));
        prop_assert!(wider > narrower, "parallel must add: {wider} vs {narrower}");
    }
}
