//! AIGER I/O round-trip coverage: every Table-1 catalog circuit survives
//! write → parse in both the ASCII (`aag`) and binary (`aig`) formats,
//! SAT-proven equivalent to the original (not just shape-checked), and
//! the two serializations of one circuit parse back equivalent to each
//! other via the auto-detecting reader.

use aig::{check_equivalence, Equivalence};
use rayon::prelude::*;

#[test]
fn full_catalog_round_trips_in_both_formats_sat_proven() {
    let failures: Vec<String> = bench_circuits::table1_benchmarks()
        .par_iter()
        .map(|bench| {
            let name = bench.name;
            let ascii = aig::to_aiger_ascii(&bench.aig);
            let binary = aig::to_aiger_binary(&bench.aig);
            let from_ascii = match aig::from_aiger_ascii(&ascii) {
                Ok(a) => a,
                Err(e) => return Some(format!("{name}: ascii reparse failed: {e}")),
            };
            let from_binary = match aig::from_aiger_binary(&binary) {
                Ok(a) => a,
                Err(e) => return Some(format!("{name}: binary reparse failed: {e}")),
            };
            for (label, parsed) in [("ascii", &from_ascii), ("binary", &from_binary)] {
                if parsed.input_count() != bench.aig.input_count()
                    || parsed.output_count() != bench.aig.output_count()
                {
                    return Some(format!("{name}: {label} round trip changed the interface"));
                }
                match check_equivalence(&bench.aig, parsed) {
                    Ok(Equivalence::Equal) => {}
                    Ok(Equivalence::Counterexample(cex)) => {
                        return Some(format!(
                            "{name}: {label} round trip changed the function; cex {cex:?}"
                        ))
                    }
                    Err(e) => return Some(format!("{name}: {label} {e}")),
                }
            }
            // The auto-detecting reader must accept both serializations.
            let auto_ascii = aig::from_aiger_auto(ascii.as_bytes());
            let auto_binary = aig::from_aiger_auto(&binary);
            match (auto_ascii, auto_binary) {
                (Ok(a), Ok(b)) => match check_equivalence(&a, &b) {
                    Ok(Equivalence::Equal) => None,
                    other => Some(format!("{name}: auto readers disagree: {other:?}")),
                },
                other => Some(format!("{name}: auto detection failed: {other:?}")),
            }
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn synthesized_circuits_round_trip_too() {
    // The writer renumbers nodes densely; synthesized networks (after
    // cleanup, balancing and refactoring) exercise non-trivial node
    // orders. One representative circuit per size class keeps this fast.
    for name in ["C1355", "des", "C6288"] {
        let bench = bench_circuits::benchmark_by_name(name).expect("catalog circuit");
        let synthesized = aig::synthesize(&bench.aig);
        let binary = aig::to_aiger_binary(&synthesized);
        let parsed = aig::from_aiger_binary(&binary).expect("binary parses");
        assert_eq!(
            check_equivalence(&synthesized, &parsed),
            Ok(Equivalence::Equal),
            "{name}: binary round trip of the synthesized network"
        );
    }
}
