//! The delay-oriented mapper's timing model, checked end to end: the
//! selection DP's predicted critical path must agree with static timing
//! on the emitted netlist across the full Table-1 catalog, and the delay
//! objective must never lose to the area objective on the metric it
//! owns.
//!
//! The DP prices every internal net at the fanout-aware
//! [`LoadModel`](techmap::LoadModel) estimate (per-pin capacitance times
//! the driver's AIG fanout) while STA re-derives exact per-net loads
//! from the emitted cover, so the two can never agree exactly — but
//! they share the cell model, the inverter materialization rules, and
//! the primary-output load, so the ratio must stay within a modest
//! band. A systematic drift outside it means the models diverged
//! (exactly the zero-PO-load bug this suite was written against).

use ambipolar::engine;
use gate_lib::GateFamily;
use rayon::prelude::*;
use techmap::{critical_path, map_aig_with_cache, MapConfig, Objective};

/// DP estimate vs STA may differ per net (estimated fanout × average
/// pin cap vs the emitted cover's exact pin caps — cover consumer
/// counts exceed AIG fanouts where chosen cones overlap, so the
/// generalized family's wide cells still run the prediction somewhat
/// low), but aggregated over a critical path the ratio stays well
/// inside [1/TOL, TOL]. Measured across the 12×3 catalog with the
/// fanout-aware load model: predicted/STA in 0.69..=1.09 (the uniform
/// two-pin model sat in 0.48..=0.99).
const AGREEMENT_TOL: f64 = 1.6;

#[test]
fn predicted_arrival_tracks_sta_across_the_catalog() {
    let benches = bench_circuits::table1_benchmarks();
    let synthesized: Vec<(String, aig::Aig)> = benches
        .par_iter()
        .map(|b| (b.name.to_owned(), aig::synthesize(&b.aig)))
        .collect();
    let jobs: Vec<(usize, GateFamily)> = (0..synthesized.len())
        .flat_map(|ci| GateFamily::ALL.into_iter().map(move |f| (ci, f)))
        .collect();
    // The vendored rayon shim exposes map/collect only, so violations
    // are gathered as options and flattened.
    let violations: Vec<String> = jobs
        .par_iter()
        .map(|&(ci, family)| {
            let (name, aig) = &synthesized[ci];
            let lib = engine::library(family);
            let cache = engine::match_cache(family);
            let mapped = map_aig_with_cache(aig, lib, cache, &MapConfig::default())
                .expect("catalog circuits map");
            let predicted = mapped
                .predicted_delay_s()
                .expect("the mapper records its predicted critical path");
            let sta = critical_path(&mapped, lib).critical.value();
            assert!(predicted > 0.0 && sta > 0.0);
            let ratio = predicted / sta;
            (!(1.0 / AGREEMENT_TOL..=AGREEMENT_TOL).contains(&ratio))
                .then(|| format!("{name}/{family}: predicted {predicted:e} vs STA {sta:e}"))
        })
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(
        violations.is_empty(),
        "DP and STA timing models diverged:\n{}",
        violations.join("\n")
    );
}

#[test]
fn delay_objective_is_never_slower_than_area_objective() {
    let benches = bench_circuits::table1_benchmarks();
    let synthesized: Vec<(String, aig::Aig)> = benches
        .par_iter()
        .map(|b| (b.name.to_owned(), aig::synthesize(&b.aig)))
        .collect();
    let jobs: Vec<(usize, GateFamily)> = (0..synthesized.len())
        .flat_map(|ci| GateFamily::ALL.into_iter().map(move |f| (ci, f)))
        .collect();
    let violations: Vec<String> = jobs
        .par_iter()
        .map(|&(ci, family)| {
            let (name, aig) = &synthesized[ci];
            let lib = engine::library(family);
            let cache = engine::match_cache(family);
            let measure = |objective| {
                let mapped =
                    map_aig_with_cache(aig, lib, cache, &MapConfig::for_objective(objective))
                        .expect("catalog circuits map");
                (
                    mapped.predicted_delay_s().expect("predicted is recorded"),
                    critical_path(&mapped, lib).critical.value(),
                )
            };
            let (delay_pred, delay_sta) = measure(Objective::Delay);
            let (area_pred, area_sta) = measure(Objective::Area);
            // On *predicted* delay the ordering is structural: both
            // objectives price the same cut set under the same cost
            // model, and the delay DP minimizes arrival at every node —
            // so only summation noise is tolerated.
            let pred_violation = delay_pred > area_pred * (1.0 + 1e-6);
            // On *STA* delay a modest band is allowed: the DP estimates
            // internal loads uniformly, so its optimum can differ from
            // the exact-load optimum (measured worst case across the
            // catalog: i8/generalized at +7.7%).
            let sta_violation = delay_sta > area_sta * 1.10;
            (pred_violation || sta_violation).then(|| {
                format!(
                    "{name}/{family}: delay-objective {delay_pred:e}/{delay_sta:e} \
                     (pred/STA) vs area {area_pred:e}/{area_sta:e}"
                )
            })
        })
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(
        violations.is_empty(),
        "the delay objective lost on delay:\n{}",
        violations.join("\n")
    );
}
