//! QoR regression: the default scripted flow (with DAG-aware rewriting)
//! must strictly beat the legacy hardcoded balance/refactor loop on the
//! 12-circuit Table-1 catalog, measured in total AND count into the
//! mapper — the acceptance criterion of the rewriting engine.

use aig::{Flow, Metrics};

/// The pre-rewriting `synthesize` behavior, expressed as a flow script:
/// two balance/refactor rounds plus the final balance, with the same
/// accept criteria the old loop hardcoded.
const LEGACY_FLOW: &str = "b; rf; b; rf; b";

#[test]
fn default_flow_beats_legacy_loop_on_the_catalog() {
    let default_flow = Flow::default_flow();
    let legacy = Flow::parse(LEGACY_FLOW).expect("legacy script parses");
    assert!(default_flow.uses_rewrite());
    assert!(!legacy.uses_rewrite());

    let mut total_default = 0usize;
    let mut total_legacy = 0usize;
    let mut wins = 0usize;
    for bench in bench_circuits::table1_benchmarks() {
        // Debug builds SAT-prove every accepted pass inside the flow
        // runs, so each row here is also a soundness proof.
        let d = Metrics::of(&default_flow.run(&bench.aig));
        let l = Metrics::of(&legacy.run(&bench.aig));
        assert!(
            d.ands <= l.ands,
            "{}: default flow ({} ands) must not lose to the legacy loop ({} ands)",
            bench.name,
            d.ands,
            l.ands
        );
        if d.ands < l.ands {
            wins += 1;
        }
        total_default += d.ands;
        total_legacy += l.ands;
    }
    assert!(
        total_default < total_legacy,
        "catalog total must strictly improve: default {total_default} vs legacy {total_legacy}"
    );
    assert!(
        wins >= 3,
        "rewriting should strictly win on several circuits, not squeak by on one ({wins} wins, \
         {total_default} vs {total_legacy} total ands)"
    );
}
