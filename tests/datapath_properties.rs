//! Property tests over the benchmark datapath generators: the arithmetic
//! circuits must agree with software arithmetic on random operands, and
//! the ECC decoder must correct every randomly injected single-bit error.

use aig::sim::evaluate;
use aig::{Aig, Lit};
use bench_circuits::multiplier::multiplier_circuit;
use bench_circuits::words::{ripple_add, ripple_sub, Word};
use proptest::prelude::*;

fn bits_of(value: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (value >> i) & 1 == 1).collect()
}

fn value_of(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adder_matches_software(a in 0u64..256, b in 0u64..256, cin: bool) {
        let mut aig = Aig::new();
        let wa = Word::inputs(&mut aig, 8);
        let wb = Word::inputs(&mut aig, 8);
        let (sum, carry) = ripple_add(&mut aig, &wa, &wb, if cin { Lit::TRUE } else { Lit::FALSE });
        sum.output(&mut aig);
        aig.output(carry);
        let mut inputs = bits_of(a, 8);
        inputs.extend(bits_of(b, 8));
        let out = evaluate(&aig, &inputs);
        let expected = a + b + u64::from(cin);
        prop_assert_eq!(value_of(&out[..8]), expected & 0xFF);
        prop_assert_eq!(out[8], expected > 0xFF);
    }

    #[test]
    fn subtractor_matches_software(a in 0u64..256, b in 0u64..256) {
        let mut aig = Aig::new();
        let wa = Word::inputs(&mut aig, 8);
        let wb = Word::inputs(&mut aig, 8);
        let (diff, _) = ripple_sub(&mut aig, &wa, &wb);
        diff.output(&mut aig);
        let mut inputs = bits_of(a, 8);
        inputs.extend(bits_of(b, 8));
        let out = evaluate(&aig, &inputs);
        prop_assert_eq!(value_of(&out), a.wrapping_sub(b) & 0xFF);
    }

    #[test]
    fn multiplier_matches_software(a in 0u64..64, b in 0u64..64) {
        let aig = multiplier_circuit(6);
        let mut inputs = bits_of(a, 6);
        inputs.extend(bits_of(b, 6));
        let out = evaluate(&aig, &inputs);
        prop_assert_eq!(value_of(&out), a * b);
    }

    #[test]
    fn synthesis_keeps_multiplier_exact(a in 0u64..32, b in 0u64..32) {
        let aig = multiplier_circuit(5);
        let opt = aig::synthesize(&aig);
        let mut inputs = bits_of(a, 5);
        inputs.extend(bits_of(b, 5));
        let out = evaluate(&opt, &inputs);
        prop_assert_eq!(value_of(&out), a * b);
    }
}

#[test]
fn ecc_corrects_random_single_errors_after_mapping() {
    // End-to-end with the mapped generalized netlist: decode corrupted
    // codewords through the actual gate implementation.
    use charlib::characterize_library;
    use gate_lib::GateFamily;
    use techmap::{map_aig, MapConfig};

    let data_bits = 8;
    let aig = bench_circuits::ecc::sec_circuit(data_bits);
    let lib = characterize_library(GateFamily::CntfetGeneralized);
    let mapped = map_aig(&aig, &lib, &MapConfig::default()).expect("mapping succeeds");
    // Software encoder mirror (same layout as the generator).
    let n = data_bits + bench_circuits::ecc::parity_bits(data_bits);
    let mut encode_aig = Aig::new();
    let data = Word::inputs(&mut encode_aig, data_bits);
    let parity = bench_circuits::ecc::sec_encoder(&mut encode_aig, &data);
    parity.output(&mut encode_aig);

    let mut seed = 0x517E_u64;
    for _ in 0..40 {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        let value = seed % 256;
        let flip = (seed >> 8) as usize % n;
        // Encode in software via the encoder AIG.
        let parity_bits_out = evaluate(&encode_aig, &bits_of(value, data_bits));
        // Assemble the codeword: data in non-power positions, parity at
        // power positions (1-based).
        let mut codeword = vec![false; n];
        let mut d = 0usize;
        let mut p = 0usize;
        for (pos, slot) in codeword.iter_mut().enumerate() {
            let one_based = pos + 1;
            if one_based.is_power_of_two() {
                *slot = parity_bits_out[p];
                p += 1;
            } else {
                *slot = (value >> d) & 1 == 1;
                d += 1;
            }
        }
        codeword[flip] = !codeword[flip];
        // Decode through the mapped netlist.
        let words: Vec<u64> = codeword
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        let values = mapped.simulate64(&lib, &words);
        let outs = mapped.output_words(&values);
        let decoded = outs
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &w)| acc | ((w & 1) << i));
        assert_eq!(decoded, value, "flip at {flip} of codeword for {value}");
    }
}
