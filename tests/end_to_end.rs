//! End-to-end integration: benchmark generation → synthesis → mapping →
//! timing → power, with functional verification at every hand-off.

use ambipolar::pipeline::{evaluate_circuit, PipelineConfig};
use charlib::characterize_library;
use gate_lib::GateFamily;
use techmap::{map_aig, verify_mapping, MapConfig};

fn quick_config() -> PipelineConfig {
    PipelineConfig {
        patterns: 4096,
        ..PipelineConfig::default()
    }
}

#[test]
fn mapped_netlists_are_functionally_correct_for_all_families() {
    // SAT-proven at every hand-off: synthesis and mapping are theorems
    // here, not samples.
    for name in ["C1908", "t481", "dalu"] {
        let bench = bench_circuits::benchmark_by_name(name).expect("known benchmark");
        let synthesized = aig::synthesize(&bench.aig);
        assert_eq!(
            aig::check_equivalence(&bench.aig, &synthesized),
            Ok(aig::Equivalence::Equal),
            "{name}: synthesis broke the function"
        );
        for family in GateFamily::ALL {
            let library = characterize_library(family);
            let mapped =
                map_aig(&synthesized, &library, &MapConfig::default()).expect("mapping succeeds");
            verify_mapping(&synthesized, &mapped, &library)
                .unwrap_or_else(|e| panic!("{name}/{family}: {e}"));
        }
    }
}

#[test]
fn paper_orderings_hold_on_an_xor_rich_circuit() {
    let bench = bench_circuits::benchmark_by_name("C1355").expect("C1355");
    let synthesized = aig::synthesize(&bench.aig);
    let config = quick_config();
    let results: Vec<_> = GateFamily::ALL
        .iter()
        .map(|&f| {
            let lib = characterize_library(f);
            evaluate_circuit(&synthesized, &lib, &config).expect("mapping succeeds")
        })
        .collect();
    let (gen, conv, cmos) = (&results[0], &results[1], &results[2]);
    // Gate count: generalized < conventional = CMOS.
    assert!(gen.gates < conv.gates);
    assert_eq!(conv.gates, cmos.gates, "same cell set, same mapper");
    // Delay: generalized < conventional < CMOS.
    assert!(gen.delay.value() < conv.delay.value());
    assert!(conv.delay.value() < cmos.delay.value());
    // Power: generalized < conventional < CMOS; static ~order apart.
    assert!(gen.total_power().value() < conv.total_power().value());
    assert!(conv.total_power().value() < cmos.total_power().value());
    assert!(cmos.power.static_sub.value() > 5.0 * conv.power.static_sub.value());
    // EDP: the compounding benefit.
    assert!(cmos.edp().value() > 8.0 * gen.edp().value());
}

#[test]
fn control_dominated_circuit_still_wins_but_less() {
    // ALU/control circuits benefit less than XOR-rich ones (the paper's
    // per-row trend).
    let config = quick_config();
    let edp_gain = |name: &str| {
        let bench = bench_circuits::benchmark_by_name(name).expect("known");
        let synthesized = aig::synthesize(&bench.aig);
        let gen = characterize_library(GateFamily::CntfetGeneralized);
        let conv = characterize_library(GateFamily::CntfetConventional);
        let r_gen = evaluate_circuit(&synthesized, &gen, &config).expect("mapping succeeds");
        let r_conv = evaluate_circuit(&synthesized, &conv, &config).expect("mapping succeeds");
        r_conv.edp().value() / r_gen.edp().value()
    };
    let ecc = edp_gain("C1908");
    let alu = edp_gain("C2670");
    assert!(ecc > 1.0 && alu > 1.0, "generalized wins everywhere");
    assert!(
        ecc > alu,
        "XOR-rich ECC ({ecc:.2}x) must out-gain the ALU ({alu:.2}x)"
    );
}

#[test]
fn static_power_well_below_dynamic_at_circuit_level() {
    // Paper §4: "static power is about two orders of magnitude less than
    // dynamic power for both types of CNTFET families and one order of
    // magnitude less for the CMOS family."
    let bench = bench_circuits::benchmark_by_name("i8").expect("i8");
    let synthesized = aig::synthesize(&bench.aig);
    let config = quick_config();
    for (family, min_ratio) in [
        (GateFamily::CntfetGeneralized, 50.0),
        (GateFamily::CntfetConventional, 50.0),
        (GateFamily::Cmos, 8.0),
    ] {
        let lib = characterize_library(family);
        let r = evaluate_circuit(&synthesized, &lib, &config).expect("mapping succeeds");
        let ratio = r.power.dynamic.value() / r.power.static_sub.value();
        assert!(
            ratio > min_ratio,
            "{family}: P_D/P_S = {ratio}, expected > {min_ratio}"
        );
    }
}

#[test]
fn genlib_export_round_trips_cell_names() {
    use charlib::genlib::library_to_genlib;
    for family in GateFamily::ALL {
        let lib = characterize_library(family);
        let text = library_to_genlib(&lib);
        assert_eq!(
            text.lines().filter(|l| l.starts_with("GATE")).count(),
            lib.gates.len(),
            "{family}: genlib must list every cell"
        );
    }
}
