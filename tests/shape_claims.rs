//! Shape-regression tests: the paper's headline comparisons must hold, in
//! band form, on a fast subset of Table 1. (The full 12-row table is the
//! `table1` bench binary; these tests keep the shape from silently
//! drifting when models or the mapper change.)

use ambipolar::experiments::{table1_subset, Table1Config};
use ambipolar::pipeline::PipelineConfig;

/// A representative mix: XOR-rich (C1908, C1355), control-heavy (C2670),
/// and a logic block (t481).
fn subset() -> ambipolar::experiments::Table1 {
    let config = Table1Config {
        pipeline: PipelineConfig {
            patterns: 4096,
            ..PipelineConfig::default()
        },
    };
    table1_subset(&config, Some(&["C2670", "C1908", "t481", "C1355"]))
        .expect("built-in benchmarks map")
}

#[test]
fn generalized_improvement_bands() {
    let table = subset();
    assert_eq!(table.rows.len(), 4);
    let imp = table.improvement_vs_cmos(0);
    // Paper: 24.2% gates, 7.1x delay, 53.4% PD, 94.5% PS, 57.1% PT,
    // 19.5x EDP. Accept generous bands — the point is the regime, and the
    // subset is more XOR-rich than the full table.
    assert!(
        (0.15..=0.60).contains(&imp.gates_saving),
        "gate saving {:.3}",
        imp.gates_saving
    );
    assert!(
        (4.0..=14.0).contains(&imp.delay_ratio),
        "delay ratio {:.2}",
        imp.delay_ratio
    );
    assert!(
        (0.35..=0.75).contains(&imp.pd_saving),
        "PD saving {:.3}",
        imp.pd_saving
    );
    assert!(
        (0.85..=0.99).contains(&imp.ps_saving),
        "PS saving {:.3}",
        imp.ps_saving
    );
    assert!(
        (0.35..=0.75).contains(&imp.pt_saving),
        "PT saving {:.3}",
        imp.pt_saving
    );
    assert!(
        imp.edp_ratio >= 8.0,
        "EDP ratio {:.1} (paper: ~19.5x)",
        imp.edp_ratio
    );
}

#[test]
fn conventional_improvement_bands() {
    let table = subset();
    let imp = table.improvement_vs_cmos(1);
    // Paper: 3.2% gates, 5.1x delay, 30.9% PD, 92.7% PS, 36.7% PT, 8.1x.
    assert!(
        imp.gates_saving.abs() < 0.05,
        "conventional CNTFET and CMOS share the cell set: {:.3}",
        imp.gates_saving
    );
    assert!(
        (3.5..=7.0).contains(&imp.delay_ratio),
        "delay ratio {:.2} (Deng'07 ≈5x)",
        imp.delay_ratio
    );
    assert!(
        (0.20..=0.45).contains(&imp.pd_saving),
        "PD saving {:.3}",
        imp.pd_saving
    );
    assert!(
        (0.80..=0.97).contains(&imp.ps_saving),
        "PS saving {:.3}",
        imp.ps_saving
    );
    assert!(
        (4.0..=12.0).contains(&imp.edp_ratio),
        "EDP ratio {:.1}",
        imp.edp_ratio
    );
}

#[test]
fn generalized_beats_conventional_on_every_subset_row() {
    // The per-row dominance the paper's Table 1 shows for the XOR-rich
    // rows (t481 is the paper's one exception; our stand-in doesn't
    // reproduce that inversion, so dominance holds here too).
    let table = subset();
    for row in &table.rows {
        let gen = &row.results[0];
        let conv = &row.results[1];
        assert!(
            gen.total_power().value() <= conv.total_power().value() * 1.02,
            "{}: generalized {} vs conventional {}",
            row.name,
            gen.total_power(),
            conv.total_power()
        );
        assert!(
            gen.edp().value() <= conv.edp().value() * 1.05,
            "{}: EDP {} vs {}",
            row.name,
            gen.edp().value(),
            conv.edp().value()
        );
    }
}

#[test]
fn table_display_renders_all_sections() {
    let table = subset();
    let text = table.to_string();
    assert!(text.contains("Circuit"));
    assert!(text.contains("C1908"));
    assert!(text.contains("Average"));
    assert!(text.contains("vs. CMOS"));
    // Three family column groups.
    assert_eq!(text.matches("CNTFET").count(), 2);
    assert!(text.contains("CMOS"));
}
