//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the `rand` 0.8 API the workspace actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`seed_from_u64`);
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] over the integer
//!   and float types the callers need;
//! * the [`RngCore`] / [`SeedableRng`] split so generic call sites keep
//!   their `rand` idiom.
//!
//! The streams are **not** bit-compatible with upstream `rand`'s `StdRng`
//! (ChaCha12); every consumer in this workspace treats seeded streams as an
//! opaque reproducibility contract, which this crate honors: a given seed
//! always yields the same stream, on every platform and thread count.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `[0, span)` (`span > 0`) by rejection.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v.wrapping_rem(span);
        }
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// SplitMix64 step; used for seeding and cheap stream derivation.
#[inline]
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{split_mix_64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Small state, excellent statistical quality, and a fully
    /// platform-independent stream for a given seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = split_mix_64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but keep the guard cheaply.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let s3n = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3n;
            s2 ^= t;
            self.s = [s0, s1, s2, s3n.rotate_left(45)];
            result
        }
    }
}

pub use rngs::StdRng as DefaultStdRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<u64> = (0..8).map(|_| d.gen()).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all cells hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(5..8u32);
            assert!((5..8).contains(&v));
            let w = rng.gen_range(-3..=3i32);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }

    #[test]
    fn float_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.47..0.53).contains(&mean), "mean {mean}");
    }

    #[test]
    fn bit_counts_are_balanced() {
        // The power simulator derives toggle statistics from raw words;
        // a biased generator would skew every activity factor.
        let mut rng = StdRng::seed_from_u64(0xDA7E_2010);
        let ones: u32 = (0..4096).map(|_| rng.gen::<u64>().count_ones()).sum();
        let total = 4096 * 64;
        let frac = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&frac), "ones fraction {frac}");
    }
}
