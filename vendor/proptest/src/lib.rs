//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest 1.x this workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_perturb`,
//!   `prop_recursive`, `boxed`;
//! * strategies for integer ranges, tuples, [`strategy::Just`],
//!   [`arbitrary::any`], [`collection::vec`], and [`strategy::Union`]
//!   (behind [`prop_oneof!`]);
//! * the [`proptest!`] macro family — `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assert_ne!`, `prop_assume!` — and
//!   [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its per-case seed instead;
//!   re-running is deterministic, so the seed is a stable reproducer.
//! * **Fixed entropy.** Case generation derives from a fixed master seed,
//!   making CI runs reproducible rather than randomized.

pub mod test_runner {
    //! Test-case execution: config, RNG, and the case loop.

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SampleRange, SeedableRng, Standard};

    /// Per-run configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: draw another case without counting this one.
        Reject(String),
        /// `prop_assert*` failed: the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The deterministic case RNG handed to strategies (and to
    /// `prop_perturb` closures).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG fully determined by `seed`.
        pub fn from_seed(seed: u64) -> Self {
            Self {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        /// Next 32 random bits (inherent so call sites need no trait import).
        pub fn next_u32(&mut self) -> u32 {
            RngCore::next_u32(&mut self.inner)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            RngCore::next_u64(&mut self.inner)
        }

        /// Uniform draw from a range.
        pub fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
            self.inner.gen_range(range)
        }

        /// Standard-distribution draw.
        pub fn gen<T: Standard>(&mut self) -> T {
            self.inner.gen()
        }

        /// An independent child RNG (for `prop_perturb`).
        pub fn fork(&mut self) -> Self {
            Self::from_seed(self.next_u64())
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            RngCore::next_u64(&mut self.inner)
        }
    }

    /// Master seed for case generation: fixed so CI is reproducible.
    const MASTER_SEED: u64 = 0xA5A5_5A5A_DA7E_2010;

    /// Runs `case` until `config.cases` cases are accepted; panics on the
    /// first failing case, reporting its per-case seed.
    pub fn run<F>(config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        let max_attempts = u64::from(config.cases).saturating_mul(50).max(2000);
        let mut master = MASTER_SEED;
        while accepted < config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "proptest: too many rejected cases ({accepted}/{} accepted after {attempts} attempts)",
                config.cases
            );
            let case_seed = rand::split_mix_64(&mut master);
            let mut rng = TestRng::from_seed(case_seed);
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case #{accepted} failed (case seed {case_seed:#018x}):\n{msg}")
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Maps generated values through `f` with access to an RNG.
        fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value, TestRng) -> O,
        {
            Perturb { base: self, f }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Recursive strategy: `self` generates leaves, `recurse` wraps an
        /// inner strategy into a branch, up to `depth` levels deep. The
        /// `_desired_size` / `_expected_branch_size` tuning knobs of
        /// upstream proptest are accepted and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                let branch = recurse(current).boxed();
                current = Union::new(vec![self.clone().boxed(), branch]).boxed();
            }
            current
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// `prop_perturb` combinator.
    #[derive(Clone)]
    pub struct Perturb<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Perturb<S, F>
    where
        S: Strategy,
        F: Fn(S::Value, TestRng) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            let value = self.base.sample(rng);
            let fork = rng.fork();
            (self.f)(value, fork)
        }
    }

    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Self {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// A union over the given alternatives (at least one).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }

    /// Strategy for [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Self(PhantomData)
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait behind it.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_std {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_std!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection size range is empty");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (min, max) = r.into_inner();
            assert!(min <= max, "collection size range is empty");
            Self { min, max }
        }
    }

    /// Strategy producing `Vec`s of `element` with lengths in `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Property-test entry point: wraps `#[test]` functions whose arguments are
/// drawn from strategies (`pat in strategy`) or [`arbitrary::any`]
/// (`name: Type`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr) #[test] fn $name:ident ( $($params:tt)* ) $body:block $($rest:tt)* ) => {
        #[test]
        fn $name() {
            let __proptest_config = $cfg;
            $crate::test_runner::run(&__proptest_config, |__proptest_rng| {
                $crate::__proptest_bind! { __proptest_rng ( $($params)* ) }
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( $rng:ident () ) => {};
    ( $rng:ident ( $name:ident : $ty:ty $(, $($rest:tt)*)? ) ) => {
        let $name: $ty =
            $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind! { $rng ( $($($rest)*)? ) }
    };
    ( $rng:ident ( $pat:pat in $strat:expr $(, $($rest:tt)*)? ) ) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), $rng);
        $crate::__proptest_bind! { $rng ( $($($rest)*)? ) }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}: {}", left, right, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
}

/// Rejects (does not count) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategy alternatives with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! The `prop::` module alias used by call sites.
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0u8..4, z in 1usize..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((1..=9).contains(&z));
        }

        #[test]
        fn bare_type_params_work(flag: bool, byte: u8) {
            let _ = flag;
            prop_assert!(u32::from(byte) < 256);
        }

        #[test]
        fn map_and_tuples_compose(v in (0u8..4, 0u8..4).prop_map(|(a, b)| (a, b, a ^ b))) {
            prop_assert_eq!(v.2, v.0 ^ v.1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn tree_depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(children) => 1 + children.iter().map(tree_depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategies_bound_depth(
            t in (0u8..8).prop_map(Tree::Leaf).prop_recursive(3, 12, 2, |inner| {
                prop_oneof![
                    prop::collection::vec(inner.clone(), 2..=2).prop_map(Tree::Node),
                    prop::collection::vec(inner, 2..=3).prop_map(Tree::Node),
                ]
            })
        ) {
            prop_assert!(tree_depth(&t) <= 4, "depth {} for {t:?}", tree_depth(&t));
        }

        #[test]
        fn union_hits_every_arm(picks in prop::collection::vec(prop_oneof![Just(0u8), Just(1u8)], 64..=64)) {
            prop_assert!(picks.contains(&0));
            prop_assert!(picks.contains(&1));
        }
    }

    #[test]
    fn runs_are_reproducible() {
        // Two identical runs must generate identical sequences.
        let collect = || {
            let mut values = Vec::new();
            crate::test_runner::run(&ProptestConfig::with_cases(16), |rng| {
                values.push(Strategy::sample(&(0u64..1_000_000), rng));
                Ok(())
            });
            values
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_seed() {
        crate::test_runner::run(&ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::fail("intentional"))
        });
    }
}
