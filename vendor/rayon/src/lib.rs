//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the small parallel-iterator surface the workspace needs on top of
//! [`std::thread::scope`]:
//!
//! * [`IntoParallelIterator`] for `Vec<T>` and `Range<usize>`;
//! * [`IntoParallelRefIterator`] (`par_iter`) for slices and vectors;
//! * [`ParIter::map`] → [`ParMap::collect`] / [`ParMap::for_each`], both
//!   **order-preserving**: results come back in input order regardless of
//!   how chunks were scheduled, which is what makes the engine's parallel
//!   fan-outs bit-deterministic;
//! * [`join`] and [`current_num_threads`].
//!
//! Scheduling is dynamic work-pulling: workers claim the next unprocessed
//! item from a shared atomic index and write its result into the item's
//! own slot, so heterogeneous task sizes (the Table-1 circuit × family
//! matrix spans an order of magnitude) balance across workers without a
//! stealing deque, and output order is preserved exactly. The worker
//! count honors `RAYON_NUM_THREADS` and falls back to
//! [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hooks for propagating a thread-local task context — a profiling-scope
/// token or a tracing-span id, say — from the thread that launches a
/// parallel operation onto the ephemeral scoped worker threads that
/// execute its tasks. Real rayon keeps long-lived pool threads a caller
/// can configure once; this shim spawns workers per operation, so
/// without propagation any thread-local state the caller relies on would
/// silently reset to its default on every parallel fan-out.
#[derive(Clone, Copy, Debug)]
pub struct TaskContextHooks {
    /// Reads the launching thread's context token.
    pub capture: fn() -> u64,
    /// Installs a captured token on a worker thread.
    pub install: fn(u64),
}

/// Process-wide context hooks. Multiple independent subsystems register
/// one pair each (`aig::profile` for scope counters, `obs` for tracing
/// spans); every registered pair propagates to every worker.
static CONTEXT_HOOKS: Mutex<Vec<TaskContextHooks>> = Mutex::new(Vec::new());

/// Registers a context-propagation hook pair. Each registered pair is
/// captured once per parallel operation and installed on every worker;
/// registration order is preserved. Callers must register at most once
/// per subsystem (hooks cannot be removed).
pub fn register_task_context_hooks(hooks: TaskContextHooks) {
    CONTEXT_HOOKS.lock().expect("context hooks").push(hooks);
}

/// Captures the launching thread's context for every registered hook
/// pair (empty when nothing is registered). One lock acquisition per
/// parallel-operation launch, not per task.
fn captured_context() -> Vec<(TaskContextHooks, u64)> {
    CONTEXT_HOOKS
        .lock()
        .expect("context hooks")
        .iter()
        .map(|h| (*h, (h.capture)()))
        .collect()
}

/// Workers currently spawned by in-flight parallel operations. Nested
/// parallelism (a `par_iter` inside a `par_iter` task) subtracts these from
/// its own budget instead of multiplying thread counts — real rayon gets
/// this from its shared pool; this shim approximates it with a counter.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Worker-count override installed by [`ThreadPool::install`] (0 = none).
/// Real rayon scopes the pool per worker thread; this shim runs parallel
/// operations on ephemeral scoped threads, so a process-wide override is
/// the honest equivalent for the workspace's single-driver binaries.
static POOL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    let pool = POOL_THREADS.load(Ordering::Relaxed);
    if pool >= 1 {
        return pool;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Builder for a worker pool with an explicit thread count, mirroring
/// `rayon::ThreadPoolBuilder`'s surface (the subset the workspace uses).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Pool construction error (this shim's builds are infallible, but the
/// real crate's `build()` returns a `Result`, so callers match on one).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with no explicit thread count (defaults apply).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = default, matching real rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads.unwrap_or(0),
        })
    }
}

/// A scoped worker pool: [`ThreadPool::install`] runs a closure with the
/// pool's thread count governing every parallel operation inside it.
#[derive(Debug)]
pub struct ThreadPool {
    /// Configured worker count (0 = default resolution order).
    threads: usize,
}

impl ThreadPool {
    /// The worker count parallel operations inside [`ThreadPool::install`]
    /// will use.
    pub fn current_num_threads(&self) -> usize {
        if self.threads >= 1 {
            self.threads
        } else {
            current_num_threads()
        }
    }

    /// Runs `op` with this pool's thread count installed; the previous
    /// count is restored when `op` returns (or panics).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.store(self.0, Ordering::Relaxed);
            }
        }
        let prev = POOL_THREADS.swap(self.threads, Ordering::Relaxed);
        let _restore = Restore(prev);
        op()
    }
}

/// Runs two closures, in parallel when more than one worker is available.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let ctx = captured_context();
    std::thread::scope(|scope| {
        let hb = scope.spawn(move || {
            for (hooks, token) in &ctx {
                (hooks.install)(*token);
            }
            b()
        });
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Decrements [`ACTIVE_WORKERS`] when a parallel operation finishes, even
/// if a worker panicked.
struct WorkerGuard(usize);

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        ACTIVE_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
    }
}

/// A materialized sequence awaiting a parallel operation.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

/// A lazily mapped parallel iterator; applying `collect`/`for_each` runs
/// the closure across worker threads.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Maps each item; evaluation happens at `collect`/`for_each`.
    pub fn map<R: Send, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Applies `f` to every item across the worker pool.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        self.map(f).run();
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<T: Send, R: Send, F> ParMap<T, F>
where
    F: Fn(T) -> R + Sync,
{
    /// Runs the map across the pool, preserving input order.
    fn run(self) -> Vec<R> {
        let Self { items, f } = self;
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let budget = current_num_threads().saturating_sub(ACTIVE_WORKERS.load(Ordering::Relaxed));
        let workers = budget.max(1).min(n);
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        ACTIVE_WORKERS.fetch_add(workers - 1, Ordering::Relaxed);
        let _guard = WorkerGuard(workers - 1);
        // Dynamic work-pulling: each worker claims the next item index
        // from a shared counter and writes the result into that item's
        // slot — load-balanced for heterogeneous task sizes, and output
        // order equals input order by construction. Each slot is touched
        // by exactly one worker (the index claim is unique), so the
        // per-slot mutexes are uncontended.
        let slots: Vec<std::sync::Mutex<Option<T>>> = items
            .into_iter()
            .map(|t| std::sync::Mutex::new(Some(t)))
            .collect();
        let results: Vec<std::sync::Mutex<Option<R>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        // Launching thread's task context rides along to every worker
        // (installing it on the launching thread itself is an idempotent
        // no-op, so the one closure serves both).
        let ctx = captured_context();
        let worker = || {
            for (hooks, token) in &ctx {
                (hooks.install)(*token);
            }
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("item claimed once");
                let result = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(result);
            }
        };
        std::thread::scope(|scope| {
            for _ in 0..workers - 1 {
                scope.spawn(worker);
            }
            worker();
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every slot filled")
            })
            .collect()
    }

    /// Collects mapped results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Runs the map for its side effects.
    pub fn for_each(self) {
        self.run();
    }

    /// Sums mapped results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.run().into_iter().sum()
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts into the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type produced.
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data: Vec<u64> = (0..257).collect();
        let out: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out.first(), Some(&1));
        assert_eq!(out.last(), Some(&257));
        assert_eq!(out.len(), data.len());
    }

    #[test]
    fn for_each_visits_everything() {
        let count = AtomicUsize::new(0);
        (0..333).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 333);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    /// Serializes the pool tests: the override is process-global, so two
    /// tests installing pools concurrently would observe each other.
    static POOL_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn pool_install_scopes_the_thread_count() {
        let _guard = POOL_TEST_LOCK.lock().unwrap();
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("shim pools always build");
        assert_eq!(pool.current_num_threads(), 3);
        let (inside, out): (usize, Vec<usize>) = pool.install(|| {
            let n = super::current_num_threads();
            let out = (0usize..100).into_par_iter().map(|i| i * i).collect();
            (n, out)
        });
        assert_eq!(inside, 3);
        assert_eq!(out, (0usize..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn nested_installs_restore_the_outer_pool() {
        let _guard = POOL_TEST_LOCK.lock().unwrap();
        let outer = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let inner = super::ThreadPoolBuilder::new()
            .num_threads(5)
            .build()
            .unwrap();
        outer.install(|| {
            assert_eq!(super::current_num_threads(), 2);
            inner.install(|| assert_eq!(super::current_num_threads(), 5));
            assert_eq!(super::current_num_threads(), 2);
        });
    }

    #[test]
    fn respects_thread_env_round_trip() {
        // Not asserting a specific count (env-dependent); just exercise the
        // configured path.
        assert!(super::current_num_threads() >= 1);
    }
}
