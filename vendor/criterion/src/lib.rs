//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with honest
//! wall-clock measurement: each benchmark is warmed up, then timed over
//! `sample_size` samples, and min / median / mean are reported on stdout.
//!
//! No HTML reports, statistical regression, or plotting; `cargo bench`
//! output is a plain table. Unknown CLI flags (cargo passes `--bench`) are
//! ignored.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting benched code.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample, recording each sample's duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One untimed warm-up run to populate caches and lazy statics.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its summary line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            durations: Vec::with_capacity(self.sample_size),
        };
        f(&mut bencher);
        let mut d = bencher.durations;
        d.sort_unstable();
        let (min, median, mean) = if d.is_empty() {
            (Duration::ZERO, Duration::ZERO, Duration::ZERO)
        } else {
            let total: Duration = d.iter().sum();
            (d[0], d[d.len() / 2], total / d.len() as u32)
        };
        println!(
            "{}/{:<28} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            self.name,
            id,
            min,
            median,
            mean,
            d.len()
        );
        self.criterion.ran += 1;
        self
    }

    /// Ends the group (separator line, mirroring criterion's grouping).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// Runs one stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench")
            .sample_size(100)
            .bench_function(id, f);
        self
    }

    /// Final configuration hook (kept for API compatibility; no-op).
    pub fn final_summary(&self) {
        eprintln!("criterion-lite: {} benchmark(s) complete", self.ran);
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the bench `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and test-harness flags); ignore argv.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(7);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // warm-up + 7 timed samples
        assert_eq!(runs, 8);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
        assert_eq!(black_box("x"), "x");
    }
}
