//! The three gate families the paper compares (Table 1 columns).

use device::{TechKind, TechParams};

/// A gate family: library content plus the technology implementing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GateFamily {
    /// The 46-gate static ambipolar transmission-gate library of DATE'09
    /// (generalized gates with embedded XOR inputs, dual-rail signals).
    CntfetGeneralized,
    /// Conventional gate set implemented with MOSFET-like (unipolar
    /// configured) CNTFETs.
    CntfetConventional,
    /// Conventional gate set implemented in 32 nm bulk CMOS.
    Cmos,
}

impl GateFamily {
    /// All families in Table-1 column order.
    pub const ALL: [GateFamily; 3] = [
        GateFamily::CntfetGeneralized,
        GateFamily::CntfetConventional,
        GateFamily::Cmos,
    ];

    /// The technology point implementing this family.
    pub fn tech(self) -> TechParams {
        match self {
            GateFamily::CntfetGeneralized | GateFamily::CntfetConventional => {
                TechParams::cntfet_32nm()
            }
            GateFamily::Cmos => TechParams::cmos_32nm(),
        }
    }

    /// The underlying technology kind.
    pub fn tech_kind(self) -> TechKind {
        self.tech().kind
    }

    /// Whether complemented input literals are free (dual-rail convention of
    /// the ambipolar library) or must be realized with inverters.
    pub fn free_input_negation(self) -> bool {
        matches!(self, GateFamily::CntfetGeneralized)
    }

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            GateFamily::CntfetGeneralized => "CNTFET generalized",
            GateFamily::CntfetConventional => "CNTFET conventional",
            GateFamily::Cmos => "CMOS",
        }
    }
}

impl std::fmt::Display for GateFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tech_assignment() {
        assert_eq!(GateFamily::CntfetGeneralized.tech_kind(), TechKind::Cntfet);
        assert_eq!(GateFamily::CntfetConventional.tech_kind(), TechKind::Cntfet);
        assert_eq!(GateFamily::Cmos.tech_kind(), TechKind::Cmos);
    }

    #[test]
    fn only_generalized_family_has_free_negation() {
        assert!(GateFamily::CntfetGeneralized.free_input_negation());
        assert!(!GateFamily::CntfetConventional.free_input_negation());
        assert!(!GateFamily::Cmos.free_input_negation());
    }
}
