//! Library generation: the 46-gate generalized ambipolar library and the
//! 14-cell conventional libraries.
//!
//! The DATE'09 library is reconstructed from its published construction
//! rule: static complementary gates whose pull-up/pull-down networks use at
//! most two transmission gates or transistors in series/parallel, with
//! every literal slot optionally generalized to a transmission-gate XOR.
//! Enumerating all skeletons under that rule (deduplicating symmetric leaf
//! assignments, capping at six logical inputs, and providing non-inverting
//! two-stage variants of the NAND/NOR/AOI21/OAI21 shapes) yields exactly
//! the 46 cells the paper characterizes.

use crate::family::GateFamily;
use crate::gate::Gate;
use crate::network::{Literal, SpNetwork};
use device::Polarity;

/// Leaf of a gate skeleton: a plain literal or a TG-embedded XOR pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Leaf {
    Plain,
    Xor,
}

impl Leaf {
    fn arity(self) -> usize {
        match self {
            Leaf::Plain => 1,
            Leaf::Xor => 2,
        }
    }

    fn pattern_char(self) -> char {
        match self {
            Leaf::Plain => 'v',
            Leaf::Xor => 'x',
        }
    }

    /// Builds the pull-down element for this leaf, consuming variables from
    /// `next_var`.
    fn pd_element(self, next_var: &mut u8) -> SpNetwork {
        match self {
            Leaf::Plain => {
                let v = *next_var;
                *next_var += 1;
                SpNetwork::nfet(v)
            }
            Leaf::Xor => {
                let a = *next_var;
                let b = *next_var + 1;
                *next_var += 2;
                SpNetwork::tg(Literal::pos(a), Literal::pos(b))
            }
        }
    }
}

/// A skeleton: how leaves compose into the pull-down network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Skeleton {
    /// Single leaf (INV / XNOR2 shapes).
    Single,
    /// Two leaves in series (NAND shapes).
    Series2,
    /// Two leaves in parallel (NOR shapes).
    Parallel2,
    /// (l1 & l2) | l3 (AOI21 shapes).
    Aoi21,
    /// (l1 | l2) & l3 (OAI21 shapes).
    Oai21,
    /// (l1 & l2) | (l3 & l4) (AOI22 shapes).
    Aoi22,
    /// (l1 | l2) & (l3 | l4) (OAI22 shapes).
    Oai22,
}

impl Skeleton {
    /// Base names for (inverting, non-inverting) variants.
    fn base_names(self) -> (&'static str, &'static str) {
        match self {
            Skeleton::Single => ("INV", "BUF"),
            Skeleton::Series2 => ("NAND2", "AND2"),
            Skeleton::Parallel2 => ("NOR2", "OR2"),
            Skeleton::Aoi21 => ("AOI21", "AO21"),
            Skeleton::Oai21 => ("OAI21", "OA21"),
            Skeleton::Aoi22 => ("AOI22", "AO22"),
            Skeleton::Oai22 => ("OAI22", "OA22"),
        }
    }

    /// Builds the pull-down network for a leaf assignment.
    fn pull_down(self, leaves: &[Leaf]) -> SpNetwork {
        let mut v = 0u8;
        let mut elems: Vec<SpNetwork> = leaves.iter().map(|l| l.pd_element(&mut v)).collect();
        match self {
            Skeleton::Single => elems.remove(0),
            Skeleton::Series2 => SpNetwork::Series(elems),
            Skeleton::Parallel2 => SpNetwork::Parallel(elems),
            Skeleton::Aoi21 => {
                let l3 = elems.pop().expect("three leaves");
                SpNetwork::parallel([SpNetwork::Series(elems), l3])
            }
            Skeleton::Oai21 => {
                let l3 = elems.pop().expect("three leaves");
                SpNetwork::series([SpNetwork::Parallel(elems), l3])
            }
            Skeleton::Aoi22 => {
                let right = elems.split_off(2);
                SpNetwork::parallel([SpNetwork::Series(elems), SpNetwork::Series(right)])
            }
            Skeleton::Oai22 => {
                let right = elems.split_off(2);
                SpNetwork::series([SpNetwork::Parallel(elems), SpNetwork::Parallel(right)])
            }
        }
    }

    /// Enumerates symmetry-deduplicated leaf assignments with ≤6 inputs.
    fn leaf_assignments(self) -> Vec<Vec<Leaf>> {
        const LP: [Leaf; 2] = [Leaf::Plain, Leaf::Xor];
        // Unordered multiset of two leaves (symmetric pair).
        let pairs: Vec<[Leaf; 2]> = vec![
            [Leaf::Plain, Leaf::Plain],
            [Leaf::Plain, Leaf::Xor],
            [Leaf::Xor, Leaf::Xor],
        ];
        let mut out: Vec<Vec<Leaf>> = Vec::new();
        match self {
            Skeleton::Single => {
                for l in LP {
                    out.push(vec![l]);
                }
            }
            Skeleton::Series2 | Skeleton::Parallel2 => {
                for p in &pairs {
                    out.push(p.to_vec());
                }
            }
            Skeleton::Aoi21 | Skeleton::Oai21 => {
                for p in &pairs {
                    for l3 in LP {
                        out.push(vec![p[0], p[1], l3]);
                    }
                }
            }
            Skeleton::Aoi22 | Skeleton::Oai22 => {
                // Unordered pair of pairs.
                for i in 0..pairs.len() {
                    for j in i..pairs.len() {
                        out.push(vec![pairs[i][0], pairs[i][1], pairs[j][0], pairs[j][1]]);
                    }
                }
            }
        }
        out.retain(|leaves| leaves.iter().map(|l| l.arity()).sum::<usize>() <= 6);
        out
    }
}

/// Derives the cell name for a skeleton/leaf/phase combination.
fn cell_name(skeleton: Skeleton, leaves: &[Leaf], output_inverter: bool) -> String {
    let (inv_name, noninv_name) = skeleton.base_names();
    let base = if output_inverter {
        noninv_name
    } else {
        inv_name
    };
    if skeleton == Skeleton::Single {
        // Special names for the single-leaf shapes.
        return match (leaves[0], output_inverter) {
            (Leaf::Plain, false) => "INV".to_owned(),
            (Leaf::Plain, true) => "BUF".to_owned(),
            (Leaf::Xor, false) => "XNOR2".to_owned(),
            (Leaf::Xor, true) => "XOR2".to_owned(),
        };
    }
    if leaves.iter().all(|&l| l == Leaf::Plain) {
        base.to_owned()
    } else if leaves.iter().all(|&l| l == Leaf::Xor) {
        format!("G{base}")
    } else {
        let pattern: String = leaves.iter().map(|l| l.pattern_char()).collect();
        format!("{base}_{pattern}")
    }
}

/// Generates the gate library of a family.
///
/// * [`GateFamily::CntfetGeneralized`] → the 46-cell ambipolar library;
/// * conventional families → the common 14-cell set (INV, BUF, NAND2,
///   NOR2, AND2, OR2, AOI21, OAI21, AO21, OA21, AOI22, OAI22, XOR2, XNOR2),
///   matching the paper's statement that conventional CNTFET and CMOS
///   "implement the same set of gates".
///
/// # Example
///
/// ```
/// use gate_lib::{generate_library, GateFamily};
///
/// assert_eq!(generate_library(GateFamily::CntfetGeneralized).len(), 46);
/// assert_eq!(generate_library(GateFamily::Cmos).len(), 14);
/// ```
pub fn generate_library(family: GateFamily) -> Vec<Gate> {
    match family {
        GateFamily::CntfetGeneralized => generalized_library(),
        GateFamily::CntfetConventional | GateFamily::Cmos => conventional_library(family),
    }
}

fn generalized_library() -> Vec<Gate> {
    let mut gates = Vec::new();
    const SKELETONS: [Skeleton; 7] = [
        Skeleton::Single,
        Skeleton::Series2,
        Skeleton::Parallel2,
        Skeleton::Aoi21,
        Skeleton::Oai21,
        Skeleton::Aoi22,
        Skeleton::Oai22,
    ];
    for skeleton in SKELETONS {
        for leaves in skeleton.leaf_assignments() {
            let n_inputs: usize = leaves.iter().map(|l| l.arity()).sum();
            let pd = skeleton.pull_down(&leaves);
            // Inverting variant always exists.
            let name = cell_name(skeleton, &leaves, false);
            gates.push(
                Gate::from_pull_down(
                    name,
                    GateFamily::CntfetGeneralized,
                    n_inputs,
                    pd.clone(),
                    false,
                )
                .expect("generated inverting cell is valid"),
            );
            // Non-inverting two-stage variants exist for the NAND/NOR/
            // AOI21/OAI21 shapes. The single-leaf shapes don't need them
            // (BUF is not a logic cell; XOR2 is the XNOR2 cell with a
            // dual-rail input swap) and the four-leaf shapes are the
            // largest cells of the library in inverting form only.
            let has_noninverting = matches!(
                skeleton,
                Skeleton::Series2 | Skeleton::Parallel2 | Skeleton::Aoi21 | Skeleton::Oai21
            );
            if has_noninverting {
                let name = cell_name(skeleton, &leaves, true);
                gates.push(
                    Gate::from_pull_down(name, GateFamily::CntfetGeneralized, n_inputs, pd, true)
                        .expect("generated non-inverting cell is valid"),
                );
            }
        }
    }
    // Note: there is no separate XOR2 cell — under the dual-rail signal
    // convention XOR2 is the XNOR2 cell with one input rail swapped, and
    // the mapper's free input negation exploits exactly that.
    gates
}

fn conventional_library(family: GateFamily) -> Vec<Gate> {
    let mut gates = Vec::new();
    let mut push = |name: &str, n: usize, pd: SpNetwork, inv: bool| {
        gates.push(
            Gate::from_pull_down(name, family, n, pd, inv)
                .unwrap_or_else(|e| panic!("conventional cell {name} invalid: {e}")),
        );
    };
    let nfet = SpNetwork::nfet;
    push("INV", 1, nfet(0), false);
    push("BUF", 1, nfet(0), true);
    push("NAND2", 2, SpNetwork::series([nfet(0), nfet(1)]), false);
    push("AND2", 2, SpNetwork::series([nfet(0), nfet(1)]), true);
    push("NOR2", 2, SpNetwork::parallel([nfet(0), nfet(1)]), false);
    push("OR2", 2, SpNetwork::parallel([nfet(0), nfet(1)]), true);
    let aoi21 = || SpNetwork::parallel([SpNetwork::series([nfet(0), nfet(1)]), nfet(2)]);
    push("AOI21", 3, aoi21(), false);
    push("AO21", 3, aoi21(), true);
    let oai21 = || SpNetwork::series([SpNetwork::parallel([nfet(0), nfet(1)]), nfet(2)]);
    push("OAI21", 3, oai21(), false);
    push("OA21", 3, oai21(), true);
    push(
        "AOI22",
        4,
        SpNetwork::parallel([
            SpNetwork::series([nfet(0), nfet(1)]),
            SpNetwork::series([nfet(2), nfet(3)]),
        ]),
        false,
    );
    push(
        "OAI22",
        4,
        SpNetwork::series([
            SpNetwork::parallel([nfet(0), nfet(1)]),
            SpNetwork::parallel([nfet(2), nfet(3)]),
        ]),
        false,
    );
    // CMOS-style XOR2/XNOR2: complementary 4+4 network with internal
    // inverters for the complemented literals (12 transistors).
    let lit_n = |var: u8, positive: bool| SpNetwork::Transistor {
        gate: Literal { var, positive },
        polarity: Polarity::N,
    };
    // XOR2 pull-down conducts when output must be 0: a⊕b = 0.
    push(
        "XOR2",
        2,
        SpNetwork::parallel([
            SpNetwork::series([lit_n(0, true), lit_n(1, true)]),
            SpNetwork::series([lit_n(0, false), lit_n(1, false)]),
        ]),
        false,
    );
    push(
        "XNOR2",
        2,
        SpNetwork::parallel([
            SpNetwork::series([lit_n(0, true), lit_n(1, false)]),
            SpNetwork::series([lit_n(0, false), lit_n(1, true)]),
        ]),
        false,
    );
    gates
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::TruthTable;
    use std::collections::HashSet;

    #[test]
    fn generalized_library_has_46_cells() {
        let lib = generate_library(GateFamily::CntfetGeneralized);
        assert_eq!(lib.len(), 46, "the paper characterizes 46 cells");
        // 28 inverting skeleton cells + 18 non-inverting two-stage cells.
        let inverting = lib.iter().filter(|g| !g.output_inverter).count();
        assert_eq!(inverting, 28);
        let names: HashSet<&str> = lib.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(names.len(), 46, "cell names are unique");
    }

    #[test]
    fn conventional_libraries_share_cell_set() {
        let cnt = generate_library(GateFamily::CntfetConventional);
        let cmos = generate_library(GateFamily::Cmos);
        assert_eq!(cnt.len(), 14);
        assert_eq!(cmos.len(), 14);
        for (a, b) in cnt.iter().zip(cmos.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.function, b.function);
            assert_eq!(a.transistor_count(), b.transistor_count());
        }
    }

    #[test]
    fn all_cells_validate() {
        for family in GateFamily::ALL {
            for gate in generate_library(family) {
                gate.validate()
                    .unwrap_or_else(|e| panic!("{} in {family}: {e}", gate.name));
            }
        }
    }

    #[test]
    fn flagship_functions() {
        let lib = generate_library(GateFamily::CntfetGeneralized);
        let find = |name: &str| {
            lib.iter()
                .find(|g| g.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        // GNAND2 = !((a⊕c)&(b⊕d)) — variables in leaf order a,c | b,d.
        let gnand = find("GNAND2");
        let t = |v| TruthTable::var(4, v);
        assert_eq!(gnand.function, !((t(0) ^ t(1)) & (t(2) ^ t(3))));
        // GNOR2 = !((a⊕b)|(c⊕d)).
        let gnor = find("GNOR2");
        assert_eq!(gnor.function, !((t(0) ^ t(1)) | (t(2) ^ t(3))));
        // XNOR2 single-stage (4 transistors); XOR2 is XNOR2 + dual-rail
        // input swap, so it has no separate cell.
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!(find("XNOR2").function, !(a ^ b));
        assert_eq!(find("XNOR2").transistor_count(), 4);
        assert!(lib.iter().all(|g| g.name != "XOR2"));
        // Mixed-leaf NAND: !(a & (b⊕c)).
        let nand_vx = find("NAND2_vx");
        let t3 = |v| TruthTable::var(3, v);
        assert_eq!(nand_vx.function, !(t3(0) & (t3(1) ^ t3(2))));
    }

    #[test]
    fn generalized_functions_are_distinct() {
        let lib = generate_library(GateFamily::CntfetGeneralized);
        let mut seen = HashSet::new();
        for g in &lib {
            // Functions distinct per (arity, truth table, output phase
            // encoded in the table already).
            let key = (g.n_inputs, g.function.bits());
            assert!(
                seen.insert(key),
                "duplicate function for {} ({} inputs)",
                g.name,
                g.n_inputs
            );
        }
    }

    #[test]
    fn input_arity_capped_at_six() {
        for family in GateFamily::ALL {
            for g in generate_library(family) {
                assert!(g.n_inputs <= 6, "{} has {} inputs", g.name, g.n_inputs);
            }
        }
    }

    #[test]
    fn generalized_cells_use_fewer_transistors_for_xor_rich_functions() {
        // The expressive-power claim at cell level: the generalized GNAND2
        // implements a 4-input XOR-rich function in 8 transistors; the
        // conventional family needs 2 XOR cells (12 T each) + 1 NAND (4 T).
        let gen = generate_library(GateFamily::CntfetGeneralized);
        let gnand = gen.iter().find(|g| g.name == "GNAND2").expect("GNAND2");
        let conv = generate_library(GateFamily::Cmos);
        let xor = conv.iter().find(|g| g.name == "XOR2").expect("XOR2");
        let nand = conv.iter().find(|g| g.name == "NAND2").expect("NAND2");
        let conventional_cost = 2 * xor.transistor_count() + nand.transistor_count();
        assert!(gnand.transistor_count() * 3 < conventional_cost);
    }
}
