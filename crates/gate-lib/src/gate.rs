//! A static complementary logic gate: pull-up and pull-down networks plus
//! an optional output inverter (for the non-inverting two-stage cells).

use crate::family::GateFamily;
use crate::network::SpNetwork;
use logic::TruthTable;

/// Error produced when a gate description is inconsistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GateError {
    /// Pull-up and pull-down conduct simultaneously or neither conducts for
    /// some input vector.
    NotComplementary {
        /// Offending input vector (as a minterm index).
        input_index: usize,
    },
    /// A network violates the ≤2 series/parallel composition rule of the
    /// DATE'09 library.
    CompositionRule,
    /// Transmission gates are only available in the ambipolar family.
    TgInConventionalFamily,
    /// The function references variables beyond `n_inputs`.
    ArityMismatch,
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::NotComplementary { input_index } => {
                write!(
                    f,
                    "pull-up/pull-down not complementary at input {input_index}"
                )
            }
            GateError::CompositionRule => {
                write!(f, "network exceeds two series/parallel elements")
            }
            GateError::TgInConventionalFamily => {
                write!(f, "transmission gate used outside the ambipolar family")
            }
            GateError::ArityMismatch => write!(f, "function arity mismatch"),
        }
    }
}

impl std::error::Error for GateError {}

/// A library cell: a single complementary core stage, optionally followed
/// by an output inverter.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    /// Cell name, e.g. `GNAND2`.
    pub name: String,
    /// Family this cell belongs to.
    pub family: GateFamily,
    /// Number of logical inputs.
    pub n_inputs: usize,
    /// Output function over `n_inputs` variables.
    pub function: TruthTable,
    /// Pull-up network (connects output to V_DD; conducts iff core = 1).
    pub pull_up: SpNetwork,
    /// Pull-down network (connects output to V_SS; conducts iff core = 0).
    pub pull_down: SpNetwork,
    /// Whether an output inverter follows the core stage.
    pub output_inverter: bool,
}

impl Gate {
    /// Builds a gate from its pull-down network: the pull-up is the dual
    /// network, the core function is the pull-up's conduction condition,
    /// and `output_inverter` selects the non-inverting two-stage variant.
    ///
    /// # Errors
    ///
    /// Returns a [`GateError`] if the resulting cell violates family or
    /// composition constraints.
    pub fn from_pull_down(
        name: impl Into<String>,
        family: GateFamily,
        n_inputs: usize,
        pull_down: SpNetwork,
        output_inverter: bool,
    ) -> Result<Self, GateError> {
        let pull_up = pull_down.dual();
        let core = pull_up.condition(n_inputs);
        let function = if output_inverter { !core } else { core };
        let gate = Self {
            name: name.into(),
            family,
            n_inputs,
            function,
            pull_up,
            pull_down,
            output_inverter,
        };
        gate.validate()?;
        Ok(gate)
    }

    /// Checks all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), GateError> {
        // Complementarity: exactly one network conducts for every vector.
        let pu = self.pull_up.condition(self.n_inputs);
        let pd = self.pull_down.condition(self.n_inputs);
        if pu != !pd {
            let diff = pu ^ !pd;
            let input_index = (0..(1usize << self.n_inputs))
                .find(|&i| diff.eval_index(i))
                .unwrap_or(0);
            return Err(GateError::NotComplementary { input_index });
        }
        // Composition rule: at most two elements per series/parallel group.
        if !composition_ok(&self.pull_up) || !composition_ok(&self.pull_down) {
            return Err(GateError::CompositionRule);
        }
        // TGs only exist in the ambipolar generalized family.
        if self.family != GateFamily::CntfetGeneralized
            && (self.pull_up.contains_tg() || self.pull_down.contains_tg())
        {
            return Err(GateError::TgInConventionalFamily);
        }
        // Function arity.
        if self.function.n_vars() != self.n_inputs {
            return Err(GateError::ArityMismatch);
        }
        Ok(())
    }

    /// Total physical transistors: both networks, the optional output
    /// inverter, and (for conventional families) the internal inverters
    /// generating complemented literals.
    pub fn transistor_count(&self) -> usize {
        let core = self.pull_up.transistor_count() + self.pull_down.transistor_count();
        let inv = if self.output_inverter { 2 } else { 0 };
        core + inv + 2 * self.internal_inverter_count()
    }

    /// Number of internal inverters required for complemented literals
    /// (zero for the dual-rail generalized family).
    pub fn internal_inverter_count(&self) -> usize {
        if self.family.free_input_negation() {
            0
        } else {
            let mask = self.pull_up.complemented_vars() | self.pull_down.complemented_vars();
            mask.count_ones() as usize
        }
    }

    /// Input load of each pin, in unit-gate-capacitance counts.
    ///
    /// For the dual-rail generalized family both rails load the pin; for
    /// conventional families the complemented rail is driven by an internal
    /// inverter whose input (n + p gates) loads the pin instead.
    pub fn input_loads(&self) -> Vec<usize> {
        let mut pos = vec![0usize; self.n_inputs];
        let mut neg = vec![0usize; self.n_inputs];
        self.pull_up.input_loads_signed(&mut pos, &mut neg);
        self.pull_down.input_loads_signed(&mut pos, &mut neg);
        if self.family.free_input_negation() {
            for (p, n) in pos.iter_mut().zip(neg.iter()) {
                *p += n;
            }
        } else {
            let mask = self.pull_up.complemented_vars() | self.pull_down.complemented_vars();
            for (v, load) in pos.iter_mut().enumerate() {
                if (mask >> v) & 1 == 1 {
                    *load += 2;
                }
            }
        }
        pos
    }

    /// Capacitive input load per pin, farads. Polarity (back) gates of
    /// transmission gates couple through the thick buried insulator and
    /// cost `c_polarity` instead of `c_gate`; conventional families add
    /// the internal-inverter load for complemented literals.
    pub fn input_capacitances(&self, c_gate: f64, c_polarity: f64) -> Vec<f64> {
        if self.family.free_input_negation() {
            let mut caps = vec![0.0f64; self.n_inputs];
            self.pull_up.input_cap_loads(&mut caps, c_gate, c_polarity);
            self.pull_down
                .input_cap_loads(&mut caps, c_gate, c_polarity);
            caps
        } else {
            // No TGs in conventional families: unit-count accounting with
            // the front-gate capacitance.
            let mut pos = vec![0usize; self.n_inputs];
            let mut neg = vec![0usize; self.n_inputs];
            self.pull_up.input_loads_signed(&mut pos, &mut neg);
            self.pull_down.input_loads_signed(&mut pos, &mut neg);
            let mask = self.pull_up.complemented_vars() | self.pull_down.complemented_vars();
            pos.iter()
                .enumerate()
                .map(|(v, &p)| {
                    let inv = if (mask >> v) & 1 == 1 { 2.0 } else { 0.0 };
                    (p as f64 + inv) * c_gate
                })
                .collect()
        }
    }

    /// Worst-case series device depth of the driving stage (sets the drive
    /// resistance). With an output inverter, the inverter drives the load.
    pub fn drive_depth(&self) -> usize {
        if self.output_inverter {
            1
        } else {
            self.pull_up
                .max_series_depth()
                .max(self.pull_down.max_series_depth())
        }
    }

    /// Number of drain diffusions on the output node (sets the intrinsic
    /// output capacitance).
    pub fn output_branches(&self) -> usize {
        if self.output_inverter {
            2
        } else {
            self.pull_up.output_branches() + self.pull_down.output_branches()
        }
    }

    /// The paper's activity factor: the fraction of input combinations on
    /// the minority output polarity (¼ for NAND2/NOR2, ½ for XOR2).
    pub fn activity_factor(&self) -> f64 {
        let ones = self.function.count_ones() as f64;
        let zeros = self.function.count_zeros() as f64;
        ones.min(zeros) / (1u64 << self.n_inputs) as f64
    }

    /// Whether the cell embeds at least one XOR (i.e. uses a TG).
    pub fn is_generalized(&self) -> bool {
        self.pull_up.contains_tg() || self.pull_down.contains_tg()
    }
}

/// Checks the ≤2-elements-per-group rule recursively.
fn composition_ok(net: &SpNetwork) -> bool {
    match net {
        SpNetwork::Transistor { .. } | SpNetwork::TransmissionGate { .. } => true,
        SpNetwork::Series(xs) | SpNetwork::Parallel(xs) => {
            xs.len() <= 2 && xs.iter().all(composition_ok)
        }
    }
}

impl std::fmt::Display for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} inputs, {} transistors, f={}]",
            self.name,
            self.n_inputs,
            self.transistor_count(),
            self.function
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Literal;

    fn nand2(family: GateFamily) -> Gate {
        Gate::from_pull_down(
            "NAND2",
            family,
            2,
            SpNetwork::series([SpNetwork::nfet(0), SpNetwork::nfet(1)]),
            false,
        )
        .expect("NAND2 is valid")
    }

    #[test]
    fn nand2_metrics() {
        let g = nand2(GateFamily::Cmos);
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!(g.function, !(a & b));
        assert_eq!(g.transistor_count(), 4);
        assert_eq!(g.input_loads(), vec![2, 2]);
        assert_eq!(g.drive_depth(), 2);
        assert_eq!(g.output_branches(), 3); // 2 parallel PU + 1 series PD
        assert!((g.activity_factor() - 0.25).abs() < 1e-12);
        assert!(!g.is_generalized());
    }

    #[test]
    fn and2_adds_output_inverter() {
        let g = Gate::from_pull_down(
            "AND2",
            GateFamily::Cmos,
            2,
            SpNetwork::series([SpNetwork::nfet(0), SpNetwork::nfet(1)]),
            true,
        )
        .expect("AND2 is valid");
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!(g.function, a & b);
        assert_eq!(g.transistor_count(), 6);
        assert_eq!(g.drive_depth(), 1);
        assert_eq!(g.output_branches(), 2);
    }

    #[test]
    fn gnand2_embeds_xors() {
        let pd = SpNetwork::series([
            SpNetwork::tg(Literal::pos(0), Literal::pos(2)),
            SpNetwork::tg(Literal::pos(1), Literal::pos(3)),
        ]);
        let g = Gate::from_pull_down("GNAND2", GateFamily::CntfetGeneralized, 4, pd, false)
            .expect("GNAND2 is valid");
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 2);
        let d = TruthTable::var(4, 3);
        assert_eq!(g.function, !((a ^ c) & (b ^ d)));
        assert_eq!(g.transistor_count(), 8);
        assert_eq!(g.input_loads(), vec![4, 4, 4, 4]);
        assert!(g.is_generalized());
        // The paper's observation: embedding XOR in a complex gate does not
        // push the activity factor to the stand-alone XOR's 50 %.
        assert!((g.activity_factor() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn xor_activity_factor_is_half() {
        let pd = SpNetwork::tg(Literal::pos(0), Literal::neg(1));
        let g = Gate::from_pull_down("XOR2", GateFamily::CntfetGeneralized, 2, pd, false)
            .expect("XOR2 is valid");
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!(g.function, a ^ b);
        assert!((g.activity_factor() - 0.5).abs() < 1e-12);
        assert_eq!(g.transistor_count(), 4);
    }

    #[test]
    fn cmos_xor_uses_internal_inverters() {
        // XOR2 in CMOS: PD conducts when a ⊕ b = 0.
        let pd = SpNetwork::parallel([
            SpNetwork::series([SpNetwork::nfet(0), SpNetwork::nfet(1)]),
            SpNetwork::series([
                SpNetwork::Transistor {
                    gate: Literal::neg(0),
                    polarity: device::Polarity::N,
                },
                SpNetwork::Transistor {
                    gate: Literal::neg(1),
                    polarity: device::Polarity::N,
                },
            ]),
        ]);
        let g = Gate::from_pull_down("XOR2", GateFamily::Cmos, 2, pd, false).expect("valid");
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!(g.function, a ^ b);
        assert_eq!(g.internal_inverter_count(), 2);
        assert_eq!(g.transistor_count(), 12);
        // Each pin: 2 network gates + 2 inverter gates.
        assert_eq!(g.input_loads(), vec![4, 4]);
    }

    #[test]
    fn tg_rejected_in_cmos() {
        let pd = SpNetwork::tg(Literal::pos(0), Literal::pos(1));
        let err = Gate::from_pull_down("BAD", GateFamily::Cmos, 2, pd, false)
            .expect_err("TG must be rejected outside the ambipolar family");
        assert_eq!(err, GateError::TgInConventionalFamily);
    }

    #[test]
    fn composition_rule_enforced() {
        let pd = SpNetwork::series([SpNetwork::nfet(0), SpNetwork::nfet(1), SpNetwork::nfet(2)]);
        let err = Gate::from_pull_down("NAND3", GateFamily::Cmos, 3, pd, false)
            .expect_err("three in series violates the rule");
        assert_eq!(err, GateError::CompositionRule);
    }

    #[test]
    fn noncomplementary_rejected() {
        // Hand-build a broken gate: both networks pull-down style.
        let pd = SpNetwork::nfet(0);
        let gate = Gate {
            name: "BROKEN".into(),
            family: GateFamily::Cmos,
            n_inputs: 1,
            function: TruthTable::var(1, 0),
            pull_up: pd.clone(),
            pull_down: pd,
            output_inverter: false,
        };
        assert!(matches!(
            gate.validate(),
            Err(GateError::NotComplementary { .. })
        ));
    }
}
