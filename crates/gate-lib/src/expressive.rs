//! Expressive power of a gate library — the paper's central concept:
//! "the ability to implement more logic functions with fewer physical
//! resources".
//!
//! An in-field programmable cell implements more than its nominal
//! function: tying generalized (XOR-side) inputs to constants
//! reconfigures it. The paper's example: the generalized NAND
//! `!((A⊕C)&(B⊕D))` acts as a NAND for `C=D=0`, an OR for `C=D=1`, and as
//! either implication in between — four distinct 2-input functions from
//! one 8-transistor cell, without rewiring.
//!
//! [`library_expressive_power`] quantifies this for a whole library: for
//! every cell, every assignment of {constant 0, constant 1, variable} to
//! its pins is enumerated, and the distinct non-degenerate functions (up
//! to input permutation, i.e. P-classes — polarity is *not* free here
//! because this measures the cell itself, not the mapper) are counted per
//! arity.

use crate::family::GateFamily;
use crate::gate::Gate;
use crate::generate::generate_library;
use logic::TruthTable;
use std::collections::{BTreeMap, BTreeSet};

/// Distinct implementable functions per arity, plus resource cost.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExpressivePower {
    /// For each support size, the distinct P-canonical functions reachable
    /// by constant-tying any library cell.
    pub functions_by_arity: BTreeMap<usize, BTreeSet<u64>>,
    /// Total transistors across the library (the "physical resources").
    pub total_transistors: usize,
}

impl ExpressivePower {
    /// Number of distinct functions of the given support size.
    pub fn count(&self, arity: usize) -> usize {
        self.functions_by_arity.get(&arity).map_or(0, BTreeSet::len)
    }

    /// Total distinct functions across arities ≥ 1.
    pub fn total(&self) -> usize {
        self.functions_by_arity.values().map(BTreeSet::len).sum()
    }

    /// Functions per 100 transistors — the paper's "more functions with
    /// fewer physical resources" as a single figure of merit.
    pub fn per_hundred_transistors(&self) -> f64 {
        100.0 * self.total() as f64 / self.total_transistors.max(1) as f64
    }
}

/// P-canonical form: minimal truth-table bits over input permutations
/// only (no negations — constants already explore the input space, and
/// output phase distinguishes e.g. NAND from AND cells).
fn p_canon(t: TruthTable) -> u64 {
    let n = t.n_vars();
    let mut best = t.bits();
    let mut indices: Vec<usize> = (0..n).collect();
    permute_all(&mut indices, 0, &mut |perm| {
        let cand = t.permute(perm).bits();
        if cand < best {
            best = cand;
        }
    });
    best
}

fn permute_all(items: &mut [usize], at: usize, visit: &mut impl FnMut(&[usize])) {
    if at == items.len() {
        visit(items);
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        permute_all(items, at + 1, visit);
        items.swap(at, i);
    }
}

/// All functions a single cell can implement by tying subsets of its pins
/// to constants (the remaining pins stay distinct variables), keyed by
/// support size.
pub fn cell_functions(gate: &Gate) -> BTreeMap<usize, BTreeSet<u64>> {
    let n = gate.n_inputs;
    let mut out: BTreeMap<usize, BTreeSet<u64>> = BTreeMap::new();
    // Ternary assignment per pin: 0 = const0, 1 = const1, 2 = variable.
    let total = 3usize.pow(n as u32);
    for code in 0..total {
        let mut c = code;
        let mut assignment = Vec::with_capacity(n);
        for _ in 0..n {
            assignment.push(c % 3);
            c /= 3;
        }
        let free: Vec<usize> = (0..n).filter(|&i| assignment[i] == 2).collect();
        if free.is_empty() {
            continue;
        }
        // Build the restricted function over the free pins.
        let m = free.len();
        let tt = TruthTable::from_fn(m, |vars| {
            let mut pins = vec![false; n];
            for (i, &a) in assignment.iter().enumerate() {
                pins[i] = match a {
                    0 => false,
                    1 => true,
                    _ => vars[free.iter().position(|&f| f == i).expect("free pin")],
                };
            }
            gate.function.eval(&pins)
        });
        // Skip degenerate restrictions (constants or reduced support).
        if tt.support_size() != m {
            continue;
        }
        out.entry(m).or_default().insert(p_canon(tt));
    }
    out
}

/// Computes the expressive power of a whole family's library.
///
/// # Example
///
/// ```
/// use gate_lib::{expressive::library_expressive_power, GateFamily};
///
/// let gen = library_expressive_power(GateFamily::CntfetGeneralized);
/// let cmos = library_expressive_power(GateFamily::Cmos);
/// // The paper's claim: higher expressive power per physical resource.
/// assert!(gen.per_hundred_transistors() > cmos.per_hundred_transistors());
/// ```
pub fn library_expressive_power(family: GateFamily) -> ExpressivePower {
    let library = generate_library(family);
    let mut power = ExpressivePower::default();
    for gate in &library {
        power.total_transistors += gate.transistor_count();
        for (arity, set) in cell_functions(gate) {
            power
                .functions_by_arity
                .entry(arity)
                .or_default()
                .extend(set);
        }
    }
    power
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Literal, SpNetwork};

    #[test]
    fn gnand2_reconfigures_into_four_two_input_functions() {
        // The paper's in-field programmability example.
        let pd = SpNetwork::series([
            SpNetwork::tg(Literal::pos(0), Literal::pos(1)),
            SpNetwork::tg(Literal::pos(2), Literal::pos(3)),
        ]);
        let gnand = Gate::from_pull_down("GNAND2", GateFamily::CntfetGeneralized, 4, pd, false)
            .expect("valid");
        let fns = cell_functions(&gnand);
        // Distinct 2-input P-classes: NAND-class appears in several
        // polarity flavours; count must be at least {NAND, OR, two
        // implications} = 4 distinct functions.
        assert!(
            fns.get(&2).map_or(0, BTreeSet::len) >= 4,
            "GNAND2 2-input functions: {:?}",
            fns.get(&2).map(BTreeSet::len)
        );
        // And it still provides its nominal 4-input function.
        assert_eq!(fns.get(&4).map_or(0, BTreeSet::len), 1);
    }

    #[test]
    fn xnor2_covers_both_xor_phases_via_constants() {
        let pd = SpNetwork::tg(Literal::pos(0), Literal::pos(1));
        let xnor = Gate::from_pull_down("XNOR2", GateFamily::CntfetGeneralized, 2, pd, false)
            .expect("valid");
        let fns = cell_functions(&xnor);
        // Constant-tying one input of XNOR gives INV/BUF (support 1).
        assert!(fns.get(&1).map_or(0, BTreeSet::len) >= 2);
        assert_eq!(fns.get(&2).map_or(0, BTreeSet::len), 1);
    }

    #[test]
    fn generalized_library_is_more_expressive() {
        let gen = library_expressive_power(GateFamily::CntfetGeneralized);
        let conv = library_expressive_power(GateFamily::CntfetConventional);
        // More functions at every arity ≥ 2…
        for arity in 2..=4usize {
            assert!(
                gen.count(arity) >= conv.count(arity),
                "arity {arity}: {} vs {}",
                gen.count(arity),
                conv.count(arity)
            );
        }
        assert!(gen.total() > conv.total());
        // …and more per transistor, despite the bigger library.
        assert!(gen.per_hundred_transistors() > conv.per_hundred_transistors());
    }

    #[test]
    fn p_canon_is_permutation_invariant() {
        let t = TruthTable::from_fn(3, |v| (v[0] && v[1]) || v[2]);
        for perm in [[1, 0, 2], [2, 1, 0], [0, 2, 1]] {
            assert_eq!(p_canon(t), p_canon(t.permute(&perm)));
        }
        // But NOT negation-invariant (cells are physical: NAND ≠ AND).
        let and3 = TruthTable::from_fn(3, |v| v[0] && v[1] && v[2]);
        assert_ne!(p_canon(and3), p_canon(!and3));
    }
}
