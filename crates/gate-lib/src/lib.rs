//! The static ambipolar-CNTFET transmission-gate library of the paper
//! (designed in Ben Jamaa et al., DATE'09, the paper's ref. \[3\]) plus the two comparison
//! families.
//!
//! Three gate families are generated:
//!
//! * [`GateFamily::CntfetGeneralized`] — the 46-gate ambipolar library:
//!   complementary pull-up/pull-down networks built from fixed-polarity
//!   ambipolar CNTFETs and transmission gates (each TG conducts iff
//!   `a ⊕ b = 1`, Fig. 2), so every literal slot of a classic gate can be
//!   *generalized* to an XOR of two inputs (e.g. the generalized NAND
//!   `!((A⊕C)&(B⊕D))`, Fig. 3);
//! * [`GateFamily::CntfetConventional`] — the same conventional gate set as
//!   CMOS, built from unipolar-configured CNTFETs;
//! * [`GateFamily::Cmos`] — 32 nm bulk CMOS standard cells.
//!
//! Construction rule (paper §2.2): no more than two transmission gates or
//! transistors in series or parallel within a pull-up/pull-down network.
//!
//! # Example
//!
//! ```
//! use gate_lib::{GateFamily, generate_library};
//!
//! let lib = generate_library(GateFamily::CntfetGeneralized);
//! assert_eq!(lib.len(), 46); // the paper's library size
//! let gnand = lib.iter().find(|g| g.name == "GNAND2").expect("GNAND2 exists");
//! assert_eq!(gnand.n_inputs, 4);
//! ```

pub mod dynamic;
pub mod expressive;
pub mod family;
pub mod gate;
pub mod generate;
pub mod network;

pub use dynamic::DynamicGnor;
pub use expressive::library_expressive_power;
pub use family::GateFamily;
pub use gate::Gate;
pub use generate::generate_library;
pub use network::{Literal, SpNetwork};
