//! Series/parallel transistor networks: the pull-up and pull-down networks
//! of static complementary gates.
//!
//! Networks are built from two element kinds, matching §2.2 of the paper:
//!
//! * a **fixed-polarity transistor** (an ambipolar CNTFET with its polarity
//!   gate tied to a rail, or a plain unipolar MOSFET), conducting when its
//!   gate signal enables the channel;
//! * a **transmission gate** — two ambipolar devices in parallel, biased
//!   with opposite polarities, with `A`/`B` on one device and `A'`/`B'` on
//!   the other — conducting iff `A ⊕ B = 1` (Fig. 2). Generalized gates use
//!   TGs as "literals" embedding XOR for free.

use device::Polarity;
use logic::TruthTable;

/// A signal literal: an input variable, possibly complemented.
///
/// Complemented literals assume the dual-rail signal convention of the
/// DATE'09 ambipolar library for the generalized family; conventional
/// families realize them with internal inverters, which
/// [`Gate`](crate::gate::Gate) accounts for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// Input variable index (0-based).
    pub var: u8,
    /// `true` for the plain signal, `false` for its complement.
    pub positive: bool,
}

impl Literal {
    /// A positive literal of `var`.
    pub fn pos(var: u8) -> Self {
        Self {
            var,
            positive: true,
        }
    }

    /// A negative literal of `var`.
    pub fn neg(var: u8) -> Self {
        Self {
            var,
            positive: false,
        }
    }

    /// The complemented literal.
    pub fn complement(self) -> Self {
        Self {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Evaluates the literal under an assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var as usize] == self.positive
    }

    /// Truth table of the literal over `n_vars` variables.
    pub fn truth_table(self, n_vars: usize) -> TruthTable {
        let v = TruthTable::var(n_vars, self.var as usize);
        if self.positive {
            v
        } else {
            !v
        }
    }
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = (b'a' + self.var) as char;
        if self.positive {
            write!(f, "{name}")
        } else {
            write!(f, "{name}'")
        }
    }
}

/// A series/parallel network of switch elements.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SpNetwork {
    /// A fixed-polarity transistor: conducts when the gate signal enables
    /// the channel (`N`: literal true; `P`: literal false).
    Transistor {
        /// Gate signal.
        gate: Literal,
        /// Channel polarity (for ambipolar devices, the polarity-gate
        /// configuration).
        polarity: Polarity,
    },
    /// A transmission gate conducting iff `a ⊕ b = 1`; an "XNOR-passing"
    /// TG is expressed by complementing one literal.
    TransmissionGate {
        /// Signal on the polarity gate of the first device (and complemented
        /// on the second).
        a: Literal,
        /// Signal on the conventional gate of the first device (and
        /// complemented on the second).
        b: Literal,
    },
    /// Elements connected in series (conducts iff all conduct).
    Series(Vec<SpNetwork>),
    /// Elements connected in parallel (conducts iff any conducts).
    Parallel(Vec<SpNetwork>),
}

impl SpNetwork {
    /// An n-type transistor on a positive input.
    pub fn nfet(var: u8) -> Self {
        SpNetwork::Transistor {
            gate: Literal::pos(var),
            polarity: Polarity::N,
        }
    }

    /// A p-type transistor on a positive input.
    pub fn pfet(var: u8) -> Self {
        SpNetwork::Transistor {
            gate: Literal::pos(var),
            polarity: Polarity::P,
        }
    }

    /// A transmission gate conducting on `a ⊕ b`.
    pub fn tg(a: Literal, b: Literal) -> Self {
        SpNetwork::TransmissionGate { a, b }
    }

    /// Series composition.
    pub fn series(elements: impl IntoIterator<Item = SpNetwork>) -> Self {
        SpNetwork::Series(elements.into_iter().collect())
    }

    /// Parallel composition.
    pub fn parallel(elements: impl IntoIterator<Item = SpNetwork>) -> Self {
        SpNetwork::Parallel(elements.into_iter().collect())
    }

    /// Whether the network conducts under the given input assignment.
    pub fn conducts(&self, assignment: &[bool]) -> bool {
        match self {
            SpNetwork::Transistor { gate, polarity } => {
                let signal = gate.eval(assignment);
                match polarity {
                    Polarity::N => signal,
                    Polarity::P => !signal,
                }
            }
            SpNetwork::TransmissionGate { a, b } => a.eval(assignment) ^ b.eval(assignment),
            SpNetwork::Series(xs) => xs.iter().all(|x| x.conducts(assignment)),
            SpNetwork::Parallel(xs) => xs.iter().any(|x| x.conducts(assignment)),
        }
    }

    /// The conduction condition as a truth table over `n_vars` variables.
    pub fn condition(&self, n_vars: usize) -> TruthTable {
        match self {
            SpNetwork::Transistor { gate, polarity } => {
                let lit = gate.truth_table(n_vars);
                match polarity {
                    Polarity::N => lit,
                    Polarity::P => !lit,
                }
            }
            SpNetwork::TransmissionGate { a, b } => a.truth_table(n_vars) ^ b.truth_table(n_vars),
            SpNetwork::Series(xs) => xs
                .iter()
                .fold(TruthTable::one(n_vars), |acc, x| acc & x.condition(n_vars)),
            SpNetwork::Parallel(xs) => xs
                .iter()
                .fold(TruthTable::zero(n_vars), |acc, x| acc | x.condition(n_vars)),
        }
    }

    /// The dual network: series ↔ parallel with every element's conduction
    /// condition complemented. For a pull-down network implementing
    /// `!f`, the dual is the pull-up network implementing `f`.
    pub fn dual(&self) -> SpNetwork {
        match self {
            SpNetwork::Transistor { gate, polarity } => SpNetwork::Transistor {
                gate: *gate,
                polarity: polarity.opposite(),
            },
            // TG(a, b) conducts on a⊕b; its dual conducts on !(a⊕b) = a⊕b'.
            SpNetwork::TransmissionGate { a, b } => SpNetwork::TransmissionGate {
                a: *a,
                b: b.complement(),
            },
            SpNetwork::Series(xs) => SpNetwork::Parallel(xs.iter().map(SpNetwork::dual).collect()),
            SpNetwork::Parallel(xs) => SpNetwork::Series(xs.iter().map(SpNetwork::dual).collect()),
        }
    }

    /// Number of physical transistors (a TG counts two).
    pub fn transistor_count(&self) -> usize {
        match self {
            SpNetwork::Transistor { .. } => 1,
            SpNetwork::TransmissionGate { .. } => 2,
            SpNetwork::Series(xs) | SpNetwork::Parallel(xs) => {
                xs.iter().map(SpNetwork::transistor_count).sum()
            }
        }
    }

    /// Number of device-gate terminals each input variable drives
    /// (gate-capacitance units): a fixed transistor loads its input once, a
    /// TG loads each of its two inputs twice (polarity + conventional gate
    /// across the complementary pair).
    pub fn input_loads(&self, loads: &mut [usize]) {
        match self {
            SpNetwork::Transistor { gate, .. } => loads[gate.var as usize] += 1,
            SpNetwork::TransmissionGate { a, b } => {
                loads[a.var as usize] += 2;
                loads[b.var as usize] += 2;
            }
            SpNetwork::Series(xs) | SpNetwork::Parallel(xs) => {
                for x in xs {
                    x.input_loads(loads);
                }
            }
        }
    }

    /// Capacitive input load per variable, in farads. The front gate of a
    /// device costs `c_gate`; the polarity (back) gate of a transmission
    /// gate couples through the thick buried insulator and costs only
    /// `c_polarity`. In a TG, the first signal drives the two polarity
    /// gates and the second the two front gates.
    pub fn input_cap_loads(&self, caps: &mut [f64], c_gate: f64, c_polarity: f64) {
        match self {
            SpNetwork::Transistor { gate, .. } => caps[gate.var as usize] += c_gate,
            SpNetwork::TransmissionGate { a, b } => {
                caps[a.var as usize] += 2.0 * c_polarity;
                caps[b.var as usize] += 2.0 * c_gate;
            }
            SpNetwork::Series(xs) | SpNetwork::Parallel(xs) => {
                for x in xs {
                    x.input_cap_loads(caps, c_gate, c_polarity);
                }
            }
        }
    }

    /// Like [`input_loads`](Self::input_loads) but split by literal
    /// polarity: `pos[v]`/`neg[v]` count gate terminals tied to the plain
    /// and complemented rails of variable `v`. A TG always uses one of
    /// each for both of its inputs.
    pub fn input_loads_signed(&self, pos: &mut [usize], neg: &mut [usize]) {
        match self {
            SpNetwork::Transistor { gate, .. } => {
                if gate.positive {
                    pos[gate.var as usize] += 1;
                } else {
                    neg[gate.var as usize] += 1;
                }
            }
            SpNetwork::TransmissionGate { a, b } => {
                for lit in [a, b] {
                    pos[lit.var as usize] += 1;
                    neg[lit.var as usize] += 1;
                }
            }
            SpNetwork::Series(xs) | SpNetwork::Parallel(xs) => {
                for x in xs {
                    x.input_loads_signed(pos, neg);
                }
            }
        }
    }

    /// Variables used with a complemented literal (bit mask) — conventional
    /// families must generate these with internal inverters.
    pub fn complemented_vars(&self) -> u8 {
        match self {
            SpNetwork::Transistor { gate, .. } => {
                if gate.positive {
                    0
                } else {
                    1 << gate.var
                }
            }
            // A TG always needs both rails of both inputs; under the
            // dual-rail convention that is free, and conventional families
            // never instantiate TGs, so a TG contributes no inverter needs.
            SpNetwork::TransmissionGate { .. } => 0,
            SpNetwork::Series(xs) | SpNetwork::Parallel(xs) => {
                xs.iter().fold(0, |m, x| m | x.complemented_vars())
            }
        }
    }

    /// The longest series chain of elements (for drive-resistance
    /// estimation); a TG counts one (its two devices are in parallel).
    pub fn max_series_depth(&self) -> usize {
        match self {
            SpNetwork::Transistor { .. } | SpNetwork::TransmissionGate { .. } => 1,
            SpNetwork::Series(xs) => xs.iter().map(SpNetwork::max_series_depth).sum(),
            SpNetwork::Parallel(xs) => xs
                .iter()
                .map(SpNetwork::max_series_depth)
                .max()
                .unwrap_or(0),
        }
    }

    /// Number of top-level branches touching the output node (for intrinsic
    /// output-capacitance estimation).
    pub fn output_branches(&self) -> usize {
        match self {
            SpNetwork::Transistor { .. } | SpNetwork::TransmissionGate { .. } => 1,
            // A series chain presents its first element to the output node.
            SpNetwork::Series(_) => 1,
            SpNetwork::Parallel(xs) => xs.iter().map(SpNetwork::output_branches).sum(),
        }
    }

    /// Whether the network contains a transmission gate.
    pub fn contains_tg(&self) -> bool {
        match self {
            SpNetwork::Transistor { .. } => false,
            SpNetwork::TransmissionGate { .. } => true,
            SpNetwork::Series(xs) | SpNetwork::Parallel(xs) => {
                xs.iter().any(SpNetwork::contains_tg)
            }
        }
    }
}

impl std::fmt::Display for SpNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpNetwork::Transistor { gate, polarity } => write!(f, "{polarity}({gate})"),
            SpNetwork::TransmissionGate { a, b } => write!(f, "tg({a},{b})"),
            SpNetwork::Series(xs) => {
                write!(f, "S[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            SpNetwork::Parallel(xs) => {
                write!(f, "P[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transistor_conduction_polarity() {
        let n = SpNetwork::nfet(0);
        let p = SpNetwork::pfet(0);
        assert!(n.conducts(&[true]));
        assert!(!n.conducts(&[false]));
        assert!(p.conducts(&[false]));
        assert!(!p.conducts(&[true]));
    }

    #[test]
    fn tg_conducts_on_xor() {
        let tg = SpNetwork::tg(Literal::pos(0), Literal::pos(1));
        assert!(!tg.conducts(&[false, false]));
        assert!(tg.conducts(&[true, false]));
        assert!(tg.conducts(&[false, true]));
        assert!(!tg.conducts(&[true, true]));
        // Complementing one literal gives the XNOR-passing TG.
        let tgn = SpNetwork::tg(Literal::pos(0), Literal::neg(1));
        assert!(tgn.conducts(&[false, false]));
        assert!(!tgn.conducts(&[true, false]));
    }

    #[test]
    fn nand_pulldown_condition() {
        let pd = SpNetwork::series([SpNetwork::nfet(0), SpNetwork::nfet(1)]);
        let t = pd.condition(2);
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!(t, a & b);
    }

    #[test]
    fn dual_complements_condition() {
        // Exhaustive over a representative set of networks.
        let nets = [
            SpNetwork::nfet(0),
            SpNetwork::tg(Literal::pos(0), Literal::pos(1)),
            SpNetwork::series([SpNetwork::nfet(0), SpNetwork::nfet(1)]),
            SpNetwork::parallel([
                SpNetwork::series([SpNetwork::nfet(0), SpNetwork::nfet(1)]),
                SpNetwork::tg(Literal::pos(2), Literal::pos(3)),
            ]),
            SpNetwork::series([
                SpNetwork::parallel([
                    SpNetwork::nfet(0),
                    SpNetwork::tg(Literal::pos(1), Literal::pos(2)),
                ]),
                SpNetwork::nfet(3),
            ]),
        ];
        for net in nets {
            let n = 4;
            let cond = net.condition(n);
            let dual_cond = net.dual().condition(n);
            assert_eq!(dual_cond, !cond, "dual must complement: {net}");
        }
    }

    #[test]
    fn counts_and_depths() {
        let net = SpNetwork::parallel([
            SpNetwork::series([SpNetwork::nfet(0), SpNetwork::nfet(1)]),
            SpNetwork::tg(Literal::pos(2), Literal::pos(3)),
        ]);
        assert_eq!(net.transistor_count(), 4);
        assert_eq!(net.max_series_depth(), 2);
        assert_eq!(net.output_branches(), 2);
        assert!(net.contains_tg());

        let mut loads = [0usize; 4];
        net.input_loads(&mut loads);
        assert_eq!(loads, [1, 1, 2, 2]);
    }

    #[test]
    fn complemented_vars_tracks_negative_literals() {
        let net = SpNetwork::parallel([
            SpNetwork::Transistor {
                gate: Literal::neg(0),
                polarity: Polarity::N,
            },
            SpNetwork::nfet(1),
        ]);
        assert_eq!(net.complemented_vars(), 0b01);
    }

    #[test]
    fn display_is_readable() {
        let net = SpNetwork::series([
            SpNetwork::nfet(0),
            SpNetwork::tg(Literal::pos(1), Literal::neg(2)),
        ]);
        assert_eq!(net.to_string(), "S[n(b) tg(b,c')]".replace("n(b)", "n(a)"));
    }
}
