//! Dynamic ambipolar logic — the §2.2 background designs the paper builds
//! on: the **generalized NOR (GNOR)** dynamic gate of Ben Jamaa et al.
//! (DAC'08), the core block of in-field programmable PLAs.
//!
//! A dynamic GNOR precharges its output high, then evaluates a pull-down
//! network of ambipolar devices: term `i` conducts iff `a_i ⊕ c_i = 1`,
//! where `c_i` is an in-field polarity-programming signal. The output
//! after evaluation is `!( OR_i (a_i ⊕ c_i) )` — a NOR whose every input
//! can be polarity-flipped without rewiring.

use crate::network::{Literal, SpNetwork};
use logic::TruthTable;

/// Clock phase of a dynamic gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Output precharged to V_DD; inputs ignored.
    Precharge,
    /// Pull-down network evaluates; output conditionally discharges.
    Evaluate,
}

/// A dynamic generalized-NOR gate with `width` programmable terms.
///
/// # Example
///
/// ```
/// use gate_lib::dynamic::{DynamicGnor, Phase};
///
/// let gnor = DynamicGnor::new(2);
/// // Programmed as plain NOR (polarity bits low):
/// assert!(gnor.evaluate(&[false, false], &[false, false]));
/// assert!(!gnor.evaluate(&[true, false], &[false, false]));
/// // Re-programmed in-field: first input polarity flipped.
/// assert!(!gnor.evaluate(&[false, false], &[true, false]));
/// ```
#[derive(Clone, Debug)]
pub struct DynamicGnor {
    width: usize,
}

impl DynamicGnor {
    /// Creates a GNOR with the given number of input terms.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds six (truth-table limit — the
    /// physical design has no such bound).
    pub fn new(width: usize) -> Self {
        assert!((1..=6).contains(&width), "width must be in 1..=6");
        Self { width }
    }

    /// Number of input terms.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Transistor count: one ambipolar device per term, plus the
    /// precharge PMOS and the foot NMOS clock device.
    pub fn transistor_count(&self) -> usize {
        self.width + 2
    }

    /// The pull-down network during evaluation: parallel ambipolar
    /// devices; an input with polarity bit `c` conducts on `a ⊕ c`.
    /// Variables `0..width` are data inputs, `width..2·width` polarity
    /// programming inputs.
    pub fn pull_down_network(&self) -> SpNetwork {
        SpNetwork::Parallel(
            (0..self.width)
                .map(|i| SpNetwork::tg(Literal::pos((self.width + i) as u8), Literal::pos(i as u8)))
                .collect(),
        )
    }

    /// The evaluated output for data `inputs` and programming bits
    /// `polarity`: `!( OR_i (inputs[i] ⊕ polarity[i]) )`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from the gate width.
    pub fn evaluate(&self, inputs: &[bool], polarity: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.width, "data arity mismatch");
        assert_eq!(polarity.len(), self.width, "programming arity mismatch");
        !inputs.iter().zip(polarity.iter()).any(|(&a, &c)| a ^ c)
    }

    /// Output voltage semantics per phase (behavioural clock model).
    pub fn output(&self, phase: Phase, inputs: &[bool], polarity: &[bool]) -> bool {
        match phase {
            Phase::Precharge => true,
            Phase::Evaluate => self.evaluate(inputs, polarity),
        }
    }

    /// The programmed logic function over the data inputs for a fixed
    /// polarity configuration.
    pub fn programmed_function(&self, polarity: &[bool]) -> TruthTable {
        assert_eq!(polarity.len(), self.width, "programming arity mismatch");
        TruthTable::from_fn(self.width, |inputs| self.evaluate(inputs, polarity))
    }

    /// Number of distinct logic functions reachable by reprogramming the
    /// polarity bits — the expressive-power angle of DAC'08.
    pub fn programmable_function_count(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for code in 0..(1usize << self.width) {
            let polarity: Vec<bool> = (0..self.width).map(|i| (code >> i) & 1 == 1).collect();
            set.insert(self.programmed_function(&polarity).bits());
        }
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_nor_configuration() {
        let g = DynamicGnor::new(3);
        let pol = [false, false, false];
        for m in 0..8usize {
            let inputs: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(g.evaluate(&inputs, &pol), m == 0, "minterm {m}");
        }
    }

    #[test]
    fn polarity_bits_flip_inputs() {
        let g = DynamicGnor::new(2);
        // With c = [1, 0]: output = !( !a | b ) = a & !b.
        let f = g.programmed_function(&[true, false]);
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!(f, a & !b);
    }

    #[test]
    fn every_polarity_code_gives_distinct_function() {
        let g = DynamicGnor::new(3);
        assert_eq!(g.programmable_function_count(), 8);
        assert_eq!(g.transistor_count(), 5);
    }

    #[test]
    fn precharge_forces_high() {
        let g = DynamicGnor::new(2);
        assert!(g.output(Phase::Precharge, &[true, true], &[false, false]));
        assert!(!g.output(Phase::Evaluate, &[true, true], &[false, false]));
    }

    #[test]
    fn pull_down_network_matches_evaluation() {
        // The structural network over (data ++ polarity) variables must
        // conduct exactly when the output evaluates low.
        let g = DynamicGnor::new(2);
        let net = g.pull_down_network();
        for m in 0..16usize {
            let all: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let (inputs, polarity) = all.split_at(2);
            assert_eq!(
                net.conducts(&all),
                !g.evaluate(inputs, polarity),
                "assignment {m:04b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=6")]
    fn rejects_zero_width() {
        let _ = DynamicGnor::new(0);
    }
}
