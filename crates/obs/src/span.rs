//! Span guards, the bounded event ring, and the Chrome-trace exporter.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Completed events the ring retains; older events are dropped first.
/// Sized for a full `loadgen` smoke run (hundreds of requests, tens of
/// spans each) while bounding memory to a few megabytes.
const RING_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is recording. The one branch every disabled
/// instrumentation site pays.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turns span recording on or off (process-wide). Enabling also
/// registers the span-context propagation hooks with the rayon shim,
/// so spans opened on parallel workers link to the launching span.
pub fn set_enabled(on: bool) {
    if on {
        register_propagation();
    }
    ENABLED.store(on, Relaxed);
}

/// The process trace epoch: every timestamp is microseconds since the
/// first call into the tracing layer.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Span-id allocator (0 is reserved for "no span").
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Trace thread-id allocator (small dense ids, stable per thread).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The innermost open span on this thread — the parent of any span
    /// or instant event recorded here. Parallel workers inherit the
    /// launching thread's value through the rayon task-context hooks.
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
    /// Child-duration accumulator per open span on this thread's stack
    /// (self time = own duration − accumulated child durations).
    /// Cross-thread children (spans on rayon workers) deliberately do
    /// not subtract: the launching thread is busy working, not waiting.
    static CHILD_ACC: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's trace id.
    static TRACE_TID: Cell<u64> = const { Cell::new(0) };
}

fn trace_tid() -> u64 {
    TRACE_TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Relaxed));
        }
        t.get()
    })
}

/// Registers span-context capture/install with the rayon shim
/// (idempotent). Coexists with `aig::profile`'s scope-token hooks —
/// the shim propagates every registered hook pair.
fn register_propagation() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        rayon::register_task_context_hooks(rayon::TaskContextHooks {
            capture: || CURRENT_SPAN.with(|c| c.get()),
            install: |token| CURRENT_SPAN.with(|c| c.set(token)),
        });
    });
}

/// One recorded argument value.
#[derive(Clone, Debug)]
enum ArgVal {
    U64(u64),
    Str(String),
}

/// One completed ring entry: a closed span or an instant event.
#[derive(Clone, Debug)]
struct Event {
    name: String,
    ts_us: u64,
    /// `Some(duration)` for a completed span, `None` for an instant.
    dur_us: Option<u64>,
    tid: u64,
    id: u64,
    parent: u64,
    args: Vec<(&'static str, ArgVal)>,
}

fn ring() -> &'static Mutex<VecDeque<Event>> {
    static RING: OnceLock<Mutex<VecDeque<Event>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Aggregated per-name statistics: (count, total µs, self µs).
type StatsMap = HashMap<String, (u64, u64, u64)>;

fn stats() -> &'static Mutex<StatsMap> {
    static STATS: OnceLock<Mutex<StatsMap>> = OnceLock::new();
    STATS.get_or_init(|| Mutex::new(HashMap::new()))
}

fn push_event(event: Event) {
    let mut ring = ring().lock().expect("trace ring");
    if ring.len() >= RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(event);
}

/// An open span. Closing (dropping) the guard records one complete
/// event with the span's duration. Spans are thread-bound: the guard
/// must drop on the thread that opened it (guaranteed for the
/// stack-scoped guards the [`span!`](crate::span!) macro produces).
pub struct Span {
    live: Option<LiveSpan>,
    /// Thread-bound by construction (thread-local parent bookkeeping).
    _not_send: PhantomData<*const ()>,
}

struct LiveSpan {
    name: String,
    id: u64,
    parent: u64,
    start_us: u64,
    args: Vec<(&'static str, ArgVal)>,
}

impl Span {
    /// The inert guard a disabled site returns — no allocation, no
    /// clock read, nothing on drop.
    #[inline]
    pub fn disabled() -> Span {
        Span {
            live: None,
            _not_send: PhantomData,
        }
    }

    /// Attaches a numeric argument (rendered into the trace event's
    /// `args` object). No-op on a disabled guard.
    pub fn record(&mut self, key: &'static str, value: u64) -> &mut Self {
        if let Some(live) = &mut self.live {
            live.args.push((key, ArgVal::U64(value)));
        }
        self
    }

    /// Attaches a string argument. No-op on a disabled guard.
    pub fn record_str(&mut self, key: &'static str, value: &str) -> &mut Self {
        if let Some(live) = &mut self.live {
            live.args.push((key, ArgVal::Str(value.to_owned())));
        }
        self
    }

    /// The span's id (0 on a disabled guard) — what child events will
    /// carry as their parent link.
    pub fn id(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.id)
    }
}

/// Opens a live span (the enabled arm of [`span!`](crate::span!)).
/// Prefer the macro: it skips name formatting when tracing is off.
pub fn span_begin(name: String) -> Span {
    register_propagation();
    let id = NEXT_SPAN.fetch_add(1, Relaxed);
    let parent = CURRENT_SPAN.with(|c| c.replace(id));
    CHILD_ACC.with(|acc| acc.borrow_mut().push(0));
    Span {
        live: Some(LiveSpan {
            name,
            id,
            parent,
            start_us: now_us(),
            args: Vec::new(),
        }),
        _not_send: PhantomData,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur_us = now_us().saturating_sub(live.start_us);
        CURRENT_SPAN.with(|c| c.set(live.parent));
        let child_us = CHILD_ACC.with(|acc| {
            let mut acc = acc.borrow_mut();
            let child = acc.pop().unwrap_or(0);
            if let Some(parent_acc) = acc.last_mut() {
                *parent_acc += dur_us;
            }
            child
        });
        let self_us = dur_us.saturating_sub(child_us);
        {
            let mut stats = stats().lock().expect("span stats");
            let entry = stats.entry(live.name.clone()).or_insert((0, 0, 0));
            entry.0 += 1;
            entry.1 += dur_us;
            entry.2 += self_us;
        }
        push_event(Event {
            name: live.name,
            ts_us: live.start_us,
            dur_us: Some(dur_us),
            tid: trace_tid(),
            id: live.id,
            parent: live.parent,
            args: live.args,
        });
    }
}

/// Records an instant event (queue admission, deadline lapse, cache
/// leader/follower election, …) parented to the innermost open span.
/// One atomic load when tracing is off.
pub fn event(name: &str) {
    if !enabled() {
        return;
    }
    push_event(Event {
        name: name.to_owned(),
        ts_us: now_us(),
        dur_us: None,
        tid: trace_tid(),
        id: 0,
        parent: CURRENT_SPAN.with(|c| c.get()),
        args: Vec::new(),
    });
}

/// Aggregated statistics of one span name across the process lifetime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// The span name.
    pub name: String,
    /// How many spans closed under this name.
    pub count: u64,
    /// Summed wall-clock duration, microseconds.
    pub total_us: u64,
    /// Summed self time (duration minus same-thread child durations),
    /// microseconds.
    pub self_us: u64,
}

/// Every span name's aggregated statistics, ordered by self time
/// descending (ties broken by name for a stable order).
pub fn span_stats() -> Vec<SpanStat> {
    let stats = stats().lock().expect("span stats");
    let mut out: Vec<SpanStat> = stats
        .iter()
        .map(|(name, &(count, total_us, self_us))| SpanStat {
            name: name.clone(),
            count,
            total_us,
            self_us,
        })
        .collect();
    out.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.name.cmp(&b.name)));
    out
}

/// Clears the event ring and the aggregated statistics (the enabled
/// flag is untouched). Open spans still close into the fresh ring.
pub fn reset() {
    ring().lock().expect("trace ring").clear();
    stats().lock().expect("span stats").clear();
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the ring as Chrome trace-event JSON — loadable in Perfetto
/// or `chrome://tracing`. Spans are complete (`"ph": "X"`) events with
/// microsecond `ts`/`dur`; instants are `"ph": "i"`. Every event's
/// `args` carries the span `id` and `parent` link, so cross-thread
/// nesting (parallel fan-outs) is machine-checkable even where the
/// viewer would only infer nesting from per-thread time containment.
pub fn export_trace() -> String {
    let ring = ring().lock().expect("trace ring");
    let mut out = String::with_capacity(128 + ring.len() * 160);
    out.push_str("{\"traceEvents\":[\n");
    for (i, e) in ring.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"{}\",\"ts\":{},",
            escape_json(&e.name),
            if e.dur_us.is_some() { "X" } else { "i" },
            e.ts_us,
        ));
        if let Some(dur) = e.dur_us {
            out.push_str(&format!("\"dur\":{dur},"));
        } else {
            out.push_str("\"s\":\"t\",");
        }
        out.push_str(&format!(
            "\"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}",
            e.tid, e.id, e.parent
        ));
        for (key, value) in &e.args {
            match value {
                ArgVal::U64(v) => out.push_str(&format!(",\"{key}\":{v}")),
                ArgVal::Str(v) => out.push_str(&format!(",\"{key}\":\"{}\"", escape_json(v))),
            }
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Writes [`export_trace`] to a file.
///
/// # Errors
///
/// I/O errors from creating or writing the file.
pub fn write_trace(path: &str) -> std::io::Result<()> {
    std::fs::write(path, export_trace())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; serialize the tests that
    /// enable it.
    static TRACE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_link_parents() {
        let _guard = TRACE_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        let (outer_id, inner_id) = {
            let outer = crate::span!("outer");
            let inner = crate::span!("inner/{}", 7);
            (outer.id(), inner.id())
        };
        set_enabled(false);
        let trace = export_trace();
        assert!(trace.contains("\"outer\""), "{trace}");
        assert!(trace.contains("\"inner/7\""), "{trace}");
        assert!(
            trace.contains(&format!("\"id\":{inner_id},\"parent\":{outer_id}")),
            "inner must link to outer: {trace}"
        );
        let stats = span_stats();
        let outer = stats.iter().find(|s| s.name == "outer").expect("outer");
        assert_eq!(outer.count, 1);
        assert!(
            outer.self_us <= outer.total_us,
            "self time cannot exceed total"
        );
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TRACE_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        {
            let mut s = crate::span!("ghost");
            s.record("x", 1);
            assert_eq!(s.id(), 0);
        }
        event("ghost-event");
        assert!(!export_trace().contains("ghost"));
        assert!(span_stats().is_empty());
    }

    #[test]
    fn spans_propagate_to_parallel_workers() {
        use rayon::prelude::*;
        let _guard = TRACE_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        let root_id = {
            let root = crate::span!("par-root");
            (0..32usize).into_par_iter().for_each(|i| {
                let _child = crate::span!("par-child/{}", i % 2);
            });
            root.id()
        };
        set_enabled(false);
        let trace = export_trace();
        // Every worker-side span must link to the launching span.
        let needle = format!("\"parent\":{root_id}");
        let linked = trace.matches(&needle).count();
        assert!(
            linked >= 32,
            "all 32 worker spans must parent to the root: {linked} in {trace}"
        );
    }

    #[test]
    fn events_and_args_render() {
        let _guard = TRACE_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        {
            let mut s = crate::span!("request");
            s.record("request_id", 42).record_str("name", "C1355");
            event("cache/leader");
        }
        set_enabled(false);
        let trace = export_trace();
        assert!(trace.contains("\"request_id\":42"), "{trace}");
        assert!(trace.contains("\"name\":\"C1355\""), "{trace}");
        assert!(trace.contains("\"cache/leader\""), "{trace}");
        assert!(trace.contains("\"ph\":\"i\""), "{trace}");
    }

    #[test]
    fn ring_is_bounded() {
        let _guard = TRACE_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        for i in 0..(RING_CAPACITY + 100) {
            event(&format!("e{i}"));
        }
        set_enabled(false);
        let len = ring().lock().unwrap().len();
        assert!(len <= RING_CAPACITY, "ring overflowed: {len}");
        reset();
    }
}
