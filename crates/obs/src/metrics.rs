//! The process-wide metrics registry: named monotone counters and
//! fixed-bucket log-scale histograms, rendered in the Prometheus text
//! exposition format.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};

/// Finite histogram buckets. Bucket `i` has upper bound `2^i`
/// (1 µs … ~134 s for microsecond observations); one extra overflow
/// bucket catches everything larger, so no observation is dropped.
pub const BUCKET_COUNT: usize = 28;

/// A monotone counter. Obtain a handle once via [`counter`]; bumping
/// is one relaxed atomic add.
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A fixed-bucket log-scale histogram (powers of two). Obtain a handle
/// once via [`histogram`]; observing is two relaxed atomic adds.
pub struct Histogram {
    /// Per-bucket counts; index [`BUCKET_COUNT`] is the overflow
    /// (`+Inf`) bucket.
    buckets: [AtomicU64; BUCKET_COUNT + 1],
    sum: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        // Upper bound 2^i holds values with ilog2 < i … i.e. the first
        // bucket whose bound is >= value. 0 and 1 land in bucket 0.
        let idx = if value <= 1 {
            0
        } else {
            let lg = 63 - u64::leading_zeros(value - 1) as usize;
            (lg + 1).min(BUCKET_COUNT)
        };
        self.buckets[idx].fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }
}

enum Metric {
    Counter(&'static Counter),
    Histogram(&'static Histogram),
}

/// Name → interned metric. `BTreeMap` keeps [`render_prometheus`]
/// output deterministically ordered.
fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Returns the counter registered under `name`, creating (and leaking
/// — the registry lives for the process) it on first use. Call once
/// per site and reuse the handle in hot loops.
///
/// # Panics
///
/// If `name` is already registered as a histogram.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry().lock().expect("metrics registry");
    match reg.entry(name.to_owned()).or_insert_with(|| {
        Metric::Counter(Box::leak(Box::new(Counter {
            value: AtomicU64::new(0),
        })))
    }) {
        Metric::Counter(c) => c,
        Metric::Histogram(_) => panic!("metric {name:?} is a histogram, not a counter"),
    }
}

/// Returns the histogram registered under `name`, creating it on first
/// use. Same interning contract as [`counter`].
///
/// # Panics
///
/// If `name` is already registered as a counter.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut reg = registry().lock().expect("metrics registry");
    match reg.entry(name.to_owned()).or_insert_with(|| {
        Metric::Histogram(Box::leak(Box::new(Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKET_COUNT + 1],
            sum: AtomicU64::new(0),
        })))
    }) {
        Metric::Histogram(h) => h,
        Metric::Counter(_) => panic!("metric {name:?} is a counter, not a histogram"),
    }
}

/// Renders every registered metric in the Prometheus text exposition
/// format (v0.0.4): `# TYPE` lines, cumulative `_bucket{le="..."}`
/// series, `_sum` and `_count`. Metric order is name-sorted and thus
/// stable across runs.
pub fn render_prometheus() -> String {
    let reg = registry().lock().expect("metrics registry");
    let mut out = String::new();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for (i, bucket) in h.buckets.iter().enumerate() {
                    cumulative += bucket.load(Relaxed);
                    if i < BUCKET_COUNT {
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                            1u64 << i
                        ));
                    } else {
                        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                    }
                }
                out.push_str(&format!("{name}_sum {}\n", h.sum()));
                out.push_str(&format!("{name}_count {}\n", h.count()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_and_accumulate() {
        let c = counter("obs_test_counter");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        // Same name returns the same interned handle.
        assert!(std::ptr::eq(c, counter("obs_test_counter")));
    }

    #[test]
    fn histogram_buckets_values_by_power_of_two() {
        let h = histogram("obs_test_hist_buckets");
        // Bucket bound 2^i: 1 → bucket 0, 2 → bucket 1, 3..=4 → 2, …
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(4);
        h.observe(5);
        h.observe(u64::MAX); // overflow bucket
        assert_eq!(h.buckets[0].load(Relaxed), 2); // 0, 1
        assert_eq!(h.buckets[1].load(Relaxed), 1); // 2
        assert_eq!(h.buckets[2].load(Relaxed), 2); // 3, 4
        assert_eq!(h.buckets[3].load(Relaxed), 1); // 5
        assert_eq!(h.buckets[BUCKET_COUNT].load(Relaxed), 1);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_sorted() {
        counter("obs_test_render_a").add(3);
        let h = histogram("obs_test_render_b");
        h.observe(1);
        h.observe(100);
        let text = render_prometheus();
        assert!(text.contains("# TYPE obs_test_render_a counter\nobs_test_render_a 3\n"));
        assert!(text.contains("# TYPE obs_test_render_b histogram\n"));
        assert!(text.contains("obs_test_render_b_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("obs_test_render_b_sum 101\n"));
        assert!(text.contains("obs_test_render_b_count 2\n"));
        // Cumulative: the le="128" bucket already includes both.
        assert!(text.contains("obs_test_render_b_bucket{le=\"128\"} 2\n"));
        // Sorted: _a renders before _b.
        let a = text.find("obs_test_render_a ").unwrap();
        let b = text.find("obs_test_render_b_sum").unwrap();
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "is a counter")]
    fn type_confusion_panics() {
        counter("obs_test_confused");
        histogram("obs_test_confused");
    }
}
