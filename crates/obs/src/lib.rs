//! The workspace flight recorder: *where time went*, per request, as
//! structured data — the complement of `aig::profile`'s *how much work
//! happened* counters.
//!
//! Two pillars:
//!
//! * **Tracing** ([`span!`], [`Span`], [`export_trace`]): lightweight
//!   span guards with monotonic timestamps, thread IDs, and parent
//!   links, recorded into a bounded in-memory ring buffer and exported
//!   as Chrome trace-event JSON (loadable in Perfetto or
//!   `chrome://tracing`). Span context rides the vendored rayon shim's
//!   task-context hooks, so a span opened on a worker thread nests
//!   under the span that launched the parallel operation — the same
//!   mechanism `aig::profile::JobScope` uses for counter attribution.
//!   Tracing is off by default and zero-cost when disabled: every
//!   instrumentation site is gated on one relaxed atomic load, before
//!   any allocation or formatting.
//!
//! * **Metrics** ([`counter`], [`histogram`], [`render_prometheus`]):
//!   a process-wide registry of named monotone counters and
//!   fixed-bucket log-scale (powers of two) histograms, rendered in
//!   the Prometheus text exposition format. Metrics are always on —
//!   they are a handful of relaxed atomic bumps at request/phase
//!   granularity, never per-node.
//!
//! Spans answer "which pass/phase was slow on *this* request";
//! `aig::profile` counters answer "how much algorithmic work ran";
//! metrics answer "what does the process look like over its lifetime".

mod metrics;
mod span;

pub use metrics::{counter, histogram, render_prometheus, Counter, Histogram, BUCKET_COUNT};
pub use span::{
    enabled, event, export_trace, reset, set_enabled, span_begin, span_stats, write_trace, Span,
    SpanStat,
};

/// Opens a [`Span`] guard named by a format string. The span measures
/// from the macro invocation to the guard's drop.
///
/// When tracing is disabled ([`set_enabled`]) the format arguments are
/// **not evaluated** — the whole site costs one relaxed atomic load.
///
/// ```
/// obs::set_enabled(true);
/// {
///     let _outer = obs::span!("flow/{}", "rw");
///     let _inner = obs::span!("map/select");
/// } // both close here
/// let trace = obs::export_trace();
/// assert!(trace.contains("\"flow/rw\""));
/// obs::set_enabled(false);
/// ```
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        if $crate::enabled() {
            $crate::span_begin(::std::format!($($arg)*))
        } else {
            $crate::Span::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    // The macro is exercised from an integration-style path (`$crate`
    // expands to `obs`): tracing state is process-global, so the span
    // tests live in span.rs under one serializing lock.
}
