//! The machine-readable QoR/runtime artifact behind `--json`: one JSON
//! document per run capturing the configuration, per-circuit synthesis
//! quality (AND count, depth), per-family mapping quality (gates, delay,
//! area, power, per-cycle energy, EDP) and wall-clock runtime — the
//! format the perf trajectory is tracked in (`BENCH_table1.json` at the
//! repo root is the committed baseline).
//!
//! Emission is hand-rolled: the workspace is offline-vendored and the
//! structure is flat enough that a serializer dependency would be pure
//! weight. Every number is either an integer or `{:e}`-formatted (JSON
//! accepts exponent notation); strings are plain ASCII labels.

use ambipolar::experiments::{Table1, Table1Config};
use gate_lib::GateFamily;
use std::fmt::Write as _;
use std::time::Duration;

/// Renders the Table-1 QoR artifact. `extra` entries are appended as
/// additional top-level fields; each value must already be valid JSON
/// (use [`json_string`] / [`json_seconds`] to build them).
pub fn table1_json(
    artifact: &str,
    table: &Table1,
    config: &Table1Config,
    wall: Duration,
    extra: &[(&str, String)],
) -> String {
    let p = &config.pipeline;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"artifact\": {},", json_string(artifact));
    let _ = writeln!(out, "  \"patterns\": {},", p.patterns);
    let _ = writeln!(out, "  \"seed\": {},", p.seed);
    let _ = writeln!(out, "  \"flow\": {},", json_string(&p.flow));
    let _ = writeln!(
        out,
        "  \"objective\": {},",
        json_string(&p.map.objective.to_string())
    );
    let _ = writeln!(out, "  \"cut_k\": {},", p.map.cut_k);
    let _ = writeln!(out, "  \"verify\": {},", json_string(&p.verify.to_string()));
    let _ = writeln!(out, "  \"choices\": {},", p.choices);
    let _ = writeln!(out, "  \"frequency_hz\": {},", json_f64(p.frequency_hz));
    let _ = writeln!(out, "  \"wall_seconds\": {},", json_f64(wall.as_secs_f64()));
    for (key, value) in extra {
        let _ = writeln!(out, "  \"{key}\": {value},");
    }
    let families: Vec<String> = GateFamily::ALL
        .iter()
        .map(|f| json_string(f.label()))
        .collect();
    let _ = writeln!(out, "  \"families\": [{}],", families.join(", "));
    out.push_str("  \"circuits\": [\n");
    for (i, row) in table.rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": {}, \"function\": {}, \"and_count\": {}, \"depth\": {}, \"results\": [",
            json_string(&row.name),
            json_string(&row.function),
            row.ands,
            row.depth
        );
        for (k, r) in row.results.iter().enumerate() {
            let energy = r.total_power().value() / p.frequency_hz;
            // Choice-aware runs record the no-choice gate count and STA
            // delay so the artifact carries the QoR delta per circuit ×
            // family and both portfolio guarantees stay checkable.
            let mut delta = r
                .gates_no_choice
                .map(|g| format!(", \"gates_no_choice\": {g}"))
                .unwrap_or_default();
            if let Some(d) = r.delay_no_choice {
                let _ = write!(delta, ", \"delay_s_no_choice\": {}", json_f64(d.value()));
            }
            let _ = write!(
                out,
                "{}{{\"gates\": {}{delta}, \"delay_s\": {}, \"area_m2\": {}, \"pd_w\": {}, \
                 \"ps_w\": {}, \"pt_w\": {}, \"energy_j\": {}, \"edp_js\": {}, \
                 \"transistors\": {}}}",
                if k == 0 { "" } else { ", " },
                r.gates,
                json_f64(r.delay.value()),
                json_f64(r.area),
                json_f64(r.power.dynamic.value()),
                json_f64(r.power.static_sub.value()),
                json_f64(r.total_power().value()),
                json_f64(energy),
                json_f64(r.edp().value()),
                r.transistors,
            );
        }
        let _ = writeln!(
            out,
            "]}}{}",
            if i + 1 == table.rows.len() { "" } else { "," }
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"averages\": [");
    for (k, a) in table.averages().iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"gates\": {}, \"delay_s\": {}, \"pd_w\": {}, \"ps_w\": {}, \
             \"pt_w\": {}, \"edp_js\": {}}}",
            if k == 0 { "" } else { ", " },
            json_f64(a.gates),
            json_f64(a.delay),
            json_f64(a.pd),
            json_f64(a.ps),
            json_f64(a.pt),
            json_f64(a.edp),
        );
    }
    out.push_str("]\n}\n");
    out
}

// The scalar helpers live in the core crate so the server (`serve`)
// and the bench binaries render numbers identically; re-exported here
// to keep every existing `bench::qor::json_*` call site compiling.
pub use ambipolar::json::{json_f64, json_seconds, json_string, write_or_exit};
