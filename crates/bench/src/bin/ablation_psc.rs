//! Ablation A1: the **P_SC = 0.15·P_D conjecture** (Nose & Sakurai), which
//! the paper adopts for CNTFETs without measurement.
//!
//! Part 1 *measures* the short-circuit fraction by transient analysis of a
//! switching inverter in both technologies (crossbar charge during the
//! input edges vs the C·V² switching charge). Part 2 re-derives Table-1
//! totals under alternative fractions.

use ambipolar::engine;
use bench::BenchArgs;
use device::{Polarity, TechParams};
use gate_lib::GateFamily;
use power_est::simulate_activity;
use spice_lite::{ramp, transient, Circuit, GROUND};
use techmap::critical_path;

/// Measures E_SC/E_D for an inverter with load `c_load` and input rise
/// time `t_edge`.
fn measured_sc_fraction(tech: &TechParams, c_load: f64, t_edge: f64) -> f64 {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("VDD", vdd, GROUND, tech.vdd);
    ckt.add_vsource("VIN", vin, GROUND, 0.0);
    ckt.add_transistor("MP", tech.model(Polarity::P), out, vin, vdd);
    ckt.add_transistor("MN", tech.model(Polarity::N), out, vin, GROUND);
    ckt.add_capacitor("CL", out, GROUND, c_load);

    let settle = 10.0 * t_edge;
    let dt = t_edge / 80.0;
    // Input rise (output falls): VDD delivers only crossbar + leakage.
    let rise = ramp(0.0, tech.vdd, settle, t_edge);
    let r1 = transient(&ckt, settle + 6.0 * t_edge, dt, &[("VIN", &rise)])
        .expect("rise transient converges");
    let leak_per_s = r1.points[0].source_current("VDD").unwrap_or(0.0);
    let window = (settle, settle + 3.0 * t_edge);
    let q_sc_rise = r1.integrate_source_charge_between("VDD", window.0, window.1)
        - leak_per_s * (window.1 - window.0);

    // Input fall (output rises): VDD delivers C·V plus crossbar.
    let fall = ramp(tech.vdd, 0.0, settle, t_edge);
    let mut ckt2 = ckt.clone();
    for e in ckt2.elements_mut() {
        if let spice_lite::Element::VSource { name, volts, .. } = e {
            if name == "VIN" {
                *volts = tech.vdd;
            }
        }
    }
    let r2 = transient(&ckt2, settle + 6.0 * t_edge, dt, &[("VIN", &fall)])
        .expect("fall transient converges");
    let q_total_fall = r2.integrate_source_charge_between("VDD", window.0, window.1);
    let q_sc_fall = q_total_fall - c_load * tech.vdd;

    let e_sc = (q_sc_rise + q_sc_fall.max(0.0)) * tech.vdd;
    let e_dyn = c_load * tech.vdd * tech.vdd;
    e_sc / e_dyn
}

fn main() {
    let args = BenchArgs::parse();
    args.reject_json("ablation_psc");
    println!("Measured short-circuit fraction E_SC/E_D (switching inverter, FO3-class load),");
    println!("as a function of the input slew relative to the gate's own edge:");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "tech", "slew 2x", "slew 6x", "slew 20x", "slew 60x"
    );
    for tech in [TechParams::cmos_32nm(), TechParams::cntfet_32nm()] {
        let c_load = 3.0 * 2.0 * tech.c_gate + 2.0 * tech.c_drain;
        let own_edge = tech.r_on * c_load;
        let mut row = format!("{:<8}", tech.kind.to_string());
        for mult in [2.0, 6.0, 20.0, 60.0] {
            let frac = measured_sc_fraction(&tech, c_load, mult * own_edge);
            row += &format!(" {:>11.3}", frac);
        }
        println!("{row}");
    }
    println!(
        "\nFinding: at matched edges the measured fraction sits well below the paper's adopted\n\
         0.15 conjecture (derived for older, lower-V_th/V_DD CMOS); it grows with input slew.\n\
         The conjecture is therefore conservative — adopting it inflates P_T slightly for all\n\
         three families alike and cannot flip any Table-1 comparison (quantified below).\n"
    );
    let bench = bench_circuits::benchmark_by_name("C3540").expect("C3540 exists");
    let pipeline = args.pipeline_config();
    let flow = args.flow_with_choices();
    let (synthesized, choices, _) = flow.run_with_choices(&bench.aig);
    println!("P_SC sensitivity on {} ({}):", bench.name, bench.function);
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12}",
        "family", "PSC=0", "PSC=0.15PD", "PSC=0.30PD", "PT spread"
    );
    for family in GateFamily::ALL {
        let lib = engine::library(family);
        let (mapped, _) =
            ambipolar::pipeline::map_portfolio(&synthesized, choices.as_ref(), lib, &pipeline)
                .expect("built-in benchmarks map");
        let act = simulate_activity(
            &mapped,
            lib,
            args.patterns_or(1 << 15),
            args.seed.unwrap_or(77),
        );
        let p = power_est::estimate_power(&mapped, lib, &act, 1.0e9);
        let delay = critical_path(&mapped, lib).critical;
        let base = p.dynamic.value() + p.static_sub.value() + p.gate_leak.value();
        let pt = |frac: f64| base + frac * p.dynamic.value();
        let spread = (pt(0.30) - pt(0.0)) / pt(0.15);
        println!(
            "{:<22} {:>8.2}µW {:>8.2}µW {:>8.2}µW {:>11.1}%   (delay {})",
            family.label(),
            pt(0.0) * 1e6,
            pt(0.15) * 1e6,
            pt(0.30) * 1e6,
            spread * 100.0,
            delay,
        );
    }
    println!();
    println!(
        "Reading: the conjecture moves P_T by the printed spread; because P_D dominates at 1 GHz,\n\
         a mis-estimated P_SC shifts absolute totals but not the CNTFET-vs-CMOS ranking."
    );
}
