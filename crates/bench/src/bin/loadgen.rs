//! `loadgen` — the `synthd` load harness: replays the Table-1 catalog
//! (optionally plus a scale-harness random circuit) against a running
//! server at configurable concurrency and reports p50/p95/p99 latency,
//! throughput (jobs/sec and input-AND nodes/sec), warm-cache telemetry,
//! and a serial in-process one-shot baseline — the `BENCH_serve.json`
//! artifact.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--concurrency C] [--repeat R]
//!         [--scale N] [--workers N] [--queue N] [--timeout-ms MS]
//!         [bench flags: --patterns --seed --flow --objective --cut-k
//!          --verify --choices --json PATH --trace-out PATH] [circuit names...]
//! ```
//!
//! Without `--addr` an in-process [`serve::Server`] is started (the
//! self-contained mode the smoke artifact uses); with it, an external
//! `synthd` is driven over TCP — that is what CI's `serve-smoke` job
//! does. Each (circuit × family) pair is submitted `--repeat` times in
//! repeat-major order, so the first wave populates the content-hash
//! cache and later waves must hit it. Responses to identical specs are
//! checked for byte-identity on the fly: any divergence counts as an
//! error in the artifact (and trips `tools/serve_guard.py`).
//!
//! The artifact embeds the server's Prometheus metrics frame (scraped
//! after the load phase, before the baseline) under `"metrics"`, and
//! `--trace-out PATH` writes a Chrome-trace/Perfetto JSON of the span
//! ring at exit — in in-process mode that trace contains every served
//! request's span tree, which is what `tools/obs_guard.py` validates.

use bench::qor::{json_f64, json_seconds, json_string, write_or_exit};
use bench::BenchArgs;
use gate_lib::GateFamily;
use serve::{Client, JobSpec, Response, Server, ServerConfig};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct LoadFlags {
    addr: Option<String>,
    concurrency: usize,
    repeat: usize,
    scale: Option<usize>,
    workers: usize,
    queue: usize,
    timeout_ms: u64,
}

impl Default for LoadFlags {
    fn default() -> Self {
        LoadFlags {
            addr: None,
            concurrency: 8,
            repeat: 3,
            scale: None,
            workers: 8,
            queue: 64,
            timeout_ms: 0,
        }
    }
}

/// Splits loadgen's own flags out of the command line before handing
/// the remainder to [`BenchArgs::parse_from`] (which rejects unknown
/// flags by design).
fn split_args() -> (LoadFlags, Vec<String>) {
    let mut own = LoadFlags::default();
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => own.addr = Some(value("--addr", &mut args)),
            "--concurrency" => own.concurrency = parse(&value("--concurrency", &mut args)),
            "--repeat" => own.repeat = parse(&value("--repeat", &mut args)),
            "--scale" => own.scale = Some(parse(&value("--scale", &mut args))),
            "--workers" => own.workers = parse(&value("--workers", &mut args)),
            "--queue" => own.queue = parse(&value("--queue", &mut args)),
            "--timeout-ms" => own.timeout_ms = parse(&value("--timeout-ms", &mut args)) as u64,
            _ => rest.push(arg),
        }
    }
    if own.concurrency == 0 || own.repeat == 0 {
        eprintln!("--concurrency and --repeat must be at least 1");
        std::process::exit(2);
    }
    (own, rest)
}

fn parse(value: &str) -> usize {
    value.parse().unwrap_or_else(|e| {
        eprintln!("bad numeric argument {value}: {e}");
        std::process::exit(2);
    })
}

/// One submission outcome, as recorded by a client thread.
struct Outcome {
    latency: Duration,
    kind: Kind,
    busy_retries: u64,
    input_ands: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Ok,
    Timeout,
    Error,
    Diverged,
}

fn main() {
    let (flags, rest) = split_args();
    let args = match BenchArgs::parse_from(rest) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    args.reject_emit_aiger("loadgen");
    if args.trace_out.is_some() {
        // In-process mode shares the span ring with the server, so the
        // trace captures every request's root span; against an external
        // `--addr` the server-side spans live in the daemon (use
        // `synthd --trace-out` there instead).
        obs::set_enabled(true);
    }
    let pipeline = args.pipeline_config();

    // --- workload ---------------------------------------------------------
    let catalog = bench_circuits::table1_benchmarks();
    let circuits: Vec<(String, aig::Aig)> = if args.positional.is_empty() {
        catalog
            .into_iter()
            .map(|b| (b.name.to_owned(), b.aig))
            .collect()
    } else {
        args.positional
            .iter()
            .map(|name| {
                let b = bench_circuits::benchmark_by_name(name).unwrap_or_else(|| {
                    eprintln!("unknown circuit: {name}");
                    std::process::exit(2);
                });
                (b.name.to_owned(), b.aig)
            })
            .collect()
    };
    let mut circuits: Vec<(String, Vec<u8>, usize)> = circuits
        .into_iter()
        .map(|(name, aig)| {
            let ands = aig.and_count();
            (name, aig::to_aiger_binary(&aig), ands)
        })
        .collect();
    if let Some(target) = flags.scale {
        let aig = bench_circuits::scale::random_kregular(target, 7);
        let ands = aig.and_count();
        circuits.push((format!("rand_{target}"), aig::to_aiger_binary(&aig), ands));
    }

    // Repeat-major order: wave 0 populates the warm cache, waves 1..R
    // must hit it.
    let mut jobs: Vec<(JobSpec, usize)> = Vec::new();
    for _ in 0..flags.repeat {
        for (name, aiger, ands) in &circuits {
            for family in GateFamily::ALL {
                jobs.push((
                    JobSpec {
                        family,
                        objective: pipeline.map.objective,
                        cut_k: pipeline.map.cut_k as u8,
                        max_cuts: 0,
                        verify: pipeline.verify,
                        choices: pipeline.choices,
                        patterns: pipeline.patterns as u64,
                        seed: pipeline.seed,
                        timeout_ms: flags.timeout_ms,
                        flow: pipeline.flow.clone(),
                        name: name.clone(),
                        aiger: aiger.clone(),
                    },
                    *ands,
                ));
            }
        }
    }

    // Warm the process-wide per-family caches before any clock starts:
    // `synthd` does the same at startup (steady-state is what the
    // harness measures), and the serial baseline below gets the same
    // head start, so neither side is charged for characterization.
    for family in GateFamily::ALL {
        let _ = ambipolar::engine::library(family);
        let _ = ambipolar::engine::match_cache(family);
    }

    // --- server -----------------------------------------------------------
    let local = if flags.addr.is_none() {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: flags.workers,
            queue_depth: flags.queue,
            cache_capacity: 64,
        })
        .unwrap_or_else(|e| {
            eprintln!("cannot start in-process server: {e}");
            std::process::exit(1);
        });
        Some(server)
    } else {
        None
    };
    let addr = flags
        .addr
        .clone()
        .unwrap_or_else(|| local.as_ref().expect("started above").addr().to_string());

    // --- load -------------------------------------------------------------
    eprintln!(
        "loadgen: {} jobs ({} circuits x {} families x {} repeats) at concurrency {} against {addr}",
        jobs.len(),
        circuits.len(),
        GateFamily::ALL.len(),
        flags.repeat,
        flags.concurrency
    );
    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<Outcome>> = Mutex::new(Vec::with_capacity(jobs.len()));
    // First-seen response digest per identical spec: concurrent
    // resubmissions must be byte-identical (netlist + QoR document).
    let digests: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..flags.concurrency {
            scope.spawn(|| {
                let mut client = match Client::connect(&addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("loadgen: cannot connect to {addr}: {e}");
                        std::process::exit(1);
                    }
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((spec, ands)) = jobs.get(i) else {
                        return;
                    };
                    let started = Instant::now();
                    let mut busy_retries = 0;
                    let response = loop {
                        match client.submit(spec) {
                            Ok(Response::Busy) => {
                                busy_retries += 1;
                                std::thread::sleep(Duration::from_millis(5 * busy_retries.min(20)));
                            }
                            Ok(other) => break other,
                            Err(e) => {
                                eprintln!("loadgen: request failed: {e}");
                                std::process::exit(1);
                            }
                        }
                    };
                    let latency = started.elapsed();
                    let kind = match &response {
                        Response::Ok {
                            netlist_verilog,
                            qor_json,
                            ..
                        } => {
                            let mut h = DefaultHasher::new();
                            netlist_verilog.hash(&mut h);
                            qor_json.hash(&mut h);
                            let digest = h.finish();
                            let mut k = DefaultHasher::new();
                            // All knobs are constant across this run,
                            // so (name, family) identifies a spec.
                            spec.name.hash(&mut k);
                            spec.family.label().hash(&mut k);
                            let key = k.finish();
                            let mut seen = digests.lock().expect("digest lock");
                            match seen.get(&key) {
                                Some(&first) if first != digest => {
                                    eprintln!(
                                        "loadgen: DIVERGED response for {}/{}",
                                        spec.name, spec.family
                                    );
                                    Kind::Diverged
                                }
                                Some(_) => Kind::Ok,
                                None => {
                                    seen.insert(key, digest);
                                    Kind::Ok
                                }
                            }
                        }
                        Response::Timeout { .. } => Kind::Timeout,
                        Response::Error { msg, .. } => {
                            eprintln!("loadgen: job {}/{} failed: {msg}", spec.name, spec.family);
                            Kind::Error
                        }
                        Response::Busy | Response::Stats { .. } | Response::Metrics { .. } => {
                            Kind::Error
                        }
                    };
                    outcomes.lock().expect("outcome lock").push(Outcome {
                        latency,
                        kind,
                        busy_retries,
                        input_ands: *ands,
                    });
                }
            });
        }
    });
    let wall = wall.elapsed();

    // --- server stats -----------------------------------------------------
    let server_stats = Client::connect(&addr)
        .and_then(|mut c| c.stats())
        .unwrap_or_else(|e| {
            eprintln!("loadgen: cannot fetch server stats: {e}");
            std::process::exit(1);
        });
    // Scrape the Prometheus metrics frame before the serial baseline
    // runs, so the latency-histogram counts reflect exactly the load
    // phase (tools/obs_guard.py checks them against jobs_ok).
    let server_metrics = Client::connect(&addr)
        .and_then(|mut c| c.metrics())
        .unwrap_or_else(|e| {
            eprintln!("loadgen: cannot fetch server metrics: {e}");
            std::process::exit(1);
        });
    drop(local); // orderly in-process shutdown before the baseline runs

    // --- serial one-shot baseline ----------------------------------------
    // Each unique (circuit, family) job is run once, serially, in this
    // process: parse + synthesize + map + estimate with a fresh cut
    // database per run — what a one-shot CLI invocation would do (minus
    // library characterization, which this process has already paid;
    // the comparison is conservative in the baseline's favor).
    eprintln!("loadgen: measuring serial one-shot baseline...");
    let baseline_wall = Instant::now();
    let mut baseline_jobs = 0usize;
    for (name, aiger, _) in &circuits {
        for family in GateFamily::ALL {
            // A one-shot process starts from the AIGER bytes every
            // time: parse, synthesize, enumerate cuts, map, estimate.
            let input = aig::from_aiger_auto(aiger).expect("own encoding");
            let parsed = ambipolar::engine::parse_flow(&pipeline).expect("flow validated");
            let (synthesized, choices) =
                ambipolar::engine::synthesize_with_choices(&parsed, &input, &pipeline);
            let library = ambipolar::engine::library(family);
            let mut db = ambipolar::pipeline::mapper_cut_db(&pipeline.map);
            ambipolar::pipeline::run_job(
                &synthesized,
                choices.as_ref(),
                library,
                &pipeline,
                &mut db,
                None,
            )
            .unwrap_or_else(|e| {
                eprintln!("baseline job {name}/{family} failed: {e}");
                std::process::exit(1);
            });
            baseline_jobs += 1;
        }
    }
    let baseline_wall = baseline_wall.elapsed();

    // --- aggregate --------------------------------------------------------
    let outcomes = outcomes.into_inner().expect("outcome lock");
    let ok = outcomes.iter().filter(|o| o.kind == Kind::Ok).count();
    let timeouts = outcomes.iter().filter(|o| o.kind == Kind::Timeout).count();
    let errors = outcomes
        .iter()
        .filter(|o| matches!(o.kind, Kind::Error | Kind::Diverged))
        .count();
    let diverged = outcomes.iter().filter(|o| o.kind == Kind::Diverged).count();
    let busy_retries: u64 = outcomes.iter().map(|o| o.busy_retries).sum();
    let nodes: usize = outcomes
        .iter()
        .filter(|o| o.kind == Kind::Ok)
        .map(|o| o.input_ands)
        .sum();
    let mut latencies_ms: Vec<f64> = outcomes
        .iter()
        .map(|o| o.latency.as_secs_f64() * 1e3)
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |q: f64| -> f64 {
        if latencies_ms.is_empty() {
            return 0.0;
        }
        let rank = ((q * latencies_ms.len() as f64).ceil() as usize).clamp(1, latencies_ms.len());
        latencies_ms[rank - 1]
    };
    let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64;
    let throughput = outcomes.len() as f64 / wall.as_secs_f64();
    let baseline_throughput = baseline_jobs as f64 / baseline_wall.as_secs_f64();
    let speedup = throughput / baseline_throughput;

    let names: Vec<String> = circuits.iter().map(|(n, _, _)| json_string(n)).collect();
    let doc = format!(
        "{{\n  \"artifact\": \"serve_load\",\n  \"concurrency\": {},\n  \"repeat\": {},\n  \
         \"circuits\": [{}],\n  \"patterns\": {},\n  \"seed\": {},\n  \"flow\": {},\n  \
         \"objective\": {},\n  \"cut_k\": {},\n  \"verify\": {},\n  \"choices\": {},\n  \
         \"timeout_ms\": {},\n  \"jobs_total\": {},\n  \"jobs_ok\": {},\n  \
         \"jobs_timeout\": {},\n  \"jobs_error\": {},\n  \"jobs_diverged\": {},\n  \
         \"busy_retries\": {},\n  \"wall_seconds\": {},\n  \
         \"throughput_jobs_per_s\": {},\n  \"throughput_nodes_per_s\": {},\n  \
         \"latency_ms\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {}, \"max\": {}}},\n  \
         \"serial_baseline\": {{\"jobs\": {}, \"wall_seconds\": {}, \
         \"throughput_jobs_per_s\": {}}},\n  \"speedup_vs_serial\": {},\n  \
         \"metrics\": {},\n  \"server\": {}\n}}\n",
        flags.concurrency,
        flags.repeat,
        names.join(", "),
        pipeline.patterns,
        pipeline.seed,
        json_string(&pipeline.flow),
        json_string(&pipeline.map.objective.to_string()),
        pipeline.map.cut_k,
        json_string(&pipeline.verify.to_string()),
        pipeline.choices,
        flags.timeout_ms,
        outcomes.len(),
        ok,
        timeouts,
        errors,
        diverged,
        busy_retries,
        json_seconds(wall),
        json_f64(throughput),
        json_f64(nodes as f64 / wall.as_secs_f64()),
        json_f64(pct(0.50)),
        json_f64(pct(0.95)),
        json_f64(pct(0.99)),
        json_f64(mean),
        json_f64(latencies_ms.last().copied().unwrap_or(0.0)),
        baseline_jobs,
        json_seconds(baseline_wall),
        json_f64(baseline_throughput),
        json_f64(speedup),
        json_string(&server_metrics),
        server_stats.trim_end(),
    );
    println!(
        "loadgen: {ok}/{} ok ({timeouts} timeout, {errors} error), p50 {:.1} ms, p99 {:.1} ms, \
         {throughput:.2} jobs/s ({speedup:.2}x serial)",
        outcomes.len(),
        pct(0.50),
        pct(0.99),
    );
    if let Some(path) = &args.json {
        write_or_exit(path, &doc);
    } else {
        print!("{doc}");
    }
    if let Some(path) = &args.trace_out {
        match obs::write_trace(path) {
            Ok(()) => eprintln!("loadgen: trace written to {path}"),
            Err(e) => {
                eprintln!("loadgen: cannot write trace {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if errors > 0 {
        std::process::exit(1);
    }
}
