//! Regenerates the §4 **gate-level library characterization**: the 46-cell
//! generalized ambipolar library with per-cell power breakdowns, and the
//! CNTFET-vs-CMOS comparison the paper summarizes as "28 % less power on
//! average".

use ambipolar::engine;
use ambipolar::experiments::gate_library_comparison;
use bench::BenchArgs;
use gate_lib::GateFamily;

fn main() {
    BenchArgs::parse_no_tuning("gate_library");
    for family in GateFamily::ALL {
        let lib = engine::library(family);
        println!(
            "=== {} — {} cells, {} distinct I_off patterns simulated ===",
            family,
            lib.gates.len(),
            lib.simulated_patterns
        );
        println!(
            "{:<12} {:>3} {:>5} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9}",
            "cell", "in", "T", "alpha", "Cin(aF)", "Ioff(nA)", "Ig(pA)", "PD(nW)", "PT(nW)"
        );
        for g in &lib.gates {
            let p = g.power_summary();
            println!(
                "{:<12} {:>3} {:>5} {:>6.3} {:>8.1} {:>9.3} {:>9.3} {:>9.2} {:>9.2}",
                g.gate.name,
                g.gate.n_inputs,
                g.gate.transistor_count(),
                g.alpha,
                g.avg_input_cap().value() * 1e18,
                g.ioff_avg * 1e9,
                g.ig_avg * 1e12,
                p.dynamic.value() * 1e9,
                p.total().value() * 1e9,
            );
        }
        println!(
            "library average total gate power: {}",
            lib.average_total_power()
        );
        println!();
    }
    println!("{}", gate_library_comparison());
}
