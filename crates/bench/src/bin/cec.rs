//! Combinational equivalence checker for AIGER circuit pairs — the
//! `abc cec` substitute built on the SAT subsystem (`sat` + `aig::check`).
//!
//! ```text
//! cargo run --release -p bench --bin cec -- a.aag b.aig
//! cargo run --release -p bench --bin cec -- --catalog C1355
//! ```
//!
//! The two-file form proves two AIGER circuits (ASCII or binary, sniffed
//! from the header) functionally equivalent, or prints a concrete
//! counterexample input pattern. `--catalog NAME` is the self-test form:
//! it proves the named Table-1 benchmark equivalent to its balanced and
//! fully synthesized versions — the CI smoke that the optimization flow
//! is sound.
//!
//! Exit status: 0 equivalent, 1 not equivalent, 2 usage/parse error.

use aig::{check_equivalence, Aig, Equivalence};

fn usage() -> ! {
    eprintln!(
        "usage: cec <a.aag|a.aig> <b.aag|b.aig>   prove two AIGER circuits equivalent\n\
         \x20      cec --catalog NAME [FLOW]       prove balance + flow synthesis of a Table-1 circuit sound\n\
         \x20                                      (FLOW e.g. \"b;rw;rf;b;rw -z;b\"; default: the default flow)"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Aig {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    aig::from_aiger_auto(&bytes).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

/// Runs one proof, reporting timing and any counterexample; returns
/// whether the pair is equivalent.
fn prove(label: &str, a: &Aig, b: &Aig) -> bool {
    let t0 = std::time::Instant::now();
    match check_equivalence(a, b) {
        Err(e) => {
            eprintln!("{label}: {e}");
            std::process::exit(2);
        }
        Ok(Equivalence::Equal) => {
            println!("{label}: EQUIVALENT (proven in {:.1?})", t0.elapsed());
            true
        }
        Ok(Equivalence::Counterexample(cex)) => {
            let pattern: String = cex.iter().map(|&x| if x { '1' } else { '0' }).collect();
            println!(
                "{label}: NOT EQUIVALENT — counterexample inputs (0..n) = {pattern} \
                 (found in {:.1?})",
                t0.elapsed()
            );
            false
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ok = match args.as_slice() {
        [flag, rest @ ..] if flag == "--catalog" && matches!(rest.len(), 1 | 2) => {
            let name = &rest[0];
            let Some(bench) = bench_circuits::benchmark_by_name(name) else {
                eprintln!("unknown catalog circuit `{name}`");
                std::process::exit(2);
            };
            let flow = match rest.get(1) {
                Some(script) => aig::Flow::parse(script).unwrap_or_else(|e| {
                    eprintln!("bad flow script: {e}");
                    std::process::exit(2);
                }),
                None => aig::Flow::default_flow(),
            };
            println!(
                "{name}: {} inputs, {} outputs, {} AND nodes",
                bench.aig.input_count(),
                bench.aig.output_count(),
                bench.aig.and_count()
            );
            let balanced = aig::balance(&bench.aig);
            let synthesized = flow.run(&bench.aig);
            let ok_bal = prove(&format!("{name} vs balance({name})"), &bench.aig, &balanced);
            let ok_syn = prove(
                &format!("{name} vs flow \"{}\"({name})", flow.script()),
                &bench.aig,
                &synthesized,
            );
            ok_bal && ok_syn
        }
        [a, b] if !a.starts_with("--") && !b.starts_with("--") => {
            let left = load(a);
            let right = load(b);
            println!(
                "{a}: {} inputs, {} outputs, {} ANDs | {b}: {} inputs, {} outputs, {} ANDs",
                left.input_count(),
                left.output_count(),
                left.and_count(),
                right.input_count(),
                right.output_count(),
                right.and_count()
            );
            prove("result", &left, &right)
        }
        _ => usage(),
    };
    std::process::exit(i32::from(!ok));
}
