//! Supply-voltage scaling study (extension): sweeps V_DD and re-runs the
//! pipeline on an XOR-rich benchmark, charting where each family's EDP
//! optimum sits. The paper fixes V_DD = 0.9 V; this quantifies how robust
//! its conclusions are to voltage scaling.

use ambipolar::pipeline::{evaluate_circuit_with_choices, PipelineConfig};
use bench::BenchArgs;
use charlib::characterize::characterize_library_with;
use gate_lib::GateFamily;

fn main() {
    let args = BenchArgs::parse();
    args.reject_json("vdd_sweep");
    let bench = bench_circuits::benchmark_by_name("C1908").expect("C1908 exists");
    // Off-default technology points (V_DD ≠ 0.9 V) cannot come from the
    // engine cache; each sweep point characterizes its own library below.
    let config = PipelineConfig {
        patterns: args.patterns_or(1 << 14),
        choices: args.choices,
        ..PipelineConfig::default()
    };
    let flow = args.flow_with_choices();
    let (synthesized, choices, _) = flow.run_with_choices(&bench.aig);
    let config = match args.seed {
        Some(seed) => PipelineConfig { seed, ..config },
        None => config,
    };
    println!("V_DD scaling on {} ({}):", bench.name, bench.function);
    println!(
        "{:<8} {:<22} {:>10} {:>10} {:>10} {:>12}",
        "V_DD", "family", "delay", "P_T", "P_S", "EDP (J·s)"
    );
    let mut edp_min: Vec<(f64, f64)> = vec![(f64::INFINITY, 0.0); 3];
    for vdd_mv in (500..=1100).step_by(100) {
        let vdd = vdd_mv as f64 / 1000.0;
        for (fi, family) in GateFamily::ALL.iter().enumerate() {
            let tech = family.tech().with_vdd(vdd);
            let library = characterize_library_with(*family, tech);
            let r =
                evaluate_circuit_with_choices(&synthesized, choices.as_ref(), &library, &config)
                    .expect("built-in benchmarks map at every sweep point");
            let edp = r.edp().value();
            if edp < edp_min[fi].0 {
                edp_min[fi] = (edp, vdd);
            }
            println!(
                "{:<8.2} {:<22} {:>10} {:>10} {:>10} {:>12.2e}",
                vdd,
                family.label(),
                format!("{}", r.delay),
                format!("{}", r.total_power()),
                format!("{}", r.power.static_sub),
                edp,
            );
        }
    }
    println!("\nEDP-optimal supply per family:");
    for (fi, family) in GateFamily::ALL.iter().enumerate() {
        println!(
            "  {:<22} V_DD = {:.2} V (EDP {:.2e} J·s)",
            family.label(),
            edp_min[fi].1,
            edp_min[fi].0
        );
    }
    println!(
        "\nReading: the generalized-CNTFET advantage persists across the entire sweep —\n\
         the paper's 0.9 V conclusion is not an artifact of the chosen operating point."
    );
}
