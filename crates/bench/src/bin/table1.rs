//! Regenerates **Table 1** of the paper: logic synthesis and technology
//! mapping of 12 benchmarks with the three libraries, through the
//! parallel, library-cached experiment engine.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin table1              # 64 K patterns
//! cargo run --release -p bench --bin table1 -- --paper   # 640 K (paper)
//! cargo run --release -p bench --bin table1 -- --patterns 16384 --seed 7
//! cargo run --release -p bench --bin table1 -- --flow "b;rw;rf;b;rw -z;b" --verify sat C1355 C499 t481
//! cargo run --release -p bench --bin table1 -- --json BENCH_table1.json
//! ```
//!
//! Positional arguments restrict the run to the named catalog circuits
//! (the full 12-row table otherwise); `--json PATH` writes the
//! machine-readable QoR/runtime artifact the perf trajectory is tracked
//! with.

use ambipolar::experiments::table1_subset;
use bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    args.reject_emit_aiger("table1");
    let config = args.table1_config();
    let names: Vec<&str> = args.positional.iter().map(String::as_str).collect();
    for name in &names {
        if bench_circuits::benchmark_by_name(name).is_none() {
            eprintln!("unknown catalog circuit `{name}`");
            std::process::exit(2);
        }
    }
    let subset = if names.is_empty() {
        None
    } else {
        Some(&names[..])
    };
    eprintln!(
        "running Table 1 ({}) with {} random patterns per circuit ({} objective, flow \"{}\") on {} thread(s)...",
        if names.is_empty() {
            "all 12 circuits".to_owned()
        } else {
            names.join(", ")
        },
        config.pipeline.patterns,
        config.pipeline.map.objective,
        config.pipeline.flow,
        args.threads.unwrap_or_else(rayon::current_num_threads)
    );
    let started = std::time::Instant::now();
    let table = args
        .with_tracing(|| args.with_thread_pool(|| table1_subset(&config, subset)))
        .unwrap_or_else(|e| {
            eprintln!("mapping failed: {e}");
            std::process::exit(1);
        });
    let wall = started.elapsed();
    println!("{table}");
    println!();
    println!("Paper reference (averages): generalized 1145 gates / 64 ps / 19.84 µW PD / 0.23 µW PS / 23.05 µW PT / 1.59e-24 EDP");
    println!("                            conventional 1462 / 89 / 29.25 / 0.33 / 33.97 / 3.85;  CMOS 1511 / 452 / 42.35 / 4.55 / 53.70 / 31.04");
    println!("Paper improvements vs CMOS: generalized 24.2% gates, 7.1x delay, 53.4% PD, 94.5% PS, 57.1% PT, 19.5x EDP");
    println!("                            conventional 3.2% gates, 5.1x delay, 30.9% PD, 92.7% PS, 36.7% PT, 8.1x EDP");
    if let Some(path) = &args.json {
        let doc = bench::qor::table1_json("table1", &table, &config, wall, &[]);
        bench::qor::write_or_exit(path, &doc);
    }
    eprintln!("total runtime: {wall:?}");
}
