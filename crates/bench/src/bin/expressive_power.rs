//! Quantifies the paper's **expressive power** concept: how many distinct
//! logic functions each library implements by in-field constant-tying of
//! generalized inputs, per physical transistor.
//!
//! (Background to §1/§2.2: "the expressive power of such libraries, i.e.,
//! their ability to implement more functions with fewer physical
//! resources, was shown to be higher than … conventional unipolar
//! MOSFETs".)

use bench::BenchArgs;
use gate_lib::expressive::library_expressive_power;
use gate_lib::{DynamicGnor, GateFamily};

fn main() {
    BenchArgs::parse_no_tuning("expressive_power");
    println!("Expressive power (distinct P-class functions by constant-tying cell pins):\n");
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9} {:>12} {:>14}",
        "library", "1-in", "2-in", "3-in", "4-in", "5-in", "total", "transistors", "fns/100 T"
    );
    for family in GateFamily::ALL {
        let p = library_expressive_power(family);
        println!(
            "{:<22} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9} {:>12} {:>14.1}",
            family.label(),
            p.count(1),
            p.count(2),
            p.count(3),
            p.count(4),
            p.count(5),
            p.total(),
            p.total_transistors,
            p.per_hundred_transistors(),
        );
    }

    println!("\nDynamic in-field programmable GNOR (DAC'08 background, §2.2):");
    for width in 2..=4 {
        let g = DynamicGnor::new(width);
        println!(
            "  GNOR{width}: {} transistors, {} polarity-programmable functions",
            g.transistor_count(),
            g.programmable_function_count()
        );
    }
    println!(
        "\n(The paper's [5] reports 8 functions of 2 inputs from 7 CNTFETs; the dynamic\n\
         GNOR2 here reaches 4 functions with 4 devices plus clocking, same regime.)"
    );
}
