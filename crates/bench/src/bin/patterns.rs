//! Regenerates the §3.2 **I_off pattern census**: the distinct canonical
//! off-transistor patterns across the generalized library (the paper
//! reports 26), demonstrating why pattern classification beats exhaustive
//! per-vector simulation.

use ambipolar::experiments::pattern_census;
use bench::BenchArgs;

fn main() {
    BenchArgs::parse_no_tuning("patterns");
    let census = pattern_census();
    println!("{census}");
    println!(
        "speedup ingredient: {} circuit simulations instead of {} (one per (gate, vector))",
        census.distinct, census.observations
    );
}
