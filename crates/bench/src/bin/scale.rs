//! Nodes/sec scale harness: runs the synthesis hot loops — synth flow,
//! `dch` sweep, technology mapping — over the deterministic synthetic
//! workloads of `bench_circuits::scale` at each requested size, serial
//! (one worker) vs parallel (the `--threads`/environment pool), and
//! reports throughput in AND nodes per second.
//!
//! ```text
//! cargo run --release -p bench --bin scale                      # 10k 50k 100k
//! cargo run --release -p bench --bin scale -- 10k 100k 1m
//! cargo run --release -p bench --bin scale -- --threads 8 --json BENCH_scale.json
//! cargo run --release -p bench --bin scale -- 10k --verify sat  # SAT-prove the synth results
//! cargo run --release -p bench --bin scale -- 10k --emit-aiger /tmp/scale  # AIGER for map_aiger
//! ```
//!
//! The serial and parallel runs must produce bit-identical networks (the
//! engine's determinism contract); the bin asserts this on every
//! workload, so a throughput run doubles as a determinism check.
//! `--verify sat` additionally SAT-proves each synthesized network
//! equivalent to its generator output (slow at large sizes; CI runs it
//! on the 10k workloads).
//!
//! Each phase is timed as the *minimum* over [`TIMING_RUNS`] identical
//! runs per pool — the minimum is the standard robust estimator for a
//! deterministic workload (every run does exactly the same work; any
//! excess over the fastest run is scheduler or cache noise). When the
//! parallel pool has one worker it is configuration-identical to the
//! serial pool, so both columns report the shared best time instead of
//! sampling the same distribution twice. Each row also records the
//! `aig::profile` counter deltas of its serial runs (cut reuse, SAT
//! merges, simulation words), which `tools/scale_guard.py` checks to
//! prove the incremental cut database is live.
//!
//! Span tracing runs for the whole harness (span granularity is one
//! flow pass / mapper phase, far too coarse to perturb the timings):
//! each JSON row carries a `spans_top` field — the workload's five
//! largest spans by self time — so `BENCH_scale.json` attributes
//! throughput changes to phases; `--trace-out PATH` additionally writes
//! the full Chrome-trace JSON.

use aig::check::{check_equivalence, Equivalence};
use aig::{Aig, Flow};
use ambipolar::engine;
use bench::BenchArgs;
use bench_circuits::scale::workloads;
use gate_lib::GateFamily;
use std::time::Instant;
use techmap::Verify;

/// The synth measurement flow (ABC's `resyn2` shape, matching the QoR
/// baseline's script).
const SYNTH_FLOW: &str = "b;rw;rf;b;rw -z;b";

/// Default measurement sizes: small / medium / large (CI trims to
/// 10k/50k; the committed baseline includes 100k).
const DEFAULT_SIZES: [usize; 3] = [10_000, 50_000, 100_000];

/// Timed runs per phase per pool; the reported time is the minimum.
const TIMING_RUNS: usize = 2;

fn parse_size(s: &str) -> Option<usize> {
    let lower = s.to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix('k') {
        Some(d) => (d, 1_000usize),
        None => match lower.strip_suffix('m') {
            Some(d) => (d, 1_000_000usize),
            None => (lower.as_str(), 1usize),
        },
    };
    digits.parse::<usize>().ok().map(|n| n * mult)
}

struct Phase {
    name: &'static str,
    /// AND count the throughput is normalized by (the phase's input).
    ands: usize,
    serial_seconds: f64,
    parallel_seconds: f64,
}

impl Phase {
    fn serial_nps(&self) -> f64 {
        self.ands as f64 / self.serial_seconds.max(1e-9)
    }

    fn parallel_nps(&self) -> f64 {
        self.ands as f64 / self.parallel_seconds.max(1e-9)
    }
}

fn main() {
    let args = BenchArgs::parse();
    obs::set_enabled(true);
    let sizes: Vec<usize> = if args.positional.is_empty() {
        DEFAULT_SIZES.to_vec()
    } else {
        args.positional
            .iter()
            .map(|s| {
                parse_size(s).unwrap_or_else(|| {
                    eprintln!("bad size `{s}` (expected e.g. 10000, 10k, 1m)");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    let verify = args.verify.unwrap_or(Verify::Off);
    let threads = args.threads.unwrap_or_else(rayon::current_num_threads);
    let synth_flow = Flow::parse(SYNTH_FLOW).expect("the synth flow parses");
    let dch_flow = Flow::parse("dch").expect("the dch flow parses");
    let library = engine::library(GateFamily::ALL[0]);
    let cache = engine::match_cache(GateFamily::ALL[0]);
    let map_config = args.pipeline_config().map;
    let serial_pool = pool(1);
    let parallel_pool = pool(threads);

    println!(
        "scale harness: sizes {:?}, flow \"{SYNTH_FLOW}\", serial (1 thread) vs parallel ({threads} thread(s))",
        sizes
    );
    let started = Instant::now();
    let mut rows: Vec<String> = Vec::new();
    for &size in &sizes {
        for (spec, aig) in workloads(size) {
            if let Some(dir) = &args.emit_aiger {
                emit_aiger(dir, spec.family, size, &aig);
            }
            let ands = aig.and_count();
            let counters_before = aig::profile::snapshot();
            let spans_before = obs::span_stats();

            // Synth: serial and parallel must agree bit-for-bit. The
            // serial run keeps its FlowReport so the row can record the
            // cut database's reuse statistics.
            let (t_synth_s, (synth_s, synth_report)) =
                timed_best(&serial_pool, || synth_flow.run_with_report(&aig));
            let (t_synth_p, (synth_p, _)) =
                timed_best(&parallel_pool, || synth_flow.run_with_report(&aig));
            assert!(
                synth_s.same_structure(&synth_p),
                "{} {size}: parallel synth diverged from serial",
                spec.family
            );
            let (t_synth_s, t_synth_p) = fold_single_thread(threads, t_synth_s, t_synth_p);
            let synth = Phase {
                name: "synth",
                ands,
                serial_seconds: t_synth_s,
                parallel_seconds: t_synth_p,
            };

            // dch sweep over the raw workload.
            let (t_dch_s, dch_s) = timed_best(&serial_pool, || dch_flow.run(&aig));
            let (t_dch_p, dch_p) = timed_best(&parallel_pool, || dch_flow.run(&aig));
            assert!(
                dch_s.same_structure(&dch_p),
                "{} {size}: parallel dch diverged from serial",
                spec.family
            );
            let (t_dch_s, t_dch_p) = fold_single_thread(threads, t_dch_s, t_dch_p);
            let dch = Phase {
                name: "dch",
                ands,
                serial_seconds: t_dch_s,
                parallel_seconds: t_dch_p,
            };

            // Mapping the synthesized network (the pipeline's next stage).
            let map_ands = synth_s.and_count();
            let (t_map_s, mapped_s) = timed_best(&serial_pool, || {
                techmap::map_aig_with_cache(&synth_s, library, cache, &map_config)
            });
            let (t_map_p, mapped_p) = timed_best(&parallel_pool, || {
                techmap::map_aig_with_cache(&synth_s, library, cache, &map_config)
            });
            let (t_map_s, t_map_p) = fold_single_thread(threads, t_map_s, t_map_p);
            let (mapped_s, mapped_p) = match (mapped_s, mapped_p) {
                (Ok(s), Ok(p)) => (s, p),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("{} {size}: mapping failed: {e}", spec.family);
                    std::process::exit(1);
                }
            };
            let row_counters = aig::profile::snapshot().delta_since(&counters_before);
            assert_eq!(
                mapped_s.gate_count(),
                mapped_p.gate_count(),
                "{} {size}: parallel mapping diverged from serial",
                spec.family
            );
            let map = Phase {
                name: "map",
                ands: map_ands,
                serial_seconds: t_map_s,
                parallel_seconds: t_map_p,
            };

            if verify == Verify::Sat {
                let t = Instant::now();
                let proof = check_equivalence(&aig, &synth_s).unwrap_or_else(|e| {
                    eprintln!("{} {size}: verify shape mismatch: {e}", spec.family);
                    std::process::exit(1);
                });
                assert_eq!(
                    proof,
                    Equivalence::Equal,
                    "{} {size}: synth result must be SAT-equivalent",
                    spec.family
                );
                println!(
                    "  {:<5} {:>8}: synth SAT-verified in {:?}",
                    spec.family,
                    size,
                    t.elapsed()
                );
            }

            for phase in [&synth, &dch, &map] {
                println!(
                    "  {:<5} {:>8} {:<5}: {:>12.0} nodes/s serial, {:>12.0} nodes/s parallel ({:.2}x)",
                    spec.family,
                    size,
                    phase.name,
                    phase.serial_nps(),
                    phase.parallel_nps(),
                    phase.serial_seconds / phase.parallel_seconds.max(1e-9),
                );
            }
            println!(
                "  {:<5} {:>8} flow : cuts {} reused / {} computed; sat merges {}; sim words {}",
                spec.family,
                size,
                synth_report.cuts_reused,
                synth_report.cuts_computed,
                row_counters.sat_merge_calls,
                row_counters.sim_words,
            );
            rows.push(result_json(
                spec.family,
                size,
                ands,
                synth_s.and_count(),
                mapped_s.gate_count(),
                &[synth, dch, map],
                &synth_report,
                &row_counters,
                &spans_top_json(&spans_before),
            ));
        }
    }
    eprintln!("total runtime: {:?}", started.elapsed());

    if let Some(path) = &args.json {
        let doc = format!(
            "{{\n  \"artifact\": \"scale\",\n  \"flow\": {},\n  \"threads\": {},\n  \
             \"sizes\": [{}],\n  \"results\": [\n    {}\n  ]\n}}\n",
            bench::qor::json_string(SYNTH_FLOW),
            threads,
            sizes
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", "),
            rows.join(",\n    "),
        );
        bench::qor::write_or_exit(path, &doc);
    }
    if let Some(path) = &args.trace_out {
        match obs::write_trace(path) {
            Ok(()) => eprintln!("trace written to {path}"),
            Err(e) => {
                eprintln!("cannot write trace {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The workload's five largest spans by self time since `before`
/// (aggregated across this row's timing runs), as a JSON array.
fn spans_top_json(before: &[obs::SpanStat]) -> String {
    let mut deltas: Vec<obs::SpanStat> = obs::span_stats()
        .into_iter()
        .map(|s| {
            let prev = before.iter().find(|b| b.name == s.name);
            obs::SpanStat {
                count: s.count - prev.map_or(0, |p| p.count),
                total_us: s.total_us - prev.map_or(0, |p| p.total_us),
                self_us: s.self_us - prev.map_or(0, |p| p.self_us),
                name: s.name,
            }
        })
        .filter(|s| s.count > 0)
        .collect();
    deltas.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.name.cmp(&b.name)));
    let top: Vec<String> = deltas
        .iter()
        .take(5)
        .map(|s| {
            format!(
                "{{\"name\": {}, \"count\": {}, \"total_us\": {}, \"self_us\": {}}}",
                bench::qor::json_string(&s.name),
                s.count,
                s.total_us,
                s.self_us,
            )
        })
        .collect();
    format!("[{}]", top.join(", "))
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction cannot fail for n >= 1")
}

fn timed<R>(work: impl FnOnce() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = work();
    (t.elapsed().as_secs_f64(), r)
}

/// Runs `work` [`TIMING_RUNS`] times inside `pool`, returning the fastest
/// wall-clock and the (deterministic, hence identical) last result.
fn timed_best<R>(pool: &rayon::ThreadPool, work: impl Fn() -> R + Sync) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..TIMING_RUNS {
        let (t, r) = pool.install(|| timed(&work));
        best = best.min(t);
        result = Some(r);
    }
    (best, result.expect("TIMING_RUNS >= 1"))
}

/// With one worker the "parallel" pool is configuration-identical to the
/// serial pool, so both columns report the shared best measurement
/// instead of sampling the same distribution twice.
fn fold_single_thread(threads: usize, serial: f64, parallel: f64) -> (f64, f64) {
    if threads == 1 {
        let best = serial.min(parallel);
        (best, best)
    } else {
        (serial, parallel)
    }
}

fn emit_aiger(dir: &str, family: &str, size: usize, aig: &Aig) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("cannot create {dir}: {e}");
        std::process::exit(2);
    });
    let path = format!("{dir}/{family}_{size}.aig");
    std::fs::write(&path, aig::to_aiger_binary(aig)).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("  wrote {path}");
}

#[allow(clippy::too_many_arguments)] // one row, one call site
fn result_json(
    family: &str,
    size: usize,
    ands: usize,
    synth_ands: usize,
    gates: usize,
    phases: &[Phase; 3],
    synth_report: &aig::FlowReport,
    counters: &aig::profile::Counters,
    spans_top: &str,
) -> String {
    let phase_json: Vec<String> = phases
        .iter()
        .map(|p| {
            format!(
                "\"{}\": {{\"ands\": {}, \"serial_seconds\": {}, \"parallel_seconds\": {}, \
                 \"serial_nodes_per_sec\": {}, \"parallel_nodes_per_sec\": {}}}",
                p.name,
                p.ands,
                bench::qor::json_f64(p.serial_seconds),
                bench::qor::json_f64(p.parallel_seconds),
                bench::qor::json_f64(p.serial_nps()),
                bench::qor::json_f64(p.parallel_nps()),
            )
        })
        .collect();
    // The profile object leads with the synth flow's own cut-database
    // statistics (exact), then the process-counter deltas spanning the
    // row's runs (attribution, not accounting — see `aig::profile`).
    let counter_json: Vec<String> = counters
        .pairs()
        .iter()
        .filter(|(name, _)| !name.starts_with("cuts_")) // the flow's exact numbers lead
        .map(|(name, value)| format!("\"{name}\": {value}"))
        .collect();
    format!(
        "{{\"family\": {}, \"target\": {}, \"ands\": {}, \"synth_ands\": {}, \"gates\": {}, {}, \
         \"profile\": {{\"cuts_reused\": {}, \"cuts_computed\": {}, {}}}, \"spans_top\": {}}}",
        bench::qor::json_string(family),
        size,
        ands,
        synth_ands,
        gates,
        phase_json.join(", "),
        synth_report.cuts_reused,
        synth_report.cuts_computed,
        counter_json.join(", "),
        spans_top,
    )
}
