//! Regenerates the **Fig. 4** study: input-vector dependence of a 3-input
//! NOR's leakage — three parallel off-transistors ([0 0 0]) versus three
//! in series ([1 1 1]) — plus a stack-depth sweep showing the underlying
//! stack effect.

use ambipolar::experiments::fig4_study;
use bench::BenchArgs;
use charlib::{LeakageSimulator, OffPattern};
use device::units::eng;
use device::TechParams;

fn main() {
    BenchArgs::parse_no_tuning("fig4_leakage");
    for tech in [TechParams::cmos_32nm(), TechParams::cntfet_32nm()] {
        println!("{}", fig4_study(&tech));
    }
    println!();
    println!("Stack-effect sweep (leakage of N series off-devices, normalized to N = 1):");
    println!("{:<10} {:>14} {:>14} {:>10}", "depth", "CMOS", "CNTFET", "");
    let mut cmos = LeakageSimulator::new(TechParams::cmos_32nm());
    let mut cnt = LeakageSimulator::new(TechParams::cntfet_32nm());
    let single_cmos = cmos.ioff(&OffPattern::Device);
    let single_cnt = cnt.ioff(&OffPattern::Device);
    for depth in 1..=4usize {
        let pattern = OffPattern::series(vec![OffPattern::Device; depth.max(1)]);
        let pattern = if depth == 1 {
            OffPattern::Device
        } else {
            pattern
        };
        let i_cmos = cmos.ioff(&pattern);
        let i_cnt = cnt.ioff(&pattern);
        println!(
            "{:<10} {:>14} {:>14}   ({:.3} / {:.3} of single)",
            depth,
            eng(i_cmos, "A"),
            eng(i_cnt, "A"),
            i_cmos / single_cmos,
            i_cnt / single_cnt,
        );
    }
}
