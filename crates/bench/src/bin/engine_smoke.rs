//! Engine smoke measurement: verifies the three load-bearing claims of the
//! experiment engine on the machine at hand —
//!
//! 1. **library cache**: a quick Table-1 subset characterizes each gate
//!    family exactly once, however many pipeline runs it fans out;
//! 2. **match cache**: the NPN class table of each family is built exactly
//!    once and every later access is a pointer read (build vs hit timing
//!    is printed);
//! 3. **rewrite library**: the NPN-class optimal-subgraph library behind
//!    the `rw` pass is built exactly once (build vs hit timing printed),
//!    and the configured flow's per-pass timing is measured on a sample
//!    circuit;
//! 4. **speedup**: the parallel circuit × family driver beats the serial
//!    reference loop wall-clock (on a multi-core machine; on one core the
//!    two are equivalent by construction), with bit-identical output.
//!
//! ```text
//! cargo run --release -p bench --bin engine_smoke
//! cargo run --release -p bench --bin engine_smoke -- --patterns 16384
//! cargo run --release -p bench --bin engine_smoke -- --flow "b;rw;b" --json smoke.json
//! ```

use ambipolar::engine;
use bench::BenchArgs;
use gate_lib::GateFamily;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    args.reject_emit_aiger("engine_smoke");
    args.with_thread_pool(|| run(&args));
}

fn run(args: &BenchArgs) {
    let config = args.table1_config();
    let threads = rayon::current_num_threads();
    println!(
        "engine smoke: quick Table 1, {} patterns/circuit, {} objective, flow \"{}\", {} worker thread(s)",
        config.pipeline.patterns, config.pipeline.map.objective, config.pipeline.flow, threads
    );

    // NPN match caches: time the cold build and a warm hit per family.
    for family in GateFamily::ALL {
        let t_build = Instant::now();
        let cache = engine::match_cache(family);
        let build = t_build.elapsed();
        let t_hit = Instant::now();
        let again = engine::match_cache(family);
        let hit = t_hit.elapsed();
        assert!(std::ptr::eq(cache, again), "hits must share one instance");
        println!(
            "  match cache [{family}]: {} cells -> {} NPN classes, build {build:?}, hit {hit:?}",
            cache.cell_count(),
            cache.class_count(),
        );
    }
    let match_builds = engine::match_cache_build_count();
    assert!(
        match_builds <= GateFamily::ALL.len(),
        "built {match_builds} match caches for {} families",
        GateFamily::ALL.len()
    );

    // Rewrite library: time the cold build and a warm hit.
    let t_build = Instant::now();
    let rewrite_lib = engine::rewrite_library();
    let rewrite_build = t_build.elapsed();
    let t_hit = Instant::now();
    let again = engine::rewrite_library();
    let rewrite_hit = t_hit.elapsed();
    assert!(std::ptr::eq(rewrite_lib, again), "hits share one instance");
    println!(
        "  rewrite library: {} NPN classes over {} arena ANDs, build {rewrite_build:?}, hit {rewrite_hit:?}",
        rewrite_lib.class_count(),
        rewrite_lib.and_count(),
    );
    assert!(
        engine::rewrite_library_build_count() <= 1,
        "the rewrite library must build at most once"
    );

    // Flow stage timing: run the configured flow on an XOR-rich sample
    // circuit and report per-pass deltas and wall-clock. With --choices
    // (or a flow that already has a dch step) the choice network's
    // per-class/ring statistics are reported too.
    let flow = args.flow_with_choices();
    let sample = bench_circuits::benchmark_by_name("C1355").expect("C1355");
    let (_, sample_choices, flow_report) = flow.run_with_choices(&sample.aig);
    println!("  flow stages on {} ({}):", sample.name, sample.function);
    for line in flow_report.to_string().lines() {
        println!("    {line}");
    }
    let choice_stats = sample_choices.as_ref().map(|choices| {
        let stats = choices.stats();
        assert!(choices.verify_acyclic(), "choice rings must be acyclic");
        println!(
            "  choice network on {}: {} snapshots -> {} arena ANDs, {} classes with choices, \
             {} ring members (max ring {}), {} merges ({} unlinked by the acyclicity guard)",
            sample.name,
            stats.snapshots,
            stats.arena_ands,
            stats.classes_with_choices,
            stats.choices,
            stats.max_ring,
            stats.merged,
            stats.guard_rejected,
        );
        stats
    });

    // Warm the library cache outside the timed region so both drivers
    // time pure pipeline work (and so the cache claim is checked exactly).
    let t_char = Instant::now();
    engine::libraries();
    let characterization_time = t_char.elapsed();
    let after_warm = engine::characterization_count();

    let t_serial = Instant::now();
    let serial = engine::run_table1_serial(&config, None).expect("built-in benchmarks map");
    let serial_time = t_serial.elapsed();

    let t_parallel = Instant::now();
    let parallel = engine::run_table1(&config).expect("built-in benchmarks map");
    let parallel_time = t_parallel.elapsed();

    assert_eq!(
        format!("{serial}"),
        format!("{parallel}"),
        "parallel table must be bit-identical to the serial reference"
    );
    assert_eq!(
        engine::characterization_count(),
        after_warm,
        "table runs must not re-characterize any library"
    );
    assert!(
        after_warm <= 3,
        "engine ran {after_warm} characterizations for 3 families"
    );
    assert_eq!(
        engine::match_cache_build_count(),
        match_builds,
        "table runs must not rebuild any NPN match cache"
    );

    println!("  characterization (3 families, once per process): {characterization_time:?}");
    println!("  serial circuit x family loop:                    {serial_time:?}");
    println!("  parallel engine driver:                          {parallel_time:?}");
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9);
    println!("  wall-clock speedup:                              {speedup:.2}x");
    println!("  tables bit-identical:                            yes");
    println!("  characterizations after full run:                {after_warm} (one per family)");
    println!("  match-cache builds after full run:               {match_builds} (one per family)");
    println!(
        "  rewrite-library builds after full run:           {} (at most one)",
        engine::rewrite_library_build_count()
    );
    if threads == 1 {
        println!("  note: single-core machine — speedup ~1x expected; rerun on a multi-core host for the >=2x target");
    }

    if let Some(path) = &args.json {
        let flow_passes: Vec<String> = flow_report
            .passes
            .iter()
            .map(|p| {
                format!(
                    "{{\"pass\": {}, \"accepted\": {}, \"ands_before\": {}, \"ands_after\": {}, \
                     \"depth_before\": {}, \"depth_after\": {}, \"seconds\": {}}}",
                    bench::qor::json_string(&p.name),
                    p.accepted,
                    p.before.ands,
                    p.after.ands,
                    p.before.depth,
                    p.after.depth,
                    bench::qor::json_seconds(p.elapsed),
                )
            })
            .collect();
        // The sample flow's profile counters: the flow's own cut-database
        // statistics (exact) plus its process-counter deltas.
        let counter_json: Vec<String> = flow_report
            .profile
            .pairs()
            .iter()
            .filter(|(name, _)| !name.starts_with("cuts_"))
            .map(|(name, value)| format!("\"{name}\": {value}"))
            .collect();
        let flow_profile = format!(
            "{{\"cuts_reused\": {}, \"cuts_computed\": {}, {}}}",
            flow_report.cuts_reused,
            flow_report.cuts_computed,
            counter_json.join(", "),
        );
        let mut extra = vec![
            ("serial_seconds", bench::qor::json_seconds(serial_time)),
            ("parallel_seconds", bench::qor::json_seconds(parallel_time)),
            (
                "rewrite_library_build_seconds",
                bench::qor::json_seconds(rewrite_build),
            ),
            ("flow_stages_c1355", format!("[{}]", flow_passes.join(", "))),
            ("flow_profile_c1355", flow_profile),
        ];
        if let Some(stats) = choice_stats {
            extra.push((
                "choice_stats_c1355",
                format!(
                    "{{\"snapshots\": {}, \"arena_ands\": {}, \"classes_with_choices\": {}, \
                     \"choices\": {}, \"max_ring\": {}, \"merged\": {}, \"guard_rejected\": {}}}",
                    stats.snapshots,
                    stats.arena_ands,
                    stats.classes_with_choices,
                    stats.choices,
                    stats.max_ring,
                    stats.merged,
                    stats.guard_rejected,
                ),
            ));
        }
        let doc =
            bench::qor::table1_json("engine_smoke", &parallel, &config, parallel_time, &extra);
        bench::qor::write_or_exit(path, &doc);
    }
}
