//! Engine smoke measurement: verifies the two load-bearing claims of the
//! experiment engine on the machine at hand —
//!
//! 1. **cache**: a quick Table-1 subset characterizes each gate family
//!    exactly once, however many pipeline runs it fans out;
//! 2. **speedup**: the parallel circuit × family driver beats the serial
//!    reference loop wall-clock (on a multi-core machine; on one core the
//!    two are equivalent by construction), with bit-identical output.
//!
//! ```text
//! cargo run --release -p bench --bin engine_smoke
//! cargo run --release -p bench --bin engine_smoke -- --patterns 16384
//! ```

use ambipolar::engine;
use bench::BenchArgs;
use std::time::Instant;

fn main() {
    let config = BenchArgs::parse().table1_config();
    let threads = rayon::current_num_threads();
    println!(
        "engine smoke: quick Table 1, {} patterns/circuit, {} worker thread(s)",
        config.pipeline.patterns, threads
    );

    // Warm the library cache outside the timed region so both drivers
    // time pure pipeline work (and so the cache claim is checked exactly).
    let t_char = Instant::now();
    engine::libraries();
    let characterization_time = t_char.elapsed();
    let after_warm = engine::characterization_count();

    let t_serial = Instant::now();
    let serial = engine::run_table1_serial(&config, None);
    let serial_time = t_serial.elapsed();

    let t_parallel = Instant::now();
    let parallel = engine::run_table1(&config);
    let parallel_time = t_parallel.elapsed();

    assert_eq!(
        format!("{serial}"),
        format!("{parallel}"),
        "parallel table must be bit-identical to the serial reference"
    );
    assert_eq!(
        engine::characterization_count(),
        after_warm,
        "table runs must not re-characterize any library"
    );
    assert!(
        after_warm <= 3,
        "engine ran {after_warm} characterizations for 3 families"
    );

    println!("  characterization (3 families, once per process): {characterization_time:?}");
    println!("  serial circuit x family loop:                    {serial_time:?}");
    println!("  parallel engine driver:                          {parallel_time:?}");
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9);
    println!("  wall-clock speedup:                              {speedup:.2}x");
    println!("  tables bit-identical:                            yes");
    println!("  characterizations after full run:                {after_warm} (one per family)");
    if threads == 1 {
        println!("  note: single-core machine — speedup ~1x expected; rerun on a multi-core host for the >=2x target");
    }
}
