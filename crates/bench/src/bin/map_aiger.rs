//! Runs an external AIGER circuit (ASCII `aag` or binary `aig`, sniffed
//! from the header) through the full pipeline — the bridge for evaluating
//! the *original* ISCAS'85/MCNC netlists (export them from ABC with
//! `&write_aiger -s` or `write_aiger`) instead of this repository's
//! synthetic stand-ins. With `--verify sat` every mapped netlist is
//! SAT-proven equivalent to the synthesized AIG before being reported.
//!
//! ```text
//! cargo run --release -p bench --bin map_aiger -- path/to/circuit.aag [--patterns N] [--seed S] [--objective delay|area|energy] [--cut-k N] [--verify off|sim|sat]
//! ```

use ambipolar::engine;
use ambipolar::pipeline::evaluate_circuit_with_choices;
use bench::BenchArgs;
use gate_lib::GateFamily;

fn main() {
    let args = BenchArgs::parse();
    args.reject_json("map_aiger");
    let Some(path) = args.positional.first() else {
        eprintln!(
            "usage: map_aiger <circuit.aag|circuit.aig> [--patterns N] [--seed S] \
             [--flow SCRIPT] [--objective delay|area|energy] [--cut-k N] \
             [--verify off|sim|sat] [--threads N]"
        );
        std::process::exit(2);
    };
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let aig = aig::from_aiger_auto(&bytes).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    });
    println!(
        "{path}: {} inputs, {} outputs, {} AND nodes",
        aig.input_count(),
        aig.output_count(),
        aig.and_count()
    );
    let config = args.pipeline_config();
    let flow = args.flow_with_choices();
    let (synthesized, choices, report) = args.with_thread_pool(|| flow.run_with_choices(&aig));
    println!(
        "after flow \"{}\": {} AND nodes, depth {}",
        flow.script(),
        synthesized.and_count(),
        synthesized.depth()
    );
    print!("{report}");
    if let Some(choices) = &choices {
        let stats = choices.stats();
        println!(
            "choices: {} snapshots -> {} classes with choices, {} ring members (max ring {})",
            stats.snapshots, stats.classes_with_choices, stats.choices, stats.max_ring
        );
    }
    println!(
        "mapping objective: {}, cut width: {}, verification: {}, choices: {}",
        config.map.objective,
        config.map.cut_k,
        config.verify,
        if config.choices { "on" } else { "off" }
    );
    println!(
        "\n{:<22} {:>7} {:>10} {:>10} {:>10} {:>12}",
        "library", "gates", "delay", "P_D", "P_T", "EDP (J·s)"
    );
    for family in GateFamily::ALL {
        let library = engine::library(family);
        let r = args
            .with_thread_pool(|| {
                evaluate_circuit_with_choices(&synthesized, choices.as_ref(), library, &config)
            })
            .unwrap_or_else(|e| {
                eprintln!("{path}: mapping onto {family} failed: {e}");
                std::process::exit(1);
            });
        println!(
            "{:<22} {:>7} {:>10} {:>10} {:>10} {:>12.2e}",
            family.label(),
            r.gates,
            format!("{}", r.delay),
            format!("{}", r.power.dynamic),
            format!("{}", r.total_power()),
            r.edp().value(),
        );
    }
}
