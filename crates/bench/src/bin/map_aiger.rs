//! Runs an external AIGER ASCII (`aag`) circuit through the full
//! pipeline — the bridge for evaluating the *original* ISCAS'85/MCNC
//! netlists (export them from ABC with `&write_aiger -s` or `write_aiger`)
//! instead of this repository's synthetic stand-ins.
//!
//! ```text
//! cargo run --release -p bench --bin map_aiger -- path/to/circuit.aag [--patterns N] [--seed S] [--objective delay|area|energy] [--cut-k N]
//! ```

use ambipolar::engine;
use ambipolar::pipeline::evaluate_circuit;
use bench::BenchArgs;
use gate_lib::GateFamily;

fn main() {
    let args = BenchArgs::parse();
    let Some(path) = args.positional.first() else {
        eprintln!(
            "usage: map_aiger <circuit.aag> [--patterns N] [--seed S] \
             [--objective delay|area|energy] [--cut-k N]"
        );
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let aig = aig::from_aiger_ascii(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    });
    println!(
        "{path}: {} inputs, {} outputs, {} AND nodes",
        aig.input_count(),
        aig.output_count(),
        aig.and_count()
    );
    let synthesized = aig::synthesize(&aig);
    println!(
        "after synthesis: {} AND nodes, depth {}",
        synthesized.and_count(),
        synthesized.depth()
    );
    let config = args.pipeline_config();
    println!(
        "mapping objective: {}, cut width: {}",
        config.map.objective, config.map.cut_k
    );
    println!(
        "\n{:<22} {:>7} {:>10} {:>10} {:>10} {:>12}",
        "library", "gates", "delay", "P_D", "P_T", "EDP (J·s)"
    );
    for family in GateFamily::ALL {
        let library = engine::library(family);
        let r = evaluate_circuit(&synthesized, library, &config).unwrap_or_else(|e| {
            eprintln!("{path}: mapping onto {family} failed: {e}");
            std::process::exit(1);
        });
        println!(
            "{:<22} {:>7} {:>10} {:>10} {:>10} {:>12.2e}",
            family.label(),
            r.gates,
            format!("{}", r.delay),
            format!("{}", r.power.dynamic),
            format!("{}", r.total_power()),
            r.edp().value(),
        );
    }
}
