//! Ablation A2: **pattern classification vs exhaustive simulation**.
//! Characterizes the generalized library both ways, confirming identical
//! leakage values while counting how many circuit simulations each
//! approach needs (the efficiency claim of §3.2).

use bench::BenchArgs;
use charlib::characterize::characterize_gate_exhaustive;
use charlib::characterize_library;
use gate_lib::GateFamily;
use std::time::Instant;

fn main() {
    BenchArgs::parse_no_tuning("ablation_patterns");
    let family = GateFamily::CntfetGeneralized;
    let tech = family.tech();

    // Deliberately a *cold* characterization, not engine::library(): the
    // classified-vs-exhaustive wall-clock comparison below is the artifact
    // being measured, so it must not hit the process cache.
    let t0 = Instant::now();
    let lib = characterize_library(family);
    let classified_time = t0.elapsed();
    let total_vectors: usize = lib.gates.iter().map(|g| 1usize << g.gate.n_inputs).sum();

    let t1 = Instant::now();
    let mut max_rel_err = 0.0f64;
    for g in &lib.gates {
        let exhaustive = characterize_gate_exhaustive(&g.gate, &tech);
        for (a, b) in g.ioff_by_vector.iter().zip(exhaustive.iter()) {
            max_rel_err = max_rel_err.max((a / b - 1.0).abs());
        }
    }
    let exhaustive_time = t1.elapsed();

    println!("Pattern classification vs exhaustive characterization ({family}):");
    println!(
        "  classified: {} circuit simulations for {} (gate, vector) pairs in {classified_time:?}",
        lib.simulated_patterns, total_vectors
    );
    println!("  exhaustive: {total_vectors} circuit simulations in {exhaustive_time:?}");
    println!(
        "  simulation-count reduction: {:.1}x",
        total_vectors as f64 / lib.simulated_patterns as f64
    );
    println!(
        "  wall-clock speedup:         {:.1}x",
        exhaustive_time.as_secs_f64() / classified_time.as_secs_f64()
    );
    println!("  max relative leakage error: {max_rel_err:.2e} (methods agree exactly)");
}
