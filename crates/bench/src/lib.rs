//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary regenerates one artifact of the paper (see `DESIGN.md` §4):
//!
//! * `table1` — Table 1 (12 benchmarks × 3 libraries);
//! * `gate_library` — the §4 gate-level library comparison;
//! * `patterns` — the §3.2 I_off pattern census;
//! * `fig4_leakage` — the Fig. 4 stack-effect study;
//! * `ablation_psc` — sensitivity of P_T to the P_SC = 0.15·P_D conjecture;
//! * `ablation_patterns` — pattern classification vs exhaustive leakage;
//! * `expressive_power` — expressive-power accounting (§1/§2.2);
//! * `vdd_sweep` — supply-scaling extension study;
//! * `map_aiger` — external AIGER circuits through the pipeline;
//! * `engine_smoke` — engine cache + parallel-speedup smoke measurement.
//!
//! All binaries share one command-line surface, [`BenchArgs`].

use ambipolar::experiments::Table1Config;
use ambipolar::pipeline::PipelineConfig;
use techmap::{Objective, Verify};

pub mod qor;

/// The flag surface shared by every bench binary.
///
/// * `--patterns N` — random patterns per circuit (rounded up to a
///   multiple of 64 by the simulator);
/// * `--seed S` — simulation seed (decimal or `0x…` hex);
/// * `--paper` — the paper's full setting (640 K patterns), overridden by
///   an explicit `--patterns`;
/// * `--flow SCRIPT` — the pre-mapping synthesis flow (e.g.
///   `"b; rw; rf; b; rw -z; b"`; default: [`aig::DEFAULT_FLOW`]),
///   validated at parse time;
/// * `--objective delay|area|energy` — mapping objective (default:
///   delay, the paper's setting);
/// * `--cut-k N` — cut width for the mapper, `2..=6` (default: 6);
/// * `--verify off|sim|sat` — post-mapping verification (default: off;
///   `sat` proves every mapped netlist equivalent to its source AIG);
/// * `--choices` — choice-aware mapping: synthesis collects structural
///   choices (a `dch` step is appended when the flow has none) and each
///   circuit is mapped over them, keeping the choice netlist whenever it
///   uses no more gates;
/// * `--threads N` — worker-pool width for the parallel hot loops
///   (`N >= 1`; `1` forces the serial paths). Default: the rayon
///   environment (`RAYON_NUM_THREADS`, then the machine's parallelism);
/// * `--json PATH` — write the machine-readable QoR/runtime artifact
///   (supported by `table1`, `engine_smoke`, and `scale`);
/// * `--trace-out PATH` — enable span tracing and write a
///   Chrome-trace/Perfetto JSON at exit (supported by `table1`, `scale`,
///   and `loadgen`);
/// * positional arguments (e.g. the AIGER path for `map_aiger`, circuit
///   names for `table1`) are collected in order.
#[derive(Clone, Debug, Default)]
pub struct BenchArgs {
    /// `--patterns N`, if given.
    pub patterns: Option<usize>,
    /// `--seed S`, if given.
    pub seed: Option<u64>,
    /// `--flow SCRIPT`, if given (already validated to parse).
    pub flow: Option<String>,
    /// `--objective OBJ`, if given.
    pub objective: Option<Objective>,
    /// `--cut-k N`, if given.
    pub cut_k: Option<usize>,
    /// `--verify MODE`, if given.
    pub verify: Option<Verify>,
    /// Whether `--choices` was given.
    pub choices: bool,
    /// `--threads N`, if given (validated ≥ 1).
    pub threads: Option<usize>,
    /// `--emit-aiger DIR`, if given (only the `scale` bin consumes it).
    pub emit_aiger: Option<String>,
    /// `--json PATH`, if given.
    pub json: Option<String>,
    /// `--trace-out PATH`, if given.
    pub trace_out: Option<String>,
    /// Whether `--paper` was given.
    pub paper: bool,
    /// Positional (non-flag) arguments, in order.
    pub positional: Vec<String>,
}

impl BenchArgs {
    /// Parses the process command line, exiting with a usage message on a
    /// malformed or unknown flag.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: [--patterns N] [--seed S] [--paper] [--flow SCRIPT] \
                     [--objective delay|area|energy] [--cut-k N] \
                     [--verify off|sim|sat] [--choices] [--threads N] \
                     [--emit-aiger DIR] [--json PATH] [--trace-out PATH] \
                     [positional...]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Like [`BenchArgs::parse`] for binaries whose artifact has no
    /// tunable knobs: any flag or positional argument is rejected, so a
    /// user passing `--patterns`/`--seed`/`--paper`/`--objective`/
    /// `--cut-k` learns immediately that this binary would ignore them
    /// instead of getting a silently unmodified run.
    pub fn parse_no_tuning(bin: &str) {
        let args = Self::parse();
        if args.patterns.is_some()
            || args.seed.is_some()
            || args.flow.is_some()
            || args.objective.is_some()
            || args.cut_k.is_some()
            || args.verify.is_some()
            || args.choices
            || args.threads.is_some()
            || args.emit_aiger.is_some()
            || args.json.is_some()
            || args.trace_out.is_some()
            || args.paper
            || !args.positional.is_empty()
        {
            eprintln!("{bin} takes no arguments: its artifact has no tunable parameters");
            std::process::exit(2);
        }
    }

    /// The pattern count these flags select over a binary-specific
    /// default: explicit `--patterns` wins, then `--paper` (640 K), then
    /// the default.
    pub fn patterns_or(&self, default: usize) -> usize {
        self.patterns
            .unwrap_or(if self.paper { 640 * 1024 } else { default })
    }

    /// Rejects `--json` for binaries that emit no QoR artifact (only
    /// `table1`, `engine_smoke`, and `scale` do) — silently ignoring the
    /// flag in a scripted pipeline would look like lost data.
    pub fn reject_json(&self, bin: &str) {
        if self.json.is_some() {
            eprintln!(
                "{bin} emits no QoR artifact; --json is only supported by table1, \
                 engine_smoke, and scale"
            );
            std::process::exit(2);
        }
        self.reject_emit_aiger(bin);
    }

    /// Rejects `--emit-aiger` for binaries that generate no circuits
    /// (only `scale` does), for the same reason as [`Self::reject_json`].
    pub fn reject_emit_aiger(&self, bin: &str) {
        if self.emit_aiger.is_some() {
            eprintln!("{bin} generates no circuits; --emit-aiger is only supported by scale");
            std::process::exit(2);
        }
    }

    /// The parsed synthesis flow these flags select (the default flow
    /// when `--flow` was not given). Infallible: `--flow` scripts are
    /// validated during argument parsing.
    pub fn flow(&self) -> aig::Flow {
        match &self.flow {
            Some(script) => aig::Flow::parse(script).expect("--flow validated at parse time"),
            None => aig::Flow::default_flow(),
        }
    }

    /// [`BenchArgs::flow`] with the `--choices` upgrade applied: a
    /// trailing `dch` step is appended when `--choices` is on and the
    /// script has none — the same rule the Table-1 drivers use
    /// (`ambipolar::engine::parse_flow`). Binaries that drive the
    /// pipeline directly share this so they cannot drift from the
    /// drivers.
    pub fn flow_with_choices(&self) -> aig::Flow {
        if self.choices {
            self.flow().with_choices()
        } else {
            self.flow()
        }
    }

    /// Parses an explicit argument list (test hook).
    pub fn parse_from<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let mut out = Self::default();
        let mut iter = args.into_iter().map(Into::into);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--patterns" => {
                    let value = iter.next().ok_or("--patterns requires a value")?;
                    out.patterns = Some(
                        value
                            .parse()
                            .map_err(|e| format!("--patterns {value}: {e}"))?,
                    );
                }
                "--seed" => {
                    let value = iter.next().ok_or("--seed requires a value")?;
                    out.seed = Some(parse_u64(&value).map_err(|e| format!("--seed {value}: {e}"))?);
                }
                "--flow" => {
                    let value = iter.next().ok_or("--flow requires a script")?;
                    // Validate up front so a typo fails at the command
                    // line, not rows deep into a run.
                    aig::Flow::parse(&value).map_err(|e| format!("--flow: {e}"))?;
                    out.flow = Some(value);
                }
                "--json" => {
                    let value = iter.next().ok_or("--json requires a path")?;
                    out.json = Some(value);
                }
                "--trace-out" => {
                    let value = iter.next().ok_or("--trace-out requires a path")?;
                    out.trace_out = Some(value);
                }
                "--objective" => {
                    let value = iter.next().ok_or("--objective requires a value")?;
                    out.objective = Some(value.parse().map_err(|e| format!("--objective: {e}"))?);
                }
                "--cut-k" => {
                    let value = iter.next().ok_or("--cut-k requires a value")?;
                    let k: usize = value.parse().map_err(|e| format!("--cut-k {value}: {e}"))?;
                    if !(2..=6).contains(&k) {
                        return Err(format!("--cut-k {k}: cut width must be in 2..=6"));
                    }
                    out.cut_k = Some(k);
                }
                "--verify" => {
                    let value = iter.next().ok_or("--verify requires a value")?;
                    out.verify = Some(value.parse().map_err(|e| format!("--verify: {e}"))?);
                }
                "--emit-aiger" => {
                    let value = iter.next().ok_or("--emit-aiger requires a directory")?;
                    out.emit_aiger = Some(value);
                }
                "--threads" => {
                    let value = iter.next().ok_or("--threads requires a value")?;
                    let n: usize = value
                        .parse()
                        .map_err(|e| format!("--threads {value}: {e}"))?;
                    if n == 0 {
                        return Err("--threads 0: the pool needs at least one worker".into());
                    }
                    out.threads = Some(n);
                }
                "--paper" => out.paper = true,
                "--choices" => out.choices = true,
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag: {flag}"));
                }
                _ => out.positional.push(arg),
            }
        }
        Ok(out)
    }

    /// The pipeline configuration these flags select: defaults, scaled to
    /// the paper's 640 K patterns by `--paper`, with `--patterns`,
    /// `--seed`, `--objective`, and `--cut-k` overriding.
    pub fn pipeline_config(&self) -> PipelineConfig {
        let mut config = if self.paper {
            PipelineConfig::paper()
        } else {
            PipelineConfig::default()
        };
        if let Some(patterns) = self.patterns {
            config.patterns = patterns;
        }
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(flow) = &self.flow {
            config.flow = flow.clone();
        }
        if let Some(objective) = self.objective {
            config.map.objective = objective;
        }
        if let Some(cut_k) = self.cut_k {
            config.map.cut_k = cut_k;
        }
        if let Some(verify) = self.verify {
            config.verify = verify;
        }
        config.choices = self.choices;
        config
    }

    /// The Table-1 configuration these flags select.
    pub fn table1_config(&self) -> Table1Config {
        Table1Config {
            pipeline: self.pipeline_config(),
        }
    }

    /// Runs `work` under the worker pool `--threads` selects: a scoped
    /// rayon pool of exactly `N` threads when the flag was given, the
    /// process-default pool otherwise. Every bench binary wraps its body
    /// in this, so serial-vs-parallel comparisons (`--threads 1` vs the
    /// default) are controllable from any artifact without environment
    /// variables. Results are identical either way — the hot loops are
    /// bit-identical at any thread count — only the wall clock moves.
    pub fn with_thread_pool<R>(&self, work: impl FnOnce() -> R) -> R {
        match self.threads {
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("pool construction cannot fail for n >= 1")
                .install(work),
            None => work(),
        }
    }

    /// Runs `work` with span tracing enabled when `--trace-out PATH`
    /// was given, writing the Chrome-trace/Perfetto JSON to `PATH`
    /// afterwards (open in `chrome://tracing` or ui.perfetto.dev).
    /// Without the flag, tracing stays in whatever state the process
    /// already had and nothing is written.
    pub fn with_tracing<R>(&self, work: impl FnOnce() -> R) -> R {
        let Some(path) = &self.trace_out else {
            return work();
        };
        obs::set_enabled(true);
        let result = work();
        match obs::write_trace(path) {
            Ok(()) => eprintln!("trace written to {path}"),
            Err(e) => {
                eprintln!("cannot write trace {path}: {e}");
                std::process::exit(1);
            }
        }
        result
    }
}

fn parse_u64(value: &str) -> Result<u64, std::num::ParseIntError> {
    if let Some(hex) = value
        .strip_prefix("0x")
        .or_else(|| value.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
    } else {
        value.parse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_in_any_order() {
        let args = BenchArgs::parse_from([
            "--paper",
            "circuit.aag",
            "--patterns",
            "4096",
            "--seed",
            "0x2A",
            "--flow",
            "b; rw -z; rf",
            "--objective",
            "area",
            "--cut-k",
            "4",
            "--verify",
            "sat",
            "--choices",
            "--json",
            "out.json",
        ])
        .unwrap();
        assert!(args.paper);
        assert!(args.choices);
        assert_eq!(args.patterns, Some(4096));
        assert_eq!(args.seed, Some(42));
        assert_eq!(args.flow.as_deref(), Some("b; rw -z; rf"));
        assert_eq!(args.objective, Some(Objective::Area));
        assert_eq!(args.cut_k, Some(4));
        assert_eq!(args.verify, Some(Verify::Sat));
        assert_eq!(args.json.as_deref(), Some("out.json"));
        assert_eq!(args.positional, ["circuit.aag"]);
    }

    #[test]
    fn flow_reaches_the_pipeline_config_and_parses() {
        let config = BenchArgs::parse_from(["--flow", "b;rw;b"])
            .unwrap()
            .pipeline_config();
        assert_eq!(config.flow, "b;rw;b");
        let default = BenchArgs::parse_from(std::iter::empty::<String>())
            .unwrap()
            .pipeline_config();
        assert_eq!(default.flow, aig::DEFAULT_FLOW);
        // The convenience accessor hands back the parsed flow.
        let args = BenchArgs::parse_from(["--flow", "rw -z"]).unwrap();
        assert_eq!(args.flow().script(), "rw -z");
        assert!(BenchArgs::parse_from(std::iter::empty::<String>())
            .unwrap()
            .flow()
            .uses_rewrite());
    }

    #[test]
    fn explicit_patterns_override_paper_setting() {
        let args = BenchArgs::parse_from(["--paper", "--patterns", "128"]).unwrap();
        let config = args.pipeline_config();
        assert_eq!(config.patterns, 128);
        let paper_only = BenchArgs::parse_from(["--paper"])
            .unwrap()
            .pipeline_config();
        assert_eq!(paper_only.patterns, 640 * 1024);
    }

    #[test]
    fn default_config_matches_pipeline_default() {
        let config = BenchArgs::parse_from(std::iter::empty::<String>())
            .unwrap()
            .pipeline_config();
        let default = PipelineConfig::default();
        assert_eq!(config.patterns, default.patterns);
        assert_eq!(config.seed, default.seed);
        assert_eq!(config.map, default.map);
    }

    #[test]
    fn objective_and_cut_k_reach_the_map_config() {
        let config = BenchArgs::parse_from(["--objective", "energy", "--cut-k", "5"])
            .unwrap()
            .pipeline_config();
        assert_eq!(config.map.objective, Objective::Energy);
        assert_eq!(config.map.cut_k, 5);
        assert_eq!(config.verify, Verify::Off, "verification defaults off");
        let verified = BenchArgs::parse_from(["--verify", "sat"])
            .unwrap()
            .pipeline_config();
        assert_eq!(verified.verify, Verify::Sat);
        assert!(!verified.choices, "choices default off");
        let with_choices = BenchArgs::parse_from(["--choices"])
            .unwrap()
            .pipeline_config();
        assert!(with_choices.choices);
        // Untouched knobs keep their defaults.
        assert_eq!(config.map.max_cuts, techmap::MapConfig::DEFAULT_MAX_CUTS);
    }

    #[test]
    fn threads_flag_parses_and_scopes_a_pool() {
        let args = BenchArgs::parse_from(["--threads", "3"]).unwrap();
        assert_eq!(args.threads, Some(3));
        let seen = args.with_thread_pool(rayon::current_num_threads);
        assert_eq!(seen, 3, "work must run under a 3-thread pool");
        // Without the flag, the environment default applies.
        let plain = BenchArgs::parse_from(std::iter::empty::<String>()).unwrap();
        assert_eq!(plain.threads, None);
        assert!(plain.with_thread_pool(rayon::current_num_threads) >= 1);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(BenchArgs::parse_from(["--patterns"]).is_err());
        assert!(BenchArgs::parse_from(["--patterns", "many"]).is_err());
        assert!(BenchArgs::parse_from(["--frobnicate"]).is_err());
        assert!(BenchArgs::parse_from(["--seed", "0xZZ"]).is_err());
        assert!(BenchArgs::parse_from(["--objective", "speed"]).is_err());
        assert!(BenchArgs::parse_from(["--objective"]).is_err());
        assert!(BenchArgs::parse_from(["--cut-k", "7"]).is_err());
        assert!(BenchArgs::parse_from(["--cut-k", "1"]).is_err());
        assert!(BenchArgs::parse_from(["--cut-k", "six"]).is_err());
        assert!(BenchArgs::parse_from(["--verify"]).is_err());
        assert!(BenchArgs::parse_from(["--verify", "prove"]).is_err());
        assert!(BenchArgs::parse_from(["--flow"]).is_err());
        assert!(BenchArgs::parse_from(["--flow", "b; frobnicate"]).is_err());
        assert!(BenchArgs::parse_from(["--flow", ""]).is_err());
        assert!(BenchArgs::parse_from(["--json"]).is_err());
        assert!(BenchArgs::parse_from(["--trace-out"]).is_err());
        assert!(BenchArgs::parse_from(["--threads"]).is_err());
        assert!(BenchArgs::parse_from(["--threads", "0"]).is_err());
        assert!(BenchArgs::parse_from(["--threads", "all"]).is_err());
    }
}
