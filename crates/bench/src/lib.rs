//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary regenerates one artifact of the paper (see `DESIGN.md` §4):
//!
//! * `table1` — Table 1 (12 benchmarks × 3 libraries);
//! * `gate_library` — the §4 gate-level library comparison;
//! * `patterns` — the §3.2 I_off pattern census;
//! * `fig4_leakage` — the Fig. 4 stack-effect study;
//! * `ablation_psc` — sensitivity of P_T to the P_SC = 0.15·P_D conjecture;
//! * `ablation_patterns` — pattern classification vs exhaustive leakage.

/// Returns true when the given flag is present on the command line.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Reads `--patterns N` from the command line, if present.
pub fn patterns_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--patterns")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
