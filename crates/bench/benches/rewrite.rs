//! Criterion bench: the DAG-aware rewriting engine — cold library build,
//! the `rw` / `rw -z` passes alone, and full flow scripts — on a Table-1
//! benchmark. Run once in `--test` mode by CI to keep the pass callable;
//! run normally to track the perf trajectory.

use aig::rewrite::{rewrite_with, RewriteConfig, RewriteLibrary};
use aig::Flow;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_rewrite(c: &mut Criterion) {
    let aig = bench_circuits::benchmark_by_name("C1355")
        .expect("C1355 exists")
        .aig;
    // Warm the shared library so the pass benches measure rewriting, not
    // the one-off build (measured separately below).
    aig::rewrite::library();

    let mut group = c.benchmark_group("rewrite_library");
    group.sample_size(10);
    group.bench_function("cold_build", |b| b.iter(RewriteLibrary::new));
    group.finish();

    let mut group = c.benchmark_group("rewrite_c1355");
    group.sample_size(10);
    group.bench_function("rw", |b| {
        b.iter(|| rewrite_with(&aig, &RewriteConfig::default()))
    });
    group.bench_function("rw_z", |b| {
        b.iter(|| {
            rewrite_with(
                &aig,
                &RewriteConfig {
                    zero_gain: true,
                    ..RewriteConfig::default()
                },
            )
        })
    });
    group.finish();

    let mut group = c.benchmark_group("flow_c1355");
    group.sample_size(10);
    let default_flow = Flow::default_flow();
    group.bench_function("default_flow", |b| b.iter(|| default_flow.run(&aig)));
    let legacy = Flow::parse("b; rf; b; rf; b").expect("legacy script parses");
    group.bench_function("legacy_balance_refactor", |b| b.iter(|| legacy.run(&aig)));
    group.finish();
}

criterion_group!(benches, bench_rewrite);
criterion_main!(benches);
