//! Criterion bench: the industrial-scale hot loops in isolation — 4/6-cut
//! enumeration and `dch` sweeper signature propagation on a 10k-AND
//! seeded random AIG, serial (one worker) vs parallel (the default
//! pool). Run once in `--test` mode by CI to keep the harness callable;
//! run normally to track the nodes/sec trajectory alongside the `scale`
//! bin's end-to-end numbers.

use aig::cuts::{enumerate_cuts, CutConfig};
use aig::Flow;
use criterion::{criterion_group, criterion_main, Criterion};

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction cannot fail for n >= 1")
}

fn bench_scale(c: &mut Criterion) {
    let aig = bench_circuits::scale::random_kregular(10_000, 0x5CA1_AB1E);
    let serial = pool(1);
    let parallel = pool(rayon::current_num_threads());
    // Warm the shared rewrite library outside the timed region.
    aig::rewrite::library();

    let mut group = c.benchmark_group("cuts_rand10k");
    group.sample_size(10);
    for (label, k) in [("k4", 4usize), ("k6", 6usize)] {
        let config = CutConfig {
            k,
            ..CutConfig::default()
        };
        group.bench_function(format!("{label}_serial"), |b| {
            b.iter(|| serial.install(|| enumerate_cuts(&aig, config)))
        });
        group.bench_function(format!("{label}_parallel"), |b| {
            b.iter(|| parallel.install(|| enumerate_cuts(&aig, config)))
        });
    }
    group.finish();

    // `dch` imports the flow snapshots through the SAT sweeper, so this
    // times signature propagation + frontier refinement end to end.
    let dch = Flow::parse("dch").expect("dch parses");
    let mut group = c.benchmark_group("sweeper_rand10k");
    group.sample_size(10);
    group.bench_function("dch_serial", |b| {
        b.iter(|| serial.install(|| dch.run(&aig)))
    });
    group.bench_function("dch_parallel", |b| {
        b.iter(|| parallel.install(|| dch.run(&aig)))
    });
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
