//! Criterion bench: technology mapping (cut enumeration + NPN matching +
//! objective-driven covering) of a Table-1 benchmark onto each of the
//! three libraries, through the engine's shared NPN match caches.

use ambipolar::engine;
use criterion::{criterion_group, criterion_main, Criterion};
use gate_lib::GateFamily;
use techmap::{map_aig_with_cache, MapConfig, Objective};

fn bench_mapping(c: &mut Criterion) {
    let aig = bench_circuits::benchmark_by_name("C1355")
        .expect("C1355 exists")
        .aig;
    let synthesized = aig::synthesize(&aig);
    let config = MapConfig::default();
    let mut group = c.benchmark_group("techmap_c1355");
    group.sample_size(10);
    for family in GateFamily::ALL {
        let lib = engine::library(family);
        let cache = engine::match_cache(family);
        group.bench_function(family.label(), |b| {
            b.iter(|| {
                map_aig_with_cache(&synthesized, lib, cache, &config).expect("mapping succeeds")
            })
        });
    }
    group.finish();

    // The three objectives on one library: same stages, different
    // selection cost.
    let lib = engine::library(GateFamily::CntfetGeneralized);
    let cache = engine::match_cache(GateFamily::CntfetGeneralized);
    let mut group = c.benchmark_group("techmap_objectives_c1355");
    group.sample_size(10);
    for objective in Objective::ALL {
        let config = MapConfig::for_objective(objective);
        group.bench_function(objective.label(), |b| {
            b.iter(|| {
                map_aig_with_cache(&synthesized, lib, cache, &config).expect("mapping succeeds")
            })
        });
    }
    group.finish();

    // Cold-cache mapping (builds a private NPN class table per call) vs
    // the shared-cache path above: the cost the engine cache amortizes.
    let mut group = c.benchmark_group("techmap_cold_cache");
    group.sample_size(10);
    group.bench_function("generalized_private_cache", |b| {
        b.iter(|| techmap::map_aig(&synthesized, lib, &config).expect("mapping succeeds"))
    });
    group.finish();

    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    group.bench_function("resyn_c1355", |b| b.iter(|| aig::synthesize(&aig)));
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
