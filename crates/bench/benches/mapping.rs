//! Criterion bench: technology mapping (cut enumeration + NPN matching +
//! covering) of a Table-1 benchmark onto each of the three libraries.

use ambipolar::engine;
use criterion::{criterion_group, criterion_main, Criterion};
use gate_lib::GateFamily;

fn bench_mapping(c: &mut Criterion) {
    let aig = bench_circuits::benchmark_by_name("C1355")
        .expect("C1355 exists")
        .aig;
    let synthesized = aig::synthesize(&aig);
    let mut group = c.benchmark_group("techmap_c1355");
    group.sample_size(10);
    for family in GateFamily::ALL {
        let lib = engine::library(family);
        group.bench_function(family.label(), |b| {
            b.iter(|| techmap::map_aig(&synthesized, lib))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    group.bench_function("resyn_c1355", |b| b.iter(|| aig::synthesize(&aig)));
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
