//! Criterion bench: the full per-circuit Table-1 pipeline (synthesize →
//! map → time → power-estimate) and its power-simulation inner loop.

use ambipolar::pipeline::{evaluate_circuit, PipelineConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use gate_lib::GateFamily;

fn bench_pipeline(c: &mut Criterion) {
    let aig = bench_circuits::benchmark_by_name("C1908")
        .expect("C1908 exists")
        .aig;
    let synthesized = aig::synthesize(&aig);
    let config = PipelineConfig {
        patterns: 1 << 13,
        ..PipelineConfig::default()
    };
    let mut group = c.benchmark_group("pipeline_c1908");
    group.sample_size(10);
    for family in GateFamily::ALL {
        let lib = charlib::characterize_library(family);
        group.bench_function(family.label(), |b| {
            b.iter(|| evaluate_circuit(&synthesized, &lib, &config))
        });
    }
    group.finish();

    // The random-pattern power-simulation loop in isolation.
    let lib = charlib::characterize_library(GateFamily::CntfetGeneralized);
    let mapped = techmap::map_aig(&synthesized, &lib);
    let mut group = c.benchmark_group("power_simulation");
    group.sample_size(10);
    group.bench_function("c1908_8k_patterns", |b| {
        b.iter(|| power_est::simulate_activity(&mapped, &lib, 1 << 13, 5))
    });
    group.finish();

    // Library characterization (the Fig. 5 flow).
    let mut group = c.benchmark_group("characterization");
    group.sample_size(10);
    group.bench_function("generalized_46_cells", |b| {
        b.iter(|| charlib::characterize_library(GateFamily::CntfetGeneralized))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
