//! Criterion bench: the full per-circuit Table-1 pipeline (synthesize →
//! map → time → power-estimate), its power-simulation inner loop, and the
//! engine's parallel Table-1 driver against the serial reference.

use ambipolar::engine;
use ambipolar::experiments::Table1Config;
use ambipolar::pipeline::{evaluate_circuit, PipelineConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use gate_lib::GateFamily;

fn bench_pipeline(c: &mut Criterion) {
    let aig = bench_circuits::benchmark_by_name("C1908")
        .expect("C1908 exists")
        .aig;
    let synthesized = aig::synthesize(&aig);
    let config = PipelineConfig {
        patterns: 1 << 13,
        ..PipelineConfig::default()
    };
    let mut group = c.benchmark_group("pipeline_c1908");
    group.sample_size(10);
    for family in GateFamily::ALL {
        let lib = engine::library(family);
        group.bench_function(family.label(), |b| {
            b.iter(|| evaluate_circuit(&synthesized, lib, &config).expect("mapping succeeds"))
        });
    }
    group.finish();

    // The random-pattern power-simulation loop in isolation: the parallel
    // chunked path and its bit-identical serial reference.
    let lib = engine::library(GateFamily::CntfetGeneralized);
    let mapped = techmap::map_aig_with_cache(
        &synthesized,
        lib,
        engine::match_cache(GateFamily::CntfetGeneralized),
        &techmap::MapConfig::default(),
    )
    .expect("mapping succeeds");
    let mut group = c.benchmark_group("power_simulation");
    group.sample_size(10);
    group.bench_function("c1908_8k_patterns", |b| {
        b.iter(|| power_est::simulate_activity(&mapped, lib, 1 << 13, 5))
    });
    group.bench_function("c1908_8k_patterns_serial", |b| {
        b.iter(|| power_est::simulate_activity_serial(&mapped, lib, 1 << 13, 5))
    });
    group.finish();

    // Library characterization (the Fig. 5 flow), deliberately cold — this
    // is the cost the engine cache amortizes to once per process.
    let mut group = c.benchmark_group("characterization");
    group.sample_size(10);
    group.bench_function("generalized_46_cells_cold", |b| {
        b.iter(|| charlib::characterize_library(GateFamily::CntfetGeneralized))
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    // A 2-row Table-1 subset through the parallel engine driver vs the
    // serial reference loop (libraries pre-cached for both).
    let config = Table1Config {
        pipeline: PipelineConfig {
            patterns: 1 << 12,
            ..PipelineConfig::default()
        },
    };
    let names = Some(&["C1908", "C1355"][..]);
    engine::libraries();
    let mut group = c.benchmark_group("engine_table1_2rows");
    group.sample_size(10);
    group.bench_function("parallel", |b| {
        b.iter(|| engine::run_table1_subset(&config, names).expect("mapping succeeds"))
    });
    group.bench_function("serial_reference", |b| {
        b.iter(|| engine::run_table1_serial(&config, names).expect("mapping succeeds"))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_engine);
criterion_main!(benches);
