//! Criterion bench: the spice-lite DC solver on the leakage circuits the
//! characterization flow runs (the inner loop of the Fig. 5 "HSPICE" box).

use criterion::{criterion_group, criterion_main, Criterion};
use device::{Polarity, TechParams};
use spice_lite::{Circuit, GROUND};

fn nor3_leakage_circuit(tech: &TechParams, inputs: [bool; 3]) -> Circuit {
    let nfet = tech.model(Polarity::N);
    let pfet = tech.model(Polarity::P);
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add_vsource("VDD", vdd, GROUND, tech.vdd);
    let mut gates = Vec::new();
    for (i, &bit) in inputs.iter().enumerate() {
        let g = ckt.node(format!("in{i}"));
        ckt.add_vsource(
            format!("VIN{i}"),
            g,
            GROUND,
            if bit { tech.vdd } else { 0.0 },
        );
        gates.push(g);
    }
    let out = ckt.node("out");
    // Pull-up: three series pFETs; pull-down: three parallel nFETs.
    let m1 = ckt.node("m1");
    let m2 = ckt.node("m2");
    ckt.add_transistor("MP0", pfet, m1, gates[0], vdd);
    ckt.add_transistor("MP1", pfet, m2, gates[1], m1);
    ckt.add_transistor("MP2", pfet, out, gates[2], m2);
    for (i, &g) in gates.iter().enumerate() {
        ckt.add_transistor(format!("MN{i}"), nfet, out, g, GROUND);
    }
    ckt
}

fn bench_solver(c: &mut Criterion) {
    let tech = TechParams::cmos_32nm();
    let mut group = c.benchmark_group("spice_lite_dc");
    group.sample_size(30);
    group.bench_function("nor3_parallel_leak", |b| {
        let ckt = nor3_leakage_circuit(&tech, [false, false, false]);
        b.iter(|| ckt.solve_dc().expect("converges"))
    });
    group.bench_function("nor3_series_leak", |b| {
        let ckt = nor3_leakage_circuit(&tech, [true, true, true]);
        b.iter(|| ckt.solve_dc().expect("converges"))
    });
    group.bench_function("pattern_simulator_cold", |b| {
        use charlib::{LeakageSimulator, OffPattern};
        let d = OffPattern::Device;
        let pattern = OffPattern::series([d.clone(), OffPattern::parallel([d.clone(), d])]);
        b.iter(|| {
            let mut sim = LeakageSimulator::new(tech.clone());
            sim.ioff(&pattern)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
