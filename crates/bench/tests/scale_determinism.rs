//! The scale-harness determinism contract: every parallelized hot loop —
//! synth flow, `dch` sweep, technology mapping — produces the bit-exact
//! network of the serial walk at any worker count, and the synthetic
//! workload generators always emit well-formed (acyclic, strashed,
//! AIGER-round-trippable) circuits.

use aig::graph::Node;
use aig::{Aig, Flow, Lit};
use ambipolar::engine;
use bench_circuits::scale::{random_kregular, workloads};
use gate_lib::GateFamily;
use proptest::prelude::*;
use techmap::MapConfig;

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction cannot fail for n >= 1")
}

/// Runs `work` under 1, 2, and 8 worker threads and asserts all three
/// results compare equal under `same`.
fn thread_invariant<R>(work: impl Fn() -> R, same: impl Fn(&R, &R) -> bool, what: &str) {
    let reference = pool(1).install(&work);
    for threads in [2usize, 8] {
        let result = pool(threads).install(&work);
        assert!(
            same(&reference, &result),
            "{what}: {threads}-thread run diverged from the serial reference"
        );
    }
}

#[test]
fn synth_flow_is_bit_identical_across_thread_counts() {
    let flow = Flow::parse("b;rw;rf;b;rw -z;b").expect("synth flow parses");
    for (spec, aig) in workloads(2_000) {
        thread_invariant(
            || flow.run(&aig),
            Aig::same_structure,
            &format!("synth on {}", spec.family),
        );
    }
}

#[test]
fn dch_sweep_is_bit_identical_across_thread_counts() {
    let dch = Flow::parse("dch").expect("dch parses");
    for (spec, aig) in workloads(2_000) {
        thread_invariant(
            || dch.run(&aig),
            Aig::same_structure,
            &format!("dch on {}", spec.family),
        );
    }
}

#[test]
fn mapping_is_identical_across_thread_counts() {
    let library = engine::library(GateFamily::ALL[0]);
    let cache = engine::match_cache(GateFamily::ALL[0]);
    let config = MapConfig::default();
    for (spec, aig) in workloads(2_000) {
        let synthesized = Flow::default_flow().run(&aig);
        thread_invariant(
            || {
                techmap::map_aig_with_cache(&synthesized, library, cache, &config)
                    .expect("the workloads map")
            },
            |a, b| a.gate_count() == b.gate_count() && a.net_count() == b.net_count(),
            &format!("mapping on {}", spec.family),
        );
    }
}

/// Structural well-formedness of a generated AIG: every AND fanin points
/// strictly backwards (acyclic by construction) and no two ANDs share an
/// ordered fanin pair (strashed).
fn assert_well_formed(aig: &Aig, what: &str) {
    let mut seen: std::collections::HashSet<(Lit, Lit)> = std::collections::HashSet::new();
    for (idx, node) in aig.nodes().enumerate() {
        if let Node::And(a, b) = node {
            assert!(
                (a.node() as usize) < idx && (b.node() as usize) < idx,
                "{what}: node {idx} has a forward fanin (cycle)"
            );
            assert!(
                seen.insert((a, b)),
                "{what}: node {idx} duplicates an AND (strash miss)"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_workloads_are_acyclic_and_strashed(
        target in 50usize..800,
        seed in any::<u64>(),
    ) {
        let aig = random_kregular(target, seed);
        prop_assert!(aig.and_count() >= target);
        assert_well_formed(&aig, "random_kregular");
    }

    #[test]
    fn random_workloads_round_trip_binary_aiger(
        target in 50usize..800,
        seed in any::<u64>(),
    ) {
        let aig = random_kregular(target, seed);
        let bytes = aig::to_aiger_binary(&aig);
        let back = aig::from_aiger_auto(&bytes).expect("emitted AIGER parses");
        prop_assert!(back.same_structure(&aig), "binary AIGER round trip changed the graph");
    }
}

#[test]
fn all_generator_families_are_well_formed_and_round_trip() {
    for (spec, aig) in workloads(2_000) {
        assert_well_formed(&aig, spec.family);
        let back = aig::from_aiger_auto(&aig::to_aiger_binary(&aig)).expect("AIGER parses");
        assert!(
            back.same_structure(&aig),
            "{}: binary AIGER round trip changed the graph",
            spec.family
        );
    }
}
