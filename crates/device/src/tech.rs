//! Technology parameter sets for the two technologies the paper compares.
//!
//! Every constant below is a *unit-level* calibration target taken from the
//! paper's §4 assumptions or the public sources it cites; nothing downstream
//! (gate characterization, mapping, Table 1) is tuned.
//!
//! | quantity | CNTFET 32 nm | CMOS 32 nm bulk | provenance |
//! |---|---|---|---|
//! | V_DD | 0.9 V | 0.9 V | paper §4 |
//! | f | 1 GHz | 1 GHz | paper §4 |
//! | inverter C_in | 36 aF | 52 aF | paper §4 ("36aF … 52aF, 31% difference") |
//! | C_gate = C_drain = C_source | 18 aF | 26 aF | paper §4 assumes identical unit caps |
//! | unit I_off | 0.2 nA | 2 nA | paper §4: CNTFET static ≈ 10× below CMOS; CMOS scale from ITRS'07 32 nm bulk |
//! | I_g / I_off | < 1 % | ≈ 10 % | paper §4 ("about 10% of P_S for CMOS … less than 1% for CNTFET") |
//! | sub-threshold swing | 70 mV/dec | 100 mV/dec | Stanford CNFET model vs ITRS 32 nm bulk |
//! | DIBL | 50 mV/V | 150 mV/V | ballistic CNT electrostatics vs 32 nm bulk |
//! | unit R_on | 9 kΩ | 31 kΩ | Deng'07: intrinsic CNTFET delay ≈ 5× below MOSFET at matched load |

use crate::model::{CompactModel, Polarity};
use crate::units::{Capacitance, Voltage};

/// Which semiconductor technology a parameter set describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TechKind {
    /// MOSFET-like carbon-nanotube FETs (32 nm gate width, 3 CNTs/channel).
    Cntfet,
    /// 32 nm bulk CMOS with metal gate and strained channel (ITRS MASTAR).
    Cmos,
}

impl std::fmt::Display for TechKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TechKind::Cntfet => f.write_str("CNTFET"),
            TechKind::Cmos => f.write_str("CMOS"),
        }
    }
}

/// A complete technology operating point.
///
/// All fields are public so studies can perturb them; the provided
/// constructors are the calibrated 32 nm points used throughout the
/// reproduction.
#[derive(Clone, Debug, PartialEq)]
pub struct TechParams {
    /// Technology family.
    pub kind: TechKind,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Threshold voltage magnitude (same for n and p), volts.
    pub vth: f64,
    /// Sub-threshold slope factor `n`.
    pub n_factor: f64,
    /// DIBL coefficient, V/V.
    pub dibl: f64,
    /// Calibrated unit off-current at V_GS = 0, V_DS = V_DD, amperes.
    pub ioff_unit: f64,
    /// Unit gate-tunnelling current at full gate bias, amperes.
    pub ig_unit: f64,
    /// Gate-tunnelling exponential slope, volts per e-fold.
    pub ig_slope: f64,
    /// Unit (front) gate capacitance per device, farads.
    pub c_gate: f64,
    /// Polarity-gate (back gate) capacitance per ambipolar device, farads.
    /// The back gate couples through the thick buried insulator, so it is
    /// several times smaller than the front-gate capacitance; irrelevant
    /// for CMOS (no polarity gate).
    pub c_polarity_gate: f64,
    /// Unit drain capacitance per device, farads.
    pub c_drain: f64,
    /// Unit source capacitance per device, farads.
    pub c_source: f64,
    /// Unit on-resistance per device, ohms.
    pub r_on: f64,
    /// Layout area per device, square metres (used for relative area only).
    pub area_per_device: f64,
}

impl TechParams {
    /// The calibrated 32 nm MOSFET-like CNTFET technology point
    /// (32 nm gate width, 3 CNTs per channel, high-κ gate stack, thick
    /// back-gate insulator isolating drain/source from the substrate).
    pub fn cntfet_32nm() -> Self {
        Self {
            kind: TechKind::Cntfet,
            vdd: 0.9,
            vth: 0.25,
            n_factor: 1.176, // 70 mV/dec
            dibl: 0.05,
            ioff_unit: 0.2e-9,
            // High-κ dielectric: gate leakage < 1 % of sub-threshold.
            ig_unit: 1.0e-12,
            ig_slope: 0.12,
            // Inverter C_in = 2 × 18 aF = 36 aF (paper §4).
            c_gate: 18e-18,
            // Thick back insulator: ≈ a quarter of the front-gate cap.
            c_polarity_gate: 4.5e-18,
            c_drain: 18e-18,
            c_source: 18e-18,
            r_on: 9.0e3,
            area_per_device: 0.06e-12, // 0.06 µm²: 3 CNT pitches × contacted gate pitch
        }
    }

    /// The calibrated ITRS 32 nm bulk CMOS technology point (metal gate,
    /// strained channel — the MASTAR built-in model the paper uses).
    pub fn cmos_32nm() -> Self {
        Self {
            kind: TechKind::Cmos,
            vdd: 0.9,
            vth: 0.29,
            n_factor: 1.68, // 100 mV/dec
            dibl: 0.15,
            ioff_unit: 2.0e-9,
            // SiON/high-κ transition node: I_g ≈ 10 % of I_off.
            ig_unit: 0.11e-9,
            ig_slope: 0.12,
            // Inverter C_in = 2 × 26 aF = 52 aF (paper §4).
            c_gate: 26e-18,
            c_polarity_gate: 26e-18, // unused: CMOS has no polarity gate
            c_drain: 26e-18,
            c_source: 26e-18,
            r_on: 31.0e3,
            area_per_device: 0.12e-12, // 0.12 µm² per contacted device
        }
    }

    /// Builds the unipolar compact model for the given polarity, with the
    /// EKV specific current back-solved so that the model's off-current at
    /// (V_GS = 0, V_DS = V_DD) equals [`ioff_unit`](Self::ioff_unit).
    pub fn model(&self, polarity: Polarity) -> CompactModel {
        CompactModel {
            polarity,
            vth: self.vth,
            n_factor: self.n_factor,
            i_spec: 1.0, // replaced by the calibration below
            dibl: self.dibl,
            ig_unit: self.ig_unit,
            ig_slope: self.ig_slope,
            vdd_ref: self.vdd,
        }
        .calibrate_ioff(self.ioff_unit, self.vdd)
    }

    /// Supply voltage as a typed quantity.
    pub fn vdd_volts(&self) -> Voltage {
        Voltage::new(self.vdd)
    }

    /// Derives a voltage-scaled technology point for supply-scaling
    /// studies, with first-order physical scaling of the VDD-dependent
    /// unit quantities:
    ///
    /// * I_off scales with the DIBL barrier shift,
    ///   `exp(η·ΔV/(n·V_T))`;
    /// * I_g scales with the gate-tunnelling slope, `exp(ΔV/V_slope)`;
    /// * R_on follows the alpha-power law `V_DD/(V_DD − V_TH)^1.3`,
    ///   normalized at the nominal point.
    ///
    /// Capacitances and threshold are voltage-independent at first order.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` does not exceed the threshold voltage.
    pub fn with_vdd(&self, vdd: f64) -> TechParams {
        assert!(vdd > self.vth, "supply must exceed the threshold voltage");
        let vt = crate::model::THERMAL_VOLTAGE;
        let dv = vdd - self.vdd;
        let ioff_scale = (self.dibl * dv / (self.n_factor * vt)).exp();
        let ig_scale = (dv / self.ig_slope).exp();
        let drive = |v: f64| (v - self.vth).powf(1.3) / v;
        let r_scale = drive(self.vdd) / drive(vdd);
        TechParams {
            vdd,
            ioff_unit: self.ioff_unit * ioff_scale,
            ig_unit: self.ig_unit * ig_scale,
            r_on: self.r_on * r_scale,
            ..self.clone()
        }
    }

    /// Input capacitance of a minimum inverter (one n + one p gate).
    pub fn inverter_input_cap(&self) -> Capacitance {
        Capacitance::new(2.0 * self.c_gate)
    }

    /// First-order intrinsic gate delay: R_on × (self-loading + one
    /// inverter load). Used only for sanity checks; real delays come from
    /// gate characterization.
    pub fn intrinsic_delay_estimate(&self) -> f64 {
        self.r_on * (self.c_drain * 2.0 + 2.0 * self.c_gate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ioff_calibration_holds() {
        for tech in [TechParams::cntfet_32nm(), TechParams::cmos_32nm()] {
            for pol in [Polarity::N, Polarity::P] {
                let m = tech.model(pol);
                let measured = m.ioff(tech.vdd);
                let err = (measured / tech.ioff_unit - 1.0).abs();
                assert!(
                    err < 0.05,
                    "{:?} {pol:?}: measured {measured:e}, target {:e}",
                    tech.kind,
                    tech.ioff_unit
                );
            }
        }
    }

    #[test]
    fn inverter_caps_match_paper() {
        // Paper §4: 36 aF CNTFET vs 52 aF CMOS — a 31 % difference.
        let cnt = TechParams::cntfet_32nm().inverter_input_cap();
        let cmos = TechParams::cmos_32nm().inverter_input_cap();
        assert!((cnt.value() - 36e-18).abs() < 1e-21);
        assert!((cmos.value() - 52e-18).abs() < 1e-21);
        let diff = 1.0 - cnt.value() / cmos.value();
        assert!((diff - 0.31).abs() < 0.01, "cap difference {diff}");
    }

    #[test]
    fn cntfet_leaks_an_order_less() {
        let cnt = TechParams::cntfet_32nm();
        let cmos = TechParams::cmos_32nm();
        let ratio = cmos.ioff_unit / cnt.ioff_unit;
        assert!((9.0..=11.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gate_leak_fractions_match_paper() {
        let cnt = TechParams::cntfet_32nm();
        assert!(
            cnt.ig_unit / cnt.ioff_unit < 0.01,
            "CNTFET I_g must stay below 1%"
        );
        let cmos = TechParams::cmos_32nm();
        let frac = cmos.ig_unit / cmos.ioff_unit;
        assert!(
            (0.05..=0.15).contains(&frac),
            "CMOS I_g ≈ 10% of I_off, got {frac}"
        );
    }

    #[test]
    fn cntfet_intrinsic_delay_is_about_5x_lower() {
        let cnt = TechParams::cntfet_32nm();
        let cmos = TechParams::cmos_32nm();
        let ratio = cmos.intrinsic_delay_estimate() / cnt.intrinsic_delay_estimate();
        assert!(
            (4.0..=6.5).contains(&ratio),
            "Deng'07 reports ≈5× intrinsic speed advantage, got {ratio}"
        );
    }

    #[test]
    fn vdd_scaling_moves_the_right_knobs() {
        let nominal = TechParams::cmos_32nm();
        let low = nominal.with_vdd(0.6);
        assert_eq!(low.vdd, 0.6);
        assert!(
            low.ioff_unit < nominal.ioff_unit,
            "DIBL relief lowers I_off"
        );
        assert!(
            low.ig_unit < nominal.ig_unit,
            "thinner barrier bias lowers I_g"
        );
        assert!(low.r_on > nominal.r_on, "less overdrive raises R_on");
        // Capacitances untouched.
        assert_eq!(low.c_gate, nominal.c_gate);
        // Model stays self-consistent: calibrated I_off at the new VDD.
        let m = low.model(Polarity::N);
        assert!((m.ioff(low.vdd) / low.ioff_unit - 1.0).abs() < 0.05);
        // Identity scaling.
        let same = nominal.with_vdd(nominal.vdd);
        assert!((same.r_on / nominal.r_on - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceed the threshold")]
    fn vdd_scaling_rejects_subthreshold_supply() {
        let _ = TechParams::cmos_32nm().with_vdd(0.2);
    }

    #[test]
    fn on_off_ratios_are_healthy() {
        for tech in [TechParams::cntfet_32nm(), TechParams::cmos_32nm()] {
            let m = tech.model(Polarity::N);
            let ratio = m.ion(tech.vdd) / m.ioff(tech.vdd);
            assert!(ratio > 1e3, "{:?}: I_on/I_off = {ratio}", tech.kind);
        }
    }
}
