//! EKV-style smooth compact transistor model.
//!
//! The paper characterizes leakage with circuit-level simulations of small
//! off-transistor networks. The property those simulations must capture is
//! the *input-vector dependence* of sub-threshold leakage: a stack of series
//! off-transistors leaks far less than a single (or parallel) off-transistor
//! because the intermediate node rises, producing negative V_GS on the upper
//! device and removing its DIBL boost (Fig. 4 of the paper). Any model that
//! is exponential in V_GS with a DIBL term reproduces this; we use the EKV
//! interpolation because it is smooth everywhere, which keeps the Newton
//! solver in `spice-lite` robust.
//!
//! Drain current (n-type):
//!
//! ```text
//! I_DS = I_spec · [ F((V_P − V_S)/V_T) − F((V_P − V_D)/V_T) ]
//! V_P  = (V_G − V_TH + η·V_DS) / n            (pinch-off voltage, DIBL η)
//! F(x) = ln²(1 + e^{x/2})                     (weak↔strong inversion blend)
//! ```
//!
//! Gate leakage is a calibrated exponential in the gate-to-channel bias.

/// Thermal voltage kT/q at 300 K, in volts.
pub const THERMAL_VOLTAGE: f64 = 0.025852;

/// Transistor channel polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Polarity {
    /// n-channel: conducts with high gate voltage.
    N,
    /// p-channel: conducts with low gate voltage.
    P,
}

impl Polarity {
    /// The opposite polarity.
    pub fn opposite(self) -> Self {
        match self {
            Polarity::N => Polarity::P,
            Polarity::P => Polarity::N,
        }
    }
}

impl std::fmt::Display for Polarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Polarity::N => f.write_str("n"),
            Polarity::P => f.write_str("p"),
        }
    }
}

/// A unipolar transistor compact model (one unit-width device).
///
/// Construct via [`TechParams::model`](crate::tech::TechParams::model) or
/// directly for custom studies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompactModel {
    /// Channel polarity.
    pub polarity: Polarity,
    /// Threshold voltage magnitude, volts.
    pub vth: f64,
    /// Sub-threshold slope factor `n` (swing = n·V_T·ln 10).
    pub n_factor: f64,
    /// EKV specific current, amperes (sets the absolute current scale).
    pub i_spec: f64,
    /// DIBL coefficient η (threshold shift per volt of V_DS).
    pub dibl: f64,
    /// Gate-tunnelling current at |V_G − V_channel| = `vdd_ref`, amperes.
    pub ig_unit: f64,
    /// Exponential slope of gate tunnelling, volts per e-fold.
    pub ig_slope: f64,
    /// Reference supply for gate-leakage calibration, volts.
    pub vdd_ref: f64,
}

/// Numerically safe `ln(1 + e^x)`.
fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// EKV interpolation function `F(x) = ln²(1 + e^{x/2})`.
fn ekv_f(x: f64) -> f64 {
    let s = softplus(x / 2.0);
    s * s
}

impl CompactModel {
    /// Drain current (amperes) flowing *into the drain terminal*, for the
    /// given absolute terminal voltages (volts).
    ///
    /// The model is drain/source symmetric up to the DIBL term; for an
    /// n-device with `vd < vs` the current is negative (flows out of the
    /// drain). P-devices are handled by voltage mirroring.
    ///
    /// # Example
    ///
    /// ```
    /// use device::TechParams;
    /// use device::Polarity;
    ///
    /// let m = TechParams::cmos_32nm().model(Polarity::N);
    /// // On-state current far exceeds off-state leakage.
    /// assert!(m.ids(0.9, 0.9, 0.0) > 1e3 * m.ids(0.0, 0.9, 0.0));
    /// ```
    pub fn ids(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        match self.polarity {
            Polarity::N => self.ids_n(vg, vd, vs),
            // A p-device is the n-device mirrored about its own bulk, which
            // sits at V_DD in a static gate; the returned current keeps the
            // "into the drain" convention.
            Polarity::P => {
                let r = self.vdd_ref;
                -self.ids_n(r - vg, r - vd, r - vs)
            }
        }
    }

    /// Rescales [`i_spec`](Self::i_spec) so that the off-current at
    /// (V_GS = 0, V_DS = `vdd`) equals `ioff_target` exactly (the model is
    /// linear in `i_spec`).
    pub fn calibrate_ioff(mut self, ioff_target: f64, vdd: f64) -> Self {
        self.i_spec = 1.0;
        let measured = self.ioff(vdd);
        self.i_spec = ioff_target / measured;
        self
    }

    fn ids_n(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        // Orient so the effective source is the lower terminal (the DIBL
        // term must reference the true V_DS).
        let (lo, hi, sign) = if vd >= vs {
            (vs, vd, 1.0)
        } else {
            (vd, vs, -1.0)
        };
        let vds = hi - lo;
        let vp = (vg - self.vth + self.dibl * vds) / self.n_factor;
        let vt = THERMAL_VOLTAGE;
        let forward = ekv_f((vp - lo) / vt);
        let reverse = ekv_f((vp - hi) / vt);
        sign * self.i_spec * (forward - reverse)
    }

    /// Gate-tunnelling current (amperes, magnitude) for a gate-to-channel
    /// bias of `v_gate - v_channel` volts.
    pub fn gate_leakage(&self, v_gate: f64, v_channel: f64) -> f64 {
        let bias = (v_gate - v_channel).abs();
        self.ig_unit * ((bias - self.vdd_ref) / self.ig_slope).exp()
    }

    /// The off-state leakage at V_GS = 0 and V_DS = `vds` (amperes).
    pub fn ioff(&self, vds: f64) -> f64 {
        match self.polarity {
            Polarity::N => self.ids(0.0, vds, 0.0),
            Polarity::P => -self.ids(vds, 0.0, vds),
        }
    }

    /// The saturated on-current at |V_GS| = |V_DS| = `vdd` (amperes).
    pub fn ion(&self, vdd: f64) -> f64 {
        match self.polarity {
            Polarity::N => self.ids(vdd, vdd, 0.0),
            Polarity::P => -self.ids(0.0, 0.0, vdd),
        }
    }

    /// Sub-threshold swing in millivolts per decade.
    pub fn subthreshold_swing_mv(&self) -> f64 {
        self.n_factor * THERMAL_VOLTAGE * std::f64::consts::LN_10 * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n_model() -> CompactModel {
        CompactModel {
            polarity: Polarity::N,
            vth: 0.29,
            n_factor: 1.68,
            i_spec: 2e-6,
            dibl: 0.15,
            ig_unit: 2e-10,
            ig_slope: 0.12,
            vdd_ref: 0.9,
        }
    }

    fn p_model() -> CompactModel {
        CompactModel {
            polarity: Polarity::P,
            ..n_model()
        }
    }

    #[test]
    fn zero_vds_zero_current() {
        let m = n_model();
        for vg in [0.0, 0.45, 0.9] {
            assert!(m.ids(vg, 0.4, 0.4).abs() < 1e-18, "vg={vg}");
        }
    }

    #[test]
    fn current_monotone_in_vg() {
        let m = n_model();
        let mut last = -1.0;
        for i in 0..=20 {
            let vg = i as f64 * 0.045;
            let ids = m.ids(vg, 0.9, 0.0);
            assert!(ids > last, "I_DS must increase with V_GS");
            last = ids;
        }
    }

    #[test]
    fn current_monotone_in_vd() {
        let m = n_model();
        let mut last = -1.0;
        for i in 0..=18 {
            let vd = i as f64 * 0.05;
            let ids = m.ids(0.9, vd, 0.0);
            assert!(ids > last, "I_DS must increase with V_DS");
            last = ids;
        }
    }

    #[test]
    fn reverse_operation_flips_sign() {
        let m = n_model();
        let fwd = m.ids(0.9, 0.9, 0.0);
        let rev = m.ids(0.9, 0.0, 0.9);
        assert!(fwd > 0.0);
        assert!(rev < 0.0);
        // Without DIBL asymmetry they would be exactly opposite; with DIBL
        // they stay close.
        assert!((fwd + rev).abs() / fwd < 0.2);
    }

    #[test]
    fn subthreshold_slope_matches_n_factor() {
        let m = n_model();
        // Measure the decade slope well below the DIBL-shifted threshold
        // (V_TH,eff = 0.29 − 0.15·0.9 ≈ 0.155 V).
        let i1 = m.ids(0.00, 0.9, 0.0);
        let i2 = m.ids(0.05, 0.9, 0.0);
        let decades = (i2 / i1).log10();
        let swing_mv = 50.0 / decades;
        // The EKV blend widens the slope slightly in moderate inversion;
        // allow the measured swing to sit a little above the weak-inversion
        // asymptote.
        assert!(
            (swing_mv - m.subthreshold_swing_mv()).abs() < 12.0,
            "measured {swing_mv} vs analytic {}",
            m.subthreshold_swing_mv()
        );
    }

    #[test]
    fn dibl_raises_leakage_with_vds() {
        let m = n_model();
        let low = m.ids(0.0, 0.45, 0.0);
        let high = m.ids(0.0, 0.9, 0.0);
        // exp(η·ΔV/(n·V_T)) ≈ exp(0.15·0.45/0.0434) ≈ 4.7.
        assert!(high / low > 3.0, "DIBL factor too weak: {}", high / low);
    }

    #[test]
    fn p_device_mirrors_n_device() {
        let n = n_model();
        let p = p_model();
        // P on-state: gate low, source high.
        let ion_p = p.ion(0.9);
        let ion_n = n.ion(0.9);
        assert!((ion_p / ion_n - 1.0).abs() < 1e-9);
        // P off-state: gate high (at source), drain low.
        assert!((p.ioff(0.9) / n.ioff(0.9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn on_off_ratio_is_large() {
        let m = n_model();
        assert!(m.ion(0.9) / m.ioff(0.9) > 1e3);
    }

    #[test]
    fn gate_leakage_decays_with_bias() {
        let m = n_model();
        let full = m.gate_leakage(0.9, 0.0);
        let half = m.gate_leakage(0.45, 0.0);
        assert!((full - m.ig_unit).abs() / m.ig_unit < 1e-12);
        assert!(half < full);
        assert_eq!(m.gate_leakage(0.0, 0.9), full, "magnitude symmetric");
    }

    #[test]
    fn softplus_extremes() {
        assert!((softplus(100.0) - 100.0).abs() < 1e-9);
        assert!(softplus(-100.0) > 0.0);
        assert!(softplus(-100.0) < 1e-40);
        assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
