//! Strongly typed physical quantities with engineering-notation display.
//!
//! The circuit solver works in raw `f64` SI units internally; these newtypes
//! appear at public API boundaries so that volts, amps, farads, watts and
//! seconds cannot be confused ([C-NEWTYPE]). Each type displays with an
//! engineering prefix, which is what the table generators print.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Formats a value in engineering notation (`1.23 nA` style).
pub fn eng(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    let magnitude = value.abs();
    const PREFIXES: [(f64, &str); 9] = [
        (1e0, ""),
        (1e-3, "m"),
        (1e-6, "µ"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
        (1e-18, "a"),
        (1e-21, "z"),
        (1e-24, "y"),
    ];
    for &(scale, prefix) in &PREFIXES {
        if magnitude >= scale {
            return format!("{:.3} {}{}", value / scale, prefix, unit);
        }
    }
    format!("{value:.3e} {unit}")
}

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw SI value.
            pub const fn new(si_value: f64) -> Self {
                Self(si_value)
            }

            /// The raw SI value.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> Self {
                Self(v)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&eng(self.0, $unit))
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Voltage,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Current,
    "A"
);
quantity!(
    /// Capacitance in farads.
    Capacitance,
    "F"
);
quantity!(
    /// Power in watts.
    Power,
    "W"
);
quantity!(
    /// Energy in joules.
    Energy,
    "J"
);
quantity!(
    /// Time in seconds.
    Time,
    "s"
);
quantity!(
    /// Frequency in hertz.
    Frequency,
    "Hz"
);
quantity!(
    /// Energy–delay product in joule-seconds.
    EnergyDelay,
    "J·s"
);

impl Mul<Voltage> for Current {
    type Output = Power;
    fn mul(self, rhs: Voltage) -> Power {
        Power::new(self.value() * rhs.value())
    }
}

impl Mul<Current> for Voltage {
    type Output = Power;
    fn mul(self, rhs: Current) -> Power {
        rhs * self
    }
}

impl Mul<Time> for Power {
    type Output = Energy;
    fn mul(self, rhs: Time) -> Energy {
        Energy::new(self.value() * rhs.value())
    }
}

impl Mul<Time> for Energy {
    type Output = EnergyDelay;
    fn mul(self, rhs: Time) -> EnergyDelay {
        EnergyDelay::new(self.value() * rhs.value())
    }
}

impl Div<Frequency> for Power {
    type Output = Energy;
    fn div(self, rhs: Frequency) -> Energy {
        Energy::new(self.value() / rhs.value())
    }
}

impl Frequency {
    /// The period `1/f`.
    pub fn period(self) -> Time {
        Time::new(1.0 / self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_formatting_picks_prefixes() {
        assert_eq!(eng(1.5e-9, "A"), "1.500 nA");
        assert_eq!(eng(3.6e-17, "F"), "36.000 aF");
        assert_eq!(eng(0.9, "V"), "900.000 mV");
        assert_eq!(eng(0.0, "W"), "0 W");
        assert_eq!(eng(-2.5e-6, "W"), "-2.500 µW");
    }

    #[test]
    fn power_is_current_times_voltage() {
        let p = Current::new(2e-9) * Voltage::new(0.9);
        assert!((p.value() - 1.8e-9).abs() < 1e-18);
        let p2 = Voltage::new(0.9) * Current::new(2e-9);
        assert_eq!(p, p2);
    }

    #[test]
    fn energy_chain() {
        let p = Power::new(20e-6);
        let f = Frequency::new(1e9);
        let e = p / f; // energy per cycle
        assert!((e.value() - 20e-15).abs() < 1e-24);
        let edp = e * Time::new(320e-12);
        assert!((edp.value() - 6.4e-24).abs() < 1e-30);
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: Power = [1e-6, 2e-6, 3e-6].into_iter().map(Power::new).sum();
        assert!((total.value() - 6e-6).abs() < 1e-15);
        let ratio = Power::new(4.0) / Power::new(2.0);
        assert_eq!(ratio, 2.0);
        assert_eq!(-Voltage::new(1.0), Voltage::new(-1.0));
        assert_eq!(Voltage::new(2.0) - Voltage::new(0.5), Voltage::new(1.5));
    }

    #[test]
    fn period_inverts_frequency() {
        let f = Frequency::new(1e9);
        assert!((f.period().value() - 1e-9).abs() < 1e-18);
    }
}
