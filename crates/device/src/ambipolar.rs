//! The in-field programmable ambipolar CNTFET (Fig. 1 of the paper).
//!
//! An ambipolar CNTFET has two gates: the *polarity gate* (the back gate at
//! the CNT-to-metal Schottky contacts) selects which carrier type dominates,
//! and the *conventional gate* switches the selected channel on and off:
//!
//! * polarity gate at V_SS → n-type behaviour (Fig. 1b);
//! * polarity gate at V_DD → p-type behaviour (Fig. 1c).
//!
//! Following the paper (and O'Connor et al., TCAS-I 2007), the device is
//! emulated as a *parallel pair* of unipolar MOSFET-like CNTFETs; the
//! polarity-gate voltage smoothly selects which of the pair carries the
//! current. With the polarity gate at a rail, exactly one device of the
//! pair is active and the composite reduces to a unipolar CNTFET.

use crate::model::{CompactModel, Polarity};
use crate::tech::TechParams;

/// Static polarity-gate configuration of an ambipolar device inside a gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolarityConfig {
    /// Polarity gate tied to V_SS: device behaves as n-type.
    NType,
    /// Polarity gate tied to V_DD: device behaves as p-type.
    PType,
}

impl PolarityConfig {
    /// The unipolar polarity this configuration selects.
    pub fn polarity(self) -> Polarity {
        match self {
            PolarityConfig::NType => Polarity::N,
            PolarityConfig::PType => Polarity::P,
        }
    }

    /// The polarity-gate voltage (volts) realizing this configuration.
    pub fn polarity_gate_voltage(self, vdd: f64) -> f64 {
        match self {
            PolarityConfig::NType => 0.0,
            PolarityConfig::PType => vdd,
        }
    }
}

/// A double-gate ambipolar CNTFET emulated as a parallel n/p pair.
///
/// # Example
///
/// ```
/// use device::{AmbipolarCntfet, TechParams};
///
/// let tech = TechParams::cntfet_32nm();
/// let dev = AmbipolarCntfet::new(&tech);
/// // Polarity gate low → n-type: conducts with gate high.
/// let on = dev.ids(0.0, tech.vdd, tech.vdd, 0.0);
/// let off = dev.ids(0.0, 0.0, tech.vdd, 0.0);
/// assert!(on > 1e3 * off.abs());
/// // Polarity gate high → p-type: conducts with gate low.
/// let on_p = -dev.ids(tech.vdd, 0.0, 0.0, tech.vdd);
/// assert!(on_p > 1e3 * off.abs());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AmbipolarCntfet {
    n_model: CompactModel,
    p_model: CompactModel,
    vdd: f64,
}

impl AmbipolarCntfet {
    /// Builds the emulated ambipolar device for a technology point.
    pub fn new(tech: &TechParams) -> Self {
        Self {
            n_model: tech.model(Polarity::N),
            p_model: tech.model(Polarity::P),
            vdd: tech.vdd,
        }
    }

    /// Drain current (into the drain) given the polarity-gate voltage
    /// `v_pg`, conventional-gate voltage `v_g`, and drain/source voltages.
    ///
    /// The polarity gate smoothly blends the n- and p-branches: at the
    /// rails exactly one branch is selected, mid-rail both Schottky
    /// barriers are partially open (the physical ambipolar regime).
    pub fn ids(&self, v_pg: f64, v_g: f64, v_d: f64, v_s: f64) -> f64 {
        // Selection weight: 0 → pure n, 1 → pure p. A logistic in the
        // polarity-gate bias mimics the Schottky-barrier thinning.
        let x = (v_pg - self.vdd / 2.0) / (self.vdd / 16.0);
        let w_p = 1.0 / (1.0 + (-x).exp());
        let i_n = self.n_model.ids(v_g, v_d, v_s);
        let i_p = self.p_model.ids(v_g, v_d, v_s);
        (1.0 - w_p) * i_n + w_p * i_p
    }

    /// The unipolar model selected by a static polarity configuration.
    ///
    /// Gate-level netlists use this: every ambipolar device inside a static
    /// logic gate has its polarity gate tied to a rail or an input signal
    /// that is at a rail for any given input vector.
    pub fn configured(&self, config: PolarityConfig) -> CompactModel {
        match config {
            PolarityConfig::NType => self.n_model,
            PolarityConfig::PType => self.p_model,
        }
    }

    /// The n-branch model (polarity gate at V_SS).
    pub fn n_model(&self) -> &CompactModel {
        &self.n_model
    }

    /// The p-branch model (polarity gate at V_DD).
    pub fn p_model(&self) -> &CompactModel {
        &self.p_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> (AmbipolarCntfet, TechParams) {
        let tech = TechParams::cntfet_32nm();
        (AmbipolarCntfet::new(&tech), tech)
    }

    #[test]
    fn polarity_gate_low_gives_n_type() {
        let (dev, tech) = device();
        let composite = dev.ids(0.0, tech.vdd, tech.vdd, 0.0);
        let unipolar = dev
            .configured(PolarityConfig::NType)
            .ids(tech.vdd, tech.vdd, 0.0);
        assert!((composite / unipolar - 1.0).abs() < 0.01);
    }

    #[test]
    fn polarity_gate_high_gives_p_type() {
        let (dev, tech) = device();
        // P-type on-state: gate low, source at VDD, drain low.
        let composite = dev.ids(tech.vdd, 0.0, 0.0, tech.vdd);
        let unipolar = dev
            .configured(PolarityConfig::PType)
            .ids(0.0, 0.0, tech.vdd);
        assert!((composite / unipolar - 1.0).abs() < 0.01);
    }

    #[test]
    fn both_configurations_switch() {
        let (dev, tech) = device();
        for config in [PolarityConfig::NType, PolarityConfig::PType] {
            let m = dev.configured(config);
            let ratio = m.ion(tech.vdd) / m.ioff(tech.vdd);
            assert!(ratio > 1e3, "{config:?} on/off ratio {ratio}");
        }
    }

    #[test]
    fn midrail_polarity_gate_is_ambipolar() {
        let (dev, tech) = device();
        // With the polarity gate mid-rail, both carrier types contribute:
        // the device conducts for gate high *and* gate low (the classic
        // ambipolar V-shaped transfer curve).
        let mid = tech.vdd / 2.0;
        let i_gate_high = dev.ids(mid, tech.vdd, tech.vdd, 0.0).abs();
        let i_gate_low = dev.ids(mid, 0.0, tech.vdd, 0.0).abs();
        let i_off_n = dev.configured(PolarityConfig::NType).ioff(tech.vdd);
        assert!(i_gate_high > 10.0 * i_off_n);
        assert!(i_gate_low > 10.0 * i_off_n);
    }

    #[test]
    fn config_voltage_levels_match_fig1() {
        let (_, tech) = device();
        assert_eq!(PolarityConfig::NType.polarity_gate_voltage(tech.vdd), 0.0);
        assert_eq!(
            PolarityConfig::PType.polarity_gate_voltage(tech.vdd),
            tech.vdd
        );
        assert_eq!(PolarityConfig::NType.polarity(), Polarity::N);
        assert_eq!(PolarityConfig::PType.polarity(), Polarity::P);
    }
}
