//! Compact behavioural device models for the DATE 2010 ambipolar-CNTFET
//! power study.
//!
//! The paper evaluates leakage with HSPICE using the Stanford MOSFET-like
//! CNTFET model (emulating ambipolar devices as a parallel n/p pair, after
//! O'Connor et al.) and takes 32 nm bulk-CMOS unit quantities from the ITRS
//! MASTAR tool. Neither tool is redistributable, so this crate provides
//! first-order compact models that reproduce the *unit quantities the paper
//! actually consumes*:
//!
//! * sub-threshold leakage with drain-induced barrier lowering (the stack
//!   effect of Fig. 4 emerges from the model, it is not hard-coded);
//! * gate-tunnelling leakage (≈10 % of sub-threshold for CMOS, <1 % for
//!   CNTFETs thanks to the high-κ gate stack);
//! * unit gate/drain/source capacitances (CNTFET inverter input capacitance
//!   36 aF vs 52 aF for CMOS — the paper's §4 numbers);
//! * on-resistance consistent with the 5× intrinsic speed advantage of
//!   CNTFETs reported by Deng et al. (ISSCC'07) and used by the paper.
//!
//! The central types are [`TechParams`] (a named technology point),
//! [`CompactModel`] (a unipolar transistor I–V model) and
//! [`AmbipolarCntfet`] (the double-gate device whose polarity gate selects
//! n- or p-type behaviour, Fig. 1 of the paper).
//!
//! # Example
//!
//! ```
//! use device::{TechParams, Polarity};
//!
//! let cnt = TechParams::cntfet_32nm();
//! let nfet = cnt.model(Polarity::N);
//! // Off-state leakage at Vgs = 0, Vds = VDD is the calibrated unit I_off.
//! let ioff = nfet.ids(0.0, cnt.vdd, 0.0);
//! assert!((ioff / cnt.ioff_unit - 1.0).abs() < 0.05);
//! ```

pub mod ambipolar;
pub mod model;
pub mod tech;
pub mod units;

pub use ambipolar::{AmbipolarCntfet, PolarityConfig};
pub use model::{CompactModel, Polarity};
pub use tech::{TechKind, TechParams};
pub use units::{Capacitance, Current, Energy, EnergyDelay, Frequency, Power, Time, Voltage};
