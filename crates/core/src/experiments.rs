//! The paper's evaluation artifacts, regenerated.
//!
//! | artifact | function |
//! |---|---|
//! | Table 1 | [`table1`] |
//! | §4 gate-level library comparison | [`gate_library_comparison`] |
//! | §3.2 I_off pattern census ("26 patterns") | [`pattern_census`] |
//! | Fig. 4 stack-effect study | [`fig4_study`] |

use crate::engine;
use crate::pipeline::{CircuitResult, PipelineConfig};
use charlib::{LeakageSimulator, OffPattern};
use device::TechParams;
use gate_lib::GateFamily;
use std::fmt;

/// Configuration for the Table-1 run.
#[derive(Clone, Debug, Default)]
pub struct Table1Config {
    /// Per-circuit pipeline settings.
    pub pipeline: PipelineConfig,
}

impl Table1Config {
    /// Fast setting for tests and smoke runs (64 K patterns).
    pub fn quick() -> Self {
        Self {
            pipeline: PipelineConfig::default(),
        }
    }

    /// The paper's setting (640 K random patterns).
    pub fn paper() -> Self {
        Self {
            pipeline: PipelineConfig::paper(),
        }
    }
}

/// One benchmark row across the three families.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Paper circuit name.
    pub name: String,
    /// The paper's "Function" column.
    pub function: String,
    /// AND count of the synthesized AIG handed to the mapper (QoR of the
    /// pre-mapping flow; feeds the `--json` perf artifact).
    pub ands: usize,
    /// Logic depth of the synthesized AIG.
    pub depth: u32,
    /// Results in family order (generalized, conventional, CMOS).
    pub results: [CircuitResult; 3],
}

/// Per-family aggregate of a Table-1 run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FamilyAverages {
    /// Mean gate count.
    pub gates: f64,
    /// Mean delay, seconds.
    pub delay: f64,
    /// Mean dynamic power, watts.
    pub pd: f64,
    /// Mean static power, watts.
    pub ps: f64,
    /// Mean total power, watts.
    pub pt: f64,
    /// Mean EDP, joule-seconds.
    pub edp: f64,
}

/// The regenerated Table 1.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Benchmark rows in paper order.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Per-family averages (the paper's "Average" row).
    pub fn averages(&self) -> [FamilyAverages; 3] {
        let n = self.rows.len().max(1) as f64;
        let mut out = [FamilyAverages::default(); 3];
        for row in &self.rows {
            for (avg, r) in out.iter_mut().zip(row.results.iter()) {
                avg.gates += r.gates as f64 / n;
                avg.delay += r.delay.value() / n;
                avg.pd += r.power.dynamic.value() / n;
                avg.ps += r.power.static_sub.value() / n;
                avg.pt += r.total_power().value() / n;
                avg.edp += r.edp().value() / n;
            }
        }
        out
    }

    /// The paper's "Improvement vs. CMOS" row for a CNTFET family
    /// (0 = generalized, 1 = conventional): gate/P_D/P_S/P_T savings as
    /// fractions, delay and EDP as CMOS-over-family ratios.
    pub fn improvement_vs_cmos(&self, family_index: usize) -> Improvement {
        assert!(family_index < 2, "CMOS has no improvement over itself");
        let avg = self.averages();
        let f = &avg[family_index];
        let cmos = &avg[2];
        Improvement {
            gates_saving: 1.0 - f.gates / cmos.gates,
            delay_ratio: cmos.delay / f.delay,
            pd_saving: 1.0 - f.pd / cmos.pd,
            ps_saving: 1.0 - f.ps / cmos.ps,
            pt_saving: 1.0 - f.pt / cmos.pt,
            edp_ratio: cmos.edp / f.edp,
        }
    }
}

/// The improvement row of Table 1.
#[derive(Clone, Copy, Debug)]
pub struct Improvement {
    /// Fractional reduction in mapped gates (paper: 24.2 % / 3.2 %).
    pub gates_saving: f64,
    /// CMOS delay over family delay (paper: 7.1× / 5.1×).
    pub delay_ratio: f64,
    /// Fractional dynamic-power saving (paper: 53.4 % / 30.9 %).
    pub pd_saving: f64,
    /// Fractional static-power saving (paper: 94.5 % / 92.7 %).
    pub ps_saving: f64,
    /// Fractional total-power saving (paper: 57.1 % / 36.7 %).
    pub pt_saving: f64,
    /// CMOS EDP over family EDP (paper: 19.5× / 8.1×).
    pub edp_ratio: f64,
}

/// Runs the full Table-1 experiment: synthesize each benchmark once, then
/// map and evaluate it with all three libraries.
///
/// Delegates to the [`engine`]: libraries and NPN match caches come from
/// the once-per-process caches and the circuit × family matrix runs on
/// the rayon pool.
///
/// # Errors
///
/// Propagates the first mapping failure ([`crate::pipeline::PipelineError`]) in row
/// order; unreachable with the built-in libraries and benchmarks.
pub fn table1(config: &Table1Config) -> Result<Table1, crate::pipeline::PipelineError> {
    engine::run_table1(config)
}

/// Like [`table1`] but restricted to the named benchmark rows (pass `None`
/// for all twelve). Used by fast shape-regression tests.
///
/// # Errors
///
/// Propagates the first mapping failure in row order.
pub fn table1_subset(
    config: &Table1Config,
    names: Option<&[&str]>,
) -> Result<Table1, crate::pipeline::PipelineError> {
    engine::run_table1_subset(config, names)
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Logic synthesis and technology mapping: gate count, delay (ps), P_D (µW), P_S (µW), P_T (µW), EDP (1e-24 J·s)"
        )?;
        write!(f, "{:<8} {:<17}", "Circuit", "Function")?;
        for family in GateFamily::ALL {
            write!(f, " | {:^47}", family.label())?;
        }
        writeln!(f)?;
        write!(f, "{:<8} {:<17}", "", "")?;
        for _ in 0..3 {
            write!(
                f,
                " | {:>6} {:>6} {:>8} {:>7} {:>8} {:>7}",
                "No.", "Delay", "PD", "PS", "PT", "EDP"
            )?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:<8} {:<17}", row.name, row.function)?;
            for r in &row.results {
                write!(
                    f,
                    " | {:>6} {:>6.0} {:>8.2} {:>7.3} {:>8.2} {:>7.2}",
                    r.gates,
                    r.delay.value() * 1e12,
                    r.power.dynamic.value() * 1e6,
                    r.power.static_sub.value() * 1e6,
                    r.total_power().value() * 1e6,
                    r.edp().value() * 1e24,
                )?;
            }
            writeln!(f)?;
        }
        let avg = self.averages();
        write!(f, "{:<8} {:<17}", "Average", "")?;
        for a in &avg {
            write!(
                f,
                " | {:>6.0} {:>6.0} {:>8.2} {:>7.3} {:>8.2} {:>7.2}",
                a.gates,
                a.delay * 1e12,
                a.pd * 1e6,
                a.ps * 1e6,
                a.pt * 1e6,
                a.edp * 1e24,
            )?;
        }
        writeln!(f)?;
        write!(f, "{:<8} {:<17}", "Improv.", "vs. CMOS")?;
        for idx in 0..2 {
            let imp = self.improvement_vs_cmos(idx);
            write!(
                f,
                " | {:>5.1}% {:>5.1}x {:>7.1}% {:>6.1}% {:>7.1}% {:>6.1}x",
                imp.gates_saving * 100.0,
                imp.delay_ratio,
                imp.pd_saving * 100.0,
                imp.ps_saving * 100.0,
                imp.pt_saving * 100.0,
                imp.edp_ratio,
            )?;
        }
        write!(f, " | {:>47}", "-")?;
        Ok(())
    }
}

/// §4 gate-level comparison between the CNTFET and CMOS libraries.
#[derive(Clone, Debug)]
pub struct GateLibraryReport {
    /// Average total gate power saving of conventional CNTFET cells over
    /// their CMOS counterparts (paper: ≈28 %).
    pub total_power_saving: f64,
    /// Average dynamic-power saving (paper: ≈27 %).
    pub dynamic_power_saving: f64,
    /// CMOS-over-CNTFET static power ratio (paper: ≈ one order).
    pub static_ratio: f64,
    /// Average P_G/P_S for CMOS cells (paper: ≈10 %).
    pub cmos_gate_leak_fraction: f64,
    /// Average P_G/P_S for CNTFET cells (paper: <1 %).
    pub cnt_gate_leak_fraction: f64,
    /// Average activity factor of the generalized library.
    pub generalized_activity: f64,
    /// Average activity factor of the CMOS library.
    pub cmos_activity: f64,
    /// CNTFET inverter input capacitance, farads (paper: 36 aF).
    pub cnt_inverter_cap: f64,
    /// CMOS inverter input capacitance, farads (paper: 52 aF).
    pub cmos_inverter_cap: f64,
}

/// Characterizes the libraries and compares matched cells (the cells
/// "available in CMOS technology", per the paper).
pub fn gate_library_comparison() -> GateLibraryReport {
    let gen = engine::library(GateFamily::CntfetGeneralized);
    let conv = engine::library(GateFamily::CntfetConventional);
    let cmos = engine::library(GateFamily::Cmos);
    let mut pt_savings = Vec::new();
    let mut pd_savings = Vec::new();
    let mut ps_ratios = Vec::new();
    for cell in &conv.gates {
        let other = cmos.find(&cell.gate.name).expect("same cell set");
        let p_cnt = cell.power_summary();
        let p_cmos = other.power_summary();
        pt_savings.push(1.0 - p_cnt.total().value() / p_cmos.total().value());
        pd_savings.push(1.0 - p_cnt.dynamic.value() / p_cmos.dynamic.value());
        ps_ratios.push(p_cmos.static_sub.value() / p_cnt.static_sub.value());
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    GateLibraryReport {
        total_power_saving: mean(&pt_savings),
        dynamic_power_saving: mean(&pd_savings),
        static_ratio: mean(&ps_ratios),
        cmos_gate_leak_fraction: cmos.average(|g| g.ig_avg / g.ioff_avg),
        cnt_gate_leak_fraction: conv.average(|g| g.ig_avg / g.ioff_avg),
        generalized_activity: gen.average(|g| g.alpha),
        cmos_activity: cmos.average(|g| g.alpha),
        cnt_inverter_cap: gen.find("INV").expect("INV").input_caps[0],
        cmos_inverter_cap: cmos.find("INV").expect("INV").input_caps[0],
    }
}

impl fmt::Display for GateLibraryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Gate-level library comparison (paper §4):")?;
        writeln!(
            f,
            "  total power saving (CNTFET vs CMOS, matched cells): {:5.1}%   [paper: 28%]",
            self.total_power_saving * 100.0
        )?;
        writeln!(
            f,
            "  dynamic power saving:                               {:5.1}%   [paper: 27%]",
            self.dynamic_power_saving * 100.0
        )?;
        writeln!(
            f,
            "  static power ratio (CMOS / CNTFET):                 {:5.1}x   [paper: ~10x]",
            self.static_ratio
        )?;
        writeln!(
            f,
            "  P_G / P_S, CMOS:                                    {:5.1}%   [paper: ~10%]",
            self.cmos_gate_leak_fraction * 100.0
        )?;
        writeln!(
            f,
            "  P_G / P_S, CNTFET:                                  {:5.2}%   [paper: <1%]",
            self.cnt_gate_leak_fraction * 100.0
        )?;
        writeln!(
            f,
            "  average activity factor, generalized vs CMOS:       {:.3} vs {:.3}  [paper: equal]",
            self.generalized_activity, self.cmos_activity
        )?;
        write!(
            f,
            "  inverter input capacitance:                         {:.0} aF vs {:.0} aF  [paper: 36 vs 52]",
            self.cnt_inverter_cap * 1e18,
            self.cmos_inverter_cap * 1e18
        )
    }
}

/// §3.2: the distinct I_off patterns of the generalized library.
#[derive(Clone, Debug)]
pub struct PatternCensusReport {
    /// Distinct canonical patterns across the 46-gate library.
    pub distinct: usize,
    /// Total (gate, input-vector) pattern observations.
    pub observations: usize,
    /// Patterns with their occurrence counts, most common first.
    pub patterns: Vec<(String, usize)>,
}

/// Runs the census on the generalized ambipolar library.
pub fn pattern_census() -> PatternCensusReport {
    let lib = engine::library(GateFamily::CntfetGeneralized);
    let patterns: Vec<(String, usize)> = lib
        .pattern_census
        .iter_by_frequency()
        .map(|(p, c)| (p.to_string(), c))
        .collect();
    PatternCensusReport {
        distinct: lib.pattern_census.distinct(),
        observations: patterns.iter().map(|(_, c)| c).sum(),
        patterns,
    }
}

impl fmt::Display for PatternCensusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "I_off pattern census over the 46-gate generalized library (paper §3.2: 26 patterns):"
        )?;
        writeln!(
            f,
            "  {} distinct patterns across {} (gate, vector) observations",
            self.distinct, self.observations
        )?;
        for (p, c) in &self.patterns {
            writeln!(f, "    {c:>6}×  {p}")?;
        }
        Ok(())
    }
}

/// Fig. 4: parallel vs series off-transistor leakage of a 3-input NOR.
#[derive(Clone, Debug)]
pub struct Fig4Study {
    /// Technology the study ran on.
    pub tech: String,
    /// Leakage with input [0 0 0]: three parallel off devices, amperes.
    pub parallel_ioff: f64,
    /// Leakage with input [1 1 1]: three series off devices, amperes.
    pub series_ioff: f64,
}

impl Fig4Study {
    /// The paper's ">3×" factor.
    pub fn ratio(&self) -> f64 {
        self.parallel_ioff / self.series_ioff
    }
}

/// Reproduces the Fig. 4 example on a technology point.
pub fn fig4_study(tech: &TechParams) -> Fig4Study {
    let mut sim = LeakageSimulator::new(tech.clone());
    let d = OffPattern::Device;
    let parallel = sim.ioff(&OffPattern::parallel([d.clone(), d.clone(), d.clone()]));
    let series = sim.ioff(&OffPattern::series([d.clone(), d.clone(), d]));
    Fig4Study {
        tech: tech.kind.to_string(),
        parallel_ioff: parallel,
        series_ioff: series,
    }
}

impl fmt::Display for Fig4Study {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Fig. 4 ({}): NOR3 leakage [0 0 0] = {}, [1 1 1] = {}, ratio = {:.1}x  [paper: >3x]",
            self.tech,
            device::units::eng(self.parallel_ioff, "A"),
            device::units::eng(self.series_ioff, "A"),
            self.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_library_report_matches_paper_bands() {
        let r = gate_library_comparison();
        assert!((0.15..=0.45).contains(&r.total_power_saving), "{r:?}");
        assert!((0.15..=0.40).contains(&r.dynamic_power_saving), "{r:?}");
        assert!(r.static_ratio > 5.0, "{r:?}");
        assert!((0.04..=0.25).contains(&r.cmos_gate_leak_fraction), "{r:?}");
        assert!(r.cnt_gate_leak_fraction < 0.01, "{r:?}");
        // "The CNTFET library shows on average the same activity factor
        // as the CMOS library."
        let rel = (r.generalized_activity - r.cmos_activity).abs() / r.cmos_activity;
        assert!(rel < 0.25, "activity factors should be comparable: {r:?}");
        assert!((r.cnt_inverter_cap - 36e-18).abs() < 1e-21);
        assert!((r.cmos_inverter_cap - 52e-18).abs() < 1e-21);
    }

    #[test]
    fn pattern_census_is_small_and_stable() {
        let census = pattern_census();
        assert!(
            (10..=40).contains(&census.distinct),
            "paper reports 26; classification must stay in that regime, got {}",
            census.distinct
        );
        assert!(census.observations > 500);
        // Deterministic.
        let again = pattern_census();
        assert_eq!(census.distinct, again.distinct);
        assert_eq!(census.patterns, again.patterns);
    }

    #[test]
    fn fig4_ratio_exceeds_three() {
        for tech in [TechParams::cmos_32nm(), TechParams::cntfet_32nm()] {
            let study = fig4_study(&tech);
            assert!(
                study.ratio() > 3.0,
                "{}: ratio {}",
                study.tech,
                study.ratio()
            );
        }
    }

    #[test]
    fn table1_single_row_shape() {
        // Full Table 1 is exercised by the bench binary; here run one
        // XOR-rich row end-to-end and check the paper's ordering.
        let config = Table1Config {
            pipeline: PipelineConfig {
                patterns: 4096,
                ..PipelineConfig::default()
            },
        };
        let libraries = engine::libraries();
        let bench = bench_circuits::benchmark_by_name("C1908").expect("C1908");
        let synthesized = aig::synthesize(&bench.aig);
        let results: Vec<_> = libraries
            .iter()
            .map(|lib| {
                crate::pipeline::evaluate_circuit(&synthesized, lib, &config.pipeline)
                    .expect("mapping succeeds")
            })
            .collect();
        // Generalized wins gates and power; CMOS is slowest and hungriest.
        assert!(results[0].gates <= results[1].gates);
        assert!(results[0].total_power().value() < results[2].total_power().value());
        assert!(results[0].delay.value() < results[2].delay.value());
        assert!(results[0].edp().value() < results[2].edp().value() / 4.0);
    }
}
