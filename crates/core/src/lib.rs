//! The experiment pipeline reproducing the DATE 2010 study *Power
//! Consumption of Logic Circuits in Ambipolar Carbon Nanotube Technology*
//! (Ben Jamaa, Mohanram, De Micheli).
//!
//! This crate ties the workspace together:
//!
//! * [`engine`] — the experiment engine: a once-per-process
//!   [`CharacterizedLibrary`](charlib::CharacterizedLibrary) cache per gate
//!   family and the parallel circuit × family drivers;
//! * [`pipeline`] — synthesize → map → time → estimate for one circuit and
//!   one gate family;
//! * [`experiments`] — the paper's artifacts: [Table 1](experiments::table1)
//!   (12 benchmarks × 3 families), the gate-level library comparison of §4,
//!   the I_off pattern census of §3.2, and the Fig. 4 stack-effect study;
//! * [`json`] — the hand-rolled JSON scalar helpers every artifact
//!   emitter (bench binaries, the `synthd` server) shares.
//!
//! # Example
//!
//! ```no_run
//! use ambipolar::experiments::{table1, Table1Config};
//!
//! let table = table1(&Table1Config::quick()).expect("built-in benchmarks map");
//! println!("{table}");
//! ```

pub mod engine;
pub mod experiments;
pub mod json;
pub mod pipeline;

pub use engine::{library, run_table1, run_table1_serial, run_table1_subset};
pub use experiments::{
    fig4_study, gate_library_comparison, pattern_census, table1, Table1, Table1Config,
};
pub use pipeline::{
    evaluate_circuit, evaluate_circuit_serial, run_job, CircuitResult, JobError, MappedJob,
    PipelineConfig,
};
