//! The per-circuit evaluation pipeline: synthesize once, then map, time
//! and power-estimate against a characterized library.

use aig::{Aig, ChoiceAig};
use charlib::CharacterizedLibrary;
use device::{EnergyDelay, Power, Time};
use power_est::{estimate_power, simulate_activity, PowerBreakdown};
use techmap::{
    critical_path_with_load, map_aig_with_cache, map_aig_with_cut_db, map_choice_aig_with_cache,
    verify_mapping_with, MapConfig, MapError, MappedNetlist, Objective, Verify, VerifyError,
};

/// Pipeline knobs.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Random patterns for power estimation (the paper uses 640 K).
    pub patterns: usize,
    /// Operating frequency, hertz (paper: 1 GHz).
    pub frequency_hz: f64,
    /// Simulation seed (fixed for reproducibility).
    pub seed: u64,
    /// The pre-mapping synthesis flow script (see [`aig::Flow`]); parsed
    /// and applied per benchmark by the Table-1 drivers
    /// (`ambipolar::engine::run_table1*`). [`evaluate_circuit`] itself
    /// takes an already-synthesized AIG and does not consult this field.
    pub flow: String,
    /// Technology-mapping configuration (objective, cut shape, load
    /// model). The default reproduces the paper's delay-oriented mapping.
    pub map: MapConfig,
    /// Post-mapping verification: `Off` (default), `Sim`, or `Sat`
    /// (SAT-proof of every mapped netlist against its synthesized AIG).
    pub verify: Verify,
    /// Map over structural choices: the Table-1 drivers synthesize
    /// through [`aig::Flow::run_with_choices`] (appending a `dch` step
    /// when the script has none), and each circuit is mapped both over
    /// its [`ChoiceAig`] and plainly — the choice netlist is kept
    /// whenever it uses no more gates (the no-choice gate count is
    /// recorded in [`CircuitResult::gates_no_choice`]).
    pub choices: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            patterns: 1 << 16,
            frequency_hz: charlib::OPERATING_FREQUENCY_HZ,
            seed: 0xDA7E_2010,
            flow: aig::DEFAULT_FLOW.to_owned(),
            map: MapConfig::default(),
            verify: Verify::Off,
            choices: false,
        }
    }
}

/// Why a pipeline run failed: the synthesis flow script did not parse,
/// the mapper could not produce a netlist, or the produced netlist failed
/// verification.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// The configured synthesis flow script is malformed.
    Flow(aig::FlowError),
    /// Technology mapping failed.
    Map(MapError),
    /// The mapped netlist is not equivalent to its source AIG (carries
    /// the counterexample) or has a malformed interface.
    Verify(VerifyError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Flow(e) => write!(f, "flow script failed to parse: {e}"),
            PipelineError::Map(e) => write!(f, "mapping failed: {e}"),
            PipelineError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<aig::FlowError> for PipelineError {
    fn from(e: aig::FlowError) -> Self {
        PipelineError::Flow(e)
    }
}

impl From<MapError> for PipelineError {
    fn from(e: MapError) -> Self {
        PipelineError::Map(e)
    }
}

impl From<VerifyError> for PipelineError {
    fn from(e: VerifyError) -> Self {
        PipelineError::Verify(e)
    }
}

impl PipelineConfig {
    /// The paper's full setting: 640 K random patterns.
    pub fn paper() -> Self {
        Self {
            patterns: 640 * 1024,
            ..Self::default()
        }
    }
}

/// Everything Table 1 reports for one circuit × one family.
#[derive(Clone, Debug)]
pub struct CircuitResult {
    /// Mapped gate count (the "No." column).
    pub gates: usize,
    /// Critical-path delay.
    pub delay: Time,
    /// Power breakdown (P_D, P_SC, P_S, P_G).
    pub power: PowerBreakdown,
    /// Total cell area, m².
    pub area: f64,
    /// Total transistors.
    pub transistors: usize,
    /// When choice-aware mapping ran ([`PipelineConfig::choices`]): the
    /// gate count the plain (no-choice) mapping would have used — the
    /// QoR delta the `--json` artifact records.
    pub gates_no_choice: Option<usize>,
    /// When choice-aware mapping ran: the STA critical path the plain
    /// (no-choice) mapping would have reported, under the same output
    /// load the kept netlist is timed with. Together with
    /// [`CircuitResult::gates_no_choice`] this makes both portfolio
    /// guarantees checkable from the `--json` artifact.
    pub delay_no_choice: Option<Time>,
}

impl CircuitResult {
    /// Total power P_T.
    pub fn total_power(&self) -> Power {
        self.power.total()
    }

    /// Energy–delay product (P_T/f · delay).
    pub fn edp(&self) -> EnergyDelay {
        self.power.edp(self.delay)
    }
}

/// Maps and evaluates an already-synthesized AIG against one library.
///
/// Mapping goes through the engine's shared per-family
/// [`NpnMatchCache`](techmap::NpnMatchCache)
/// ([`crate::engine::match_cache`]) — valid for any technology point of
/// the family, so V_DD-sweep libraries share it too. When
/// [`PipelineConfig::verify`] is `Sim` or `Sat`, the mapped netlist is
/// verified against the input AIG before any metric is computed.
///
/// # Errors
///
/// [`PipelineError::Map`] when mapping fails (unreachable with the
/// built-in libraries and benchmarks); [`PipelineError::Verify`] when the
/// configured verification refutes the netlist.
pub fn evaluate_circuit(
    synthesized: &Aig,
    library: &CharacterizedLibrary,
    config: &PipelineConfig,
) -> Result<CircuitResult, PipelineError> {
    evaluate_circuit_with_choices(synthesized, None, library, config)
}

/// [`evaluate_circuit`] with the flow's accumulated structural choices.
///
/// When `choices` is given and [`PipelineConfig::choices`] is on, the
/// circuit is mapped twice — over the choice network
/// ([`map_choice_aig_with_cache`]) and plainly — and the choice netlist
/// is kept whenever it uses no more gates than the plain one (a choice
/// mapping that fails, e.g. because the sweep proved an output constant,
/// simply falls back). Both paths share the family's process-wide NPN
/// match cache; the verification knob applies to whichever netlist is
/// kept, so with `--verify sat` every reported choice-aware mapping is a
/// SAT-proven theorem.
///
/// # Errors
///
/// As [`evaluate_circuit`].
pub fn evaluate_circuit_with_choices(
    synthesized: &Aig,
    choices: Option<&ChoiceAig>,
    library: &CharacterizedLibrary,
    config: &PipelineConfig,
) -> Result<CircuitResult, PipelineError> {
    let mut db = mapper_cut_db(&config.map);
    evaluate_circuit_with_cut_db(synthesized, choices, library, config, &mut db)
}

/// [`evaluate_circuit_with_choices`] against a caller-held cut database
/// keyed to `synthesized` (see [`mapper_cut_db`]). The Table-1 drivers
/// enumerate each circuit's cuts once and hand every per-family
/// evaluation a clone, so mapping the same network against three
/// libraries pays for one enumeration instead of three.
///
/// # Errors
///
/// As [`evaluate_circuit`].
pub fn evaluate_circuit_with_cut_db(
    synthesized: &Aig,
    choices: Option<&ChoiceAig>,
    library: &CharacterizedLibrary,
    config: &PipelineConfig,
    db: &mut aig::CutDb,
) -> Result<CircuitResult, PipelineError> {
    match run_job(synthesized, choices, library, config, db, None) {
        Ok(job) => Ok(job.result),
        Err(JobError::Pipeline(e)) => Err(e),
        Err(JobError::DeadlineExceeded) => unreachable!("no deadline was set"),
    }
}

/// The full product of one mapping job: the kept netlist (what a server
/// streams back to its client) together with the evaluated metrics (what
/// the QoR artifact records). [`evaluate_circuit`] and friends return
/// only [`CircuitResult`]; job-level callers such as `synthd` need the
/// netlist too, without mapping twice.
#[derive(Clone, Debug)]
pub struct MappedJob {
    /// The netlist the portfolio kept.
    pub netlist: MappedNetlist,
    /// Metrics of that netlist (gates, delay, power, area, …).
    pub result: CircuitResult,
}

/// Why a job-level run failed: the pipeline itself errored, or the
/// caller's deadline passed between stages.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The underlying pipeline failed (map or verify).
    Pipeline(PipelineError),
    /// The deadline handed to [`run_job`] expired before the job
    /// finished. The check is cooperative — evaluated at stage
    /// boundaries (map → verify → estimate), so a job stops within one
    /// stage of its deadline rather than instantly.
    DeadlineExceeded,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Pipeline(e) => e.fmt(f),
            JobError::DeadlineExceeded => write!(f, "job deadline exceeded"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<PipelineError> for JobError {
    fn from(e: PipelineError) -> Self {
        JobError::Pipeline(e)
    }
}

/// The job-level pipeline entry point: map an already-synthesized AIG
/// (with optional structural choices) against a caller-held cut
/// database, verify per the configured knob, and evaluate — returning
/// the kept netlist alongside the metrics. This is the unit of work a
/// `synthd` worker executes per request; the caller owns the `CutDb`, so
/// a warm cache (same circuit resubmitted, or the same circuit mapped
/// against another family) skips cut enumeration entirely.
///
/// `deadline`, when given, is checked cooperatively at every stage
/// boundary; a lapsed deadline aborts with
/// [`JobError::DeadlineExceeded`] instead of starting the next stage.
///
/// # Errors
///
/// [`JobError::Pipeline`] as [`evaluate_circuit`];
/// [`JobError::DeadlineExceeded`] when the deadline lapses mid-job.
pub fn run_job(
    synthesized: &Aig,
    choices: Option<&ChoiceAig>,
    library: &CharacterizedLibrary,
    config: &PipelineConfig,
    db: &mut aig::CutDb,
    deadline: Option<std::time::Instant>,
) -> Result<MappedJob, JobError> {
    let check = || -> Result<(), JobError> {
        match deadline {
            Some(d) if std::time::Instant::now() >= d => Err(JobError::DeadlineExceeded),
            _ => Ok(()),
        }
    };
    check()?;
    let (mapped, baseline) = {
        let _s = obs::span!("map");
        map_portfolio_with_cut_db(synthesized, choices, library, config, db)
            .map_err(JobError::Pipeline)?
    };
    check()?;
    {
        let _s = obs::span!("verify");
        verify_mapped(synthesized, &mapped, library, config)
            .map_err(|e| JobError::Pipeline(PipelineError::Verify(e)))?;
    }
    check()?;
    let _s = obs::span!("estimate");
    let mut result = evaluate_mapped(&mapped, library, config);
    drop(_s);
    result.gates_no_choice = baseline.map(|b| b.gates);
    result.delay_no_choice = baseline.map(|b| b.delay);
    Ok(MappedJob {
        netlist: mapped,
        result,
    })
}

/// Like [`evaluate_circuit`] but with the sequential reference simulator
/// ([`power_est::simulate_activity_serial`]) — the fully serial baseline
/// used by `engine::run_table1_serial`; bit-identical results.
///
/// # Errors
///
/// As [`evaluate_circuit`].
pub fn evaluate_circuit_serial(
    synthesized: &Aig,
    library: &CharacterizedLibrary,
    config: &PipelineConfig,
) -> Result<CircuitResult, PipelineError> {
    evaluate_circuit_serial_with_choices(synthesized, None, library, config)
}

/// Serial-reference twin of [`evaluate_circuit_with_choices`];
/// bit-identical results.
///
/// # Errors
///
/// As [`evaluate_circuit`].
pub fn evaluate_circuit_serial_with_choices(
    synthesized: &Aig,
    choices: Option<&ChoiceAig>,
    library: &CharacterizedLibrary,
    config: &PipelineConfig,
) -> Result<CircuitResult, PipelineError> {
    let (mapped, baseline) = map_portfolio(synthesized, choices, library, config)?;
    verify_mapped(synthesized, &mapped, library, config)?;
    let mut result = evaluate_mapped_with(
        &mapped,
        library,
        config,
        power_est::simulate_activity_serial,
    );
    result.gates_no_choice = baseline.map(|b| b.gates);
    result.delay_no_choice = baseline.map(|b| b.delay);
    Ok(result)
}

/// What the no-choice run would have reported for a circuit — measured
/// by [`map_portfolio`] on the primary-snapshot baseline while
/// arbitrating, and surfaced through
/// [`CircuitResult::gates_no_choice`] / [`CircuitResult::delay_no_choice`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoChoiceBaseline {
    /// Gate count of the baseline mapping.
    pub gates: usize,
    /// STA critical path of the baseline mapping (timed under the
    /// configured [`MapConfig::output_load`]).
    pub delay: Time,
}

/// The shared mapping portfolio. Plain mapping of the synthesized
/// network always runs; with choices configured, two more candidates
/// join: the choice-aware mapping, and the plain mapping of the choice
/// network's *primary* snapshot — the network the flow would have
/// produced without its `dch` step, i.e. the exact no-choice baseline.
///
/// Arbitration follows the configured objective. Under
/// [`Objective::Delay`] the candidate with the minimum *STA-verified*
/// critical path wins (ties → fewer gates, then the choice mapping,
/// then the synthesized network's) — so enabling `--choices` under the
/// delay objective structurally cannot regress a circuit's reported
/// delay. Under Area/Energy the smallest cover wins (ties prefer the
/// choice mapping), preserving the original gate-count guarantee. A
/// choice mapping that fails, e.g. because the sweep proved an output
/// constant, simply falls back.
///
/// Returns the kept netlist plus the baseline's gate count and STA
/// delay whenever the choice path was attempted. Exposed for bench
/// binaries that consume the mapped netlist directly.
///
/// # Errors
///
/// [`PipelineError::Map`] when a plain mapping fails (a failing
/// *choice* mapping only falls back).
pub fn map_portfolio(
    synthesized: &Aig,
    choices: Option<&ChoiceAig>,
    library: &CharacterizedLibrary,
    config: &PipelineConfig,
) -> Result<(MappedNetlist, Option<NoChoiceBaseline>), PipelineError> {
    let mut db = mapper_cut_db(&config.map);
    map_portfolio_with_cut_db(synthesized, choices, library, config, &mut db)
}

/// An empty cut database shaped for the configured mapper (`cut_k`
/// clamped into the supported range so construction never panics on a
/// config the mapper itself would reject with a typed error).
pub fn mapper_cut_db(map: &MapConfig) -> aig::CutDb {
    aig::CutDb::new(aig::CutConfig {
        k: map.cut_k.clamp(2, 6),
        max_cuts: map.max_cuts,
    })
}

/// [`map_portfolio`] against a caller-held cut database keyed to
/// `synthesized`: the plain mapping consumes (and tops up) the database;
/// the choice and primary-snapshot candidates map other networks and
/// are unaffected.
///
/// # Errors
///
/// As [`map_portfolio`].
pub fn map_portfolio_with_cut_db(
    synthesized: &Aig,
    choices: Option<&ChoiceAig>,
    library: &CharacterizedLibrary,
    config: &PipelineConfig,
    db: &mut aig::CutDb,
) -> Result<(MappedNetlist, Option<NoChoiceBaseline>), PipelineError> {
    let cache = crate::engine::match_cache(library.family);
    let plain = map_aig_with_cut_db(synthesized, library, cache, &config.map, db)?;
    let Some(choice) = choices.filter(|_| config.choices) else {
        return Ok((plain, None));
    };
    let choice_config = MapConfig {
        use_choices: true,
        ..config.map
    };
    let choice_mapped = map_choice_aig_with_cache(choice, library, cache, &choice_config).ok();
    // When the dch collapse was rejected, the synthesized network IS the
    // primary snapshot — don't map the same structure twice.
    let baseline = if same_structure(synthesized, choice.primary()) {
        None
    } else {
        Some(map_aig_with_cache(
            choice.primary(),
            library,
            cache,
            &config.map,
        )?)
    };
    let output_load = config.map.output_load_farads(library);
    let sta_delay =
        |netlist: &MappedNetlist| critical_path_with_load(netlist, library, output_load).critical;
    let baseline_ref = baseline.as_ref().unwrap_or(&plain);
    let no_choice = Some(NoChoiceBaseline {
        gates: baseline_ref.gate_count(),
        delay: sta_delay(baseline_ref),
    });
    // Candidate order encodes tie preference: choice first, then the
    // synthesized network's mapping, then the primary snapshot's.
    let candidates = [choice_mapped, Some(plain), baseline].into_iter().flatten();
    let best = match config.map.objective {
        Objective::Delay => candidates
            .map(|netlist| {
                let delay = sta_delay(&netlist).value();
                let gates = netlist.gate_count();
                (netlist, delay, gates)
            })
            .reduce(|best, cand| {
                // Relative tie window: STA delays of structurally
                // different covers are equal only up to summation noise.
                let eps = 1e-9 * best.1.abs().max(cand.1.abs());
                if cand.1 < best.1 - eps || ((cand.1 - best.1).abs() <= eps && cand.2 < best.2) {
                    cand
                } else {
                    best
                }
            })
            .map(|(netlist, _, _)| netlist),
        Objective::Area | Objective::Energy => candidates.min_by_key(MappedNetlist::gate_count),
    }
    .expect("at least the plain mapping exists");
    Ok((best, no_choice))
}

/// Structural identity of two networks (same node array, same outputs).
fn same_structure(a: &Aig, b: &Aig) -> bool {
    a.same_structure(b)
}

/// Applies the configured post-mapping verification.
fn verify_mapped(
    synthesized: &Aig,
    mapped: &MappedNetlist,
    library: &CharacterizedLibrary,
    config: &PipelineConfig,
) -> Result<(), VerifyError> {
    // 16 words = 1024 random patterns in Sim mode beyond 16 inputs.
    verify_mapping_with(synthesized, mapped, library, config.verify, config.seed, 16)
}

/// Evaluates an existing mapped netlist (exposed for reuse by benches).
pub fn evaluate_mapped(
    mapped: &MappedNetlist,
    library: &CharacterizedLibrary,
    config: &PipelineConfig,
) -> CircuitResult {
    evaluate_mapped_with(mapped, library, config, simulate_activity)
}

type SimulateFn =
    fn(&MappedNetlist, &CharacterizedLibrary, usize, u64) -> power_est::ActivityReport;

fn evaluate_mapped_with(
    mapped: &MappedNetlist,
    library: &CharacterizedLibrary,
    config: &PipelineConfig,
    simulate: SimulateFn,
) -> CircuitResult {
    let sta = critical_path_with_load(mapped, library, config.map.output_load_farads(library));
    let activity = simulate(mapped, library, config.patterns, config.seed);
    let power = estimate_power(mapped, library, &activity, config.frequency_hz);
    CircuitResult {
        gates: mapped.gate_count(),
        delay: sta.critical,
        power,
        area: mapped.area(library),
        transistors: mapped.transistor_count(library),
        gates_no_choice: None,
        delay_no_choice: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlib::characterize_library;
    use gate_lib::GateFamily;
    use techmap::Objective;

    #[test]
    fn pipeline_runs_end_to_end() {
        let aig = bench_circuits::benchmark_by_name("C1355")
            .expect("C1355")
            .aig;
        let synthesized = aig::synthesize(&aig);
        assert!(aig::equivalent(&aig, &synthesized, 3, 32));
        let config = PipelineConfig {
            patterns: 4096,
            ..PipelineConfig::default()
        };
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            let r = evaluate_circuit(&synthesized, &lib, &config).expect("mapping succeeds");
            assert!(r.gates > 50, "{family}: gates {}", r.gates);
            assert!(r.delay.value() > 0.0);
            assert!(r.total_power().value() > 0.0);
            assert!(r.edp().value() > 0.0);
            assert!(r.area > 0.0);
            assert!(r.transistors > r.gates);
        }
    }

    #[test]
    fn verify_knob_proves_the_mapping_in_the_pipeline() {
        let aig = bench_circuits::benchmark_by_name("t481").expect("t481").aig;
        let synthesized = aig::synthesize(&aig);
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        for verify in techmap::Verify::ALL {
            let config = PipelineConfig {
                patterns: 1024,
                verify,
                ..PipelineConfig::default()
            };
            let r = evaluate_circuit(&synthesized, &lib, &config)
                .unwrap_or_else(|e| panic!("{verify}: {e}"));
            assert!(r.gates > 0);
        }
    }

    #[test]
    fn objectives_trade_delay_for_area() {
        // The knobs must actually steer the mapper: an area-objective run
        // never occupies more silicon than the depth-greedy delay mapper
        // (with recovery enabled the delay objective's exact-local-area
        // rounds can legitimately beat single-pass area flow, so the
        // un-recovered mapper is the fair baseline), and the delay run is
        // at least as fast as the area run.
        let aig = bench_circuits::benchmark_by_name("C1355")
            .expect("C1355")
            .aig;
        let synthesized = aig::synthesize(&aig);
        let lib = characterize_library(GateFamily::Cmos);
        let result_for = |map: MapConfig| {
            let config = PipelineConfig {
                patterns: 2048,
                map,
                ..PipelineConfig::default()
            };
            evaluate_circuit(&synthesized, &lib, &config).expect("mapping succeeds")
        };
        let delay = result_for(MapConfig::for_objective(Objective::Delay));
        let greedy_delay = result_for(MapConfig {
            recovery_rounds: 0,
            ..MapConfig::default()
        });
        let area = result_for(MapConfig::for_objective(Objective::Area));
        assert!(
            area.area <= greedy_delay.area * (1.0 + 1e-9),
            "area mapping occupies more silicon: {} vs {}",
            area.area,
            greedy_delay.area
        );
        assert!(
            delay.delay.value() <= area.delay.value() * 1.0001,
            "delay mapping must be at least as fast: {} vs {}",
            delay.delay.value(),
            area.delay.value()
        );
        // Recovery sheds area without touching the optimal depth. The
        // structural guarantee (`arrival ≤ required`) holds on the DP's
        // *predicted* arrivals; on STA a small band is allowed because
        // the DP estimates loads from fanout buckets while STA prices
        // the emitted cover's exact pins, so a re-selection that holds
        // predicted delay can move STA by a few percent either way
        // (measured on C1355/CMOS: +1.6%).
        assert!(
            delay.delay.value() <= greedy_delay.delay.value() * 1.05,
            "recovery must not lengthen the critical path: {} vs {}",
            delay.delay.value(),
            greedy_delay.delay.value()
        );
        assert!(
            delay.area <= greedy_delay.area * (1.0 + 1e-9),
            "recovery must not grow the cover: {} vs {}",
            delay.area,
            greedy_delay.area
        );
    }

    #[test]
    fn ecc_prefers_generalized_library() {
        // C1355 is an XOR-dominated circuit: the generalized library must
        // win on gates, delay and power simultaneously.
        let aig = bench_circuits::benchmark_by_name("C1355")
            .expect("C1355")
            .aig;
        let synthesized = aig::synthesize(&aig);
        let config = PipelineConfig {
            patterns: 8192,
            ..PipelineConfig::default()
        };
        let gen = characterize_library(GateFamily::CntfetGeneralized);
        let conv = characterize_library(GateFamily::CntfetConventional);
        let r_gen = evaluate_circuit(&synthesized, &gen, &config).expect("mapping succeeds");
        let r_conv = evaluate_circuit(&synthesized, &conv, &config).expect("mapping succeeds");
        assert!(
            r_gen.gates < r_conv.gates,
            "{} vs {}",
            r_gen.gates,
            r_conv.gates
        );
        assert!(r_gen.delay.value() < r_conv.delay.value());
        assert!(r_gen.total_power().value() < r_conv.total_power().value());
    }
}
