//! The experiment engine: once-per-process caches for the expensive
//! mapping state and parallel drivers for the paper's evaluation matrix.
//!
//! Two kinds of state are cached behind `OnceLock`s, each built **exactly
//! once per process** no matter how many call sites ask:
//!
//! * [`library`] — the [`CharacterizedLibrary`] of a [`GateFamily`]
//!   (46 cells × leakage patterns through the spice-lite solver; seconds
//!   of work). Test hook: [`characterization_count`].
//! * [`match_cache`] — the immutable [`NpnMatchCache`] of a family (every
//!   cell NPN-canonized once). All circuits and all worker threads share
//!   one instance; a mapping run only allocates its per-run canonization
//!   memo. Test hook: [`match_cache_build_count`].
//! * [`rewrite_library`] — the NPN-class optimal-subgraph library the
//!   `rw` synthesis pass rewrites against (one instance per process,
//!   shared by every flow run on every thread; the drivers warm it before
//!   fanning out so no worker pays the build). Test hook:
//!   [`rewrite_library_build_count`].
//!
//! On top of the caches, [`run_table1_subset`] fans the circuit × family
//! evaluation matrix out over the rayon pool: benchmark synthesis is one
//! parallel pass, and each (circuit, family) pipeline run is an independent
//! task. Results are reassembled in paper row order, and every stage is
//! deterministic (fixed seeds, order-preserving joins), so the parallel
//! table is identical to the serial one. Mapping failures (impossible for
//! the built-in libraries, reachable with external ones) propagate as
//! [`PipelineError`] instead of panicking.

use crate::experiments::{Table1, Table1Config, Table1Row};
use crate::pipeline::{CircuitResult, PipelineError};
use aig::ChoiceAig;
use charlib::{characterize_library, CharacterizedLibrary};
use gate_lib::GateFamily;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use techmap::NpnMatchCache;

static LIBRARIES: [OnceLock<CharacterizedLibrary>; GateFamily::ALL.len()] =
    [OnceLock::new(), OnceLock::new(), OnceLock::new()];

static MATCH_CACHES: [OnceLock<NpnMatchCache>; GateFamily::ALL.len()] =
    [OnceLock::new(), OnceLock::new(), OnceLock::new()];

/// Characterization runs performed by [`library`] in this process.
static CHARACTERIZATIONS: AtomicUsize = AtomicUsize::new(0);

/// NPN match-cache builds performed by [`match_cache`] in this process.
static MATCH_CACHE_BUILDS: AtomicUsize = AtomicUsize::new(0);

fn family_index(family: GateFamily) -> usize {
    GateFamily::ALL
        .iter()
        .position(|&f| f == family)
        .expect("every family appears in GateFamily::ALL")
}

/// The process-wide characterized library for `family`.
///
/// The first call per family runs [`characterize_library`]; every later
/// call (from any thread) returns the same `&'static` reference. Use this
/// instead of calling `characterize_library` directly unless you need a
/// non-default technology point (e.g. a V_DD sweep) or are deliberately
/// timing cold characterization.
pub fn library(family: GateFamily) -> &'static CharacterizedLibrary {
    LIBRARIES[family_index(family)].get_or_init(|| {
        CHARACTERIZATIONS.fetch_add(1, Ordering::Relaxed);
        characterize_library(family)
    })
}

/// The process-wide NPN match cache for `family`.
///
/// Built from the family's generated cell list on first use — no library
/// characterization required, so this is cheap to warm and valid for
/// *every* technology point of the family (the class table depends only
/// on cell functions). Every mapping run in the process shares the one
/// instance; [`match_cache_build_count`] counts the builds.
pub fn match_cache(family: GateFamily) -> &'static NpnMatchCache {
    MATCH_CACHES[family_index(family)].get_or_init(|| {
        MATCH_CACHE_BUILDS.fetch_add(1, Ordering::Relaxed);
        NpnMatchCache::for_family(family).expect("every built-in family provides an INV cell")
    })
}

/// All three libraries in Table-1 column order, characterizing any that
/// are not cached yet.
pub fn libraries() -> [&'static CharacterizedLibrary; 3] {
    [
        library(GateFamily::CntfetGeneralized),
        library(GateFamily::CntfetConventional),
        library(GateFamily::Cmos),
    ]
}

/// How many characterization runs the cache has performed in this process
/// (test hook: after any number of engine calls this is at most 3).
pub fn characterization_count() -> usize {
    CHARACTERIZATIONS.load(Ordering::Relaxed)
}

/// How many NPN match caches have been built in this process (test hook:
/// at most one per gate family, however many circuits were mapped).
pub fn match_cache_build_count() -> usize {
    MATCH_CACHE_BUILDS.load(Ordering::Relaxed)
}

/// The process-wide rewrite library (the per-NPN-class optimal subgraphs
/// the `rw` pass instantiates). The `OnceLock` lives in `aig::rewrite` so
/// the pass itself can reach it; this accessor is the engine-level warm
/// point — the Table-1 drivers call it once before fanning out whenever
/// the configured flow contains a rewrite pass.
pub fn rewrite_library() -> &'static aig::RewriteLibrary {
    aig::rewrite::library()
}

/// How many times the rewrite library has been built in this process
/// (test hook: at most once, however many flows ran on however many
/// threads).
pub fn rewrite_library_build_count() -> usize {
    aig::rewrite::library_build_count()
}

/// Runs the full Table-1 experiment through the engine: libraries and
/// match caches from the process caches, circuit × family matrix on the
/// rayon pool.
///
/// # Errors
///
/// Propagates the first [`PipelineError`] in row order (unreachable with the
/// built-in libraries and benchmarks).
pub fn run_table1(config: &Table1Config) -> Result<Table1, PipelineError> {
    run_table1_subset(config, None)
}

/// Like [`run_table1`] but restricted to the named benchmark rows (pass
/// `None` for all twelve).
///
/// Synthesis runs the flow script of
/// [`PipelineConfig::flow`](crate::pipeline::PipelineConfig::flow),
/// parsed once per call; the shared rewrite library is warmed before the
/// fan-out whenever the flow rewrites.
///
/// Parallel structure: one synthesis task per benchmark, then one pipeline
/// task per (circuit, family) pair — for the full table that is 12 + 36
/// independent tasks. Joins preserve input order, so rows come back in
/// paper order and the result is bit-identical to [`run_table1_serial`].
///
/// # Errors
///
/// [`PipelineError::Flow`] when the flow script is malformed; otherwise
/// the first [`PipelineError`] in row order.
pub fn run_table1_subset(
    config: &Table1Config,
    names: Option<&[&str]>,
) -> Result<Table1, PipelineError> {
    let flow = parse_flow(&config.pipeline)?;
    if flow.uses_rewrite() {
        rewrite_library();
    }
    let libs = libraries();
    let benches = selected_benchmarks(names);
    let synthesized: Vec<(aig::Aig, Option<ChoiceAig>)> = benches
        .par_iter()
        .map(|bench| synthesize_with_choices(&flow, &bench.aig, &config.pipeline))
        .collect();
    // Enumerate each circuit's mapper cuts once, up front; every
    // per-family job below maps against a clone of the filled database
    // instead of re-enumerating the same network per library.
    let cut_dbs: Vec<aig::CutDb> = synthesized
        .par_iter()
        .map(|(aig, _)| {
            let mut db = crate::pipeline::mapper_cut_db(&config.pipeline.map);
            db.ensure(&aig.cleanup());
            db
        })
        .collect();
    let jobs: Vec<(usize, usize)> = (0..benches.len())
        .flat_map(|ci| (0..GateFamily::ALL.len()).map(move |fi| (ci, fi)))
        .collect();
    let results: Vec<Result<CircuitResult, PipelineError>> = jobs
        .into_par_iter()
        .map(|(ci, fi)| {
            let (aig, choices) = &synthesized[ci];
            let mut db = cut_dbs[ci].clone();
            crate::pipeline::evaluate_circuit_with_cut_db(
                aig,
                choices.as_ref(),
                libs[fi],
                &config.pipeline,
                &mut db,
            )
        })
        .collect();
    let results: Vec<CircuitResult> = results.into_iter().collect::<Result<_, _>>()?;
    Ok(assemble(benches, &synthesized, results))
}

/// Parses the configured flow script, appending a `dch` step when
/// choice-aware mapping is requested on a script that has none.
///
/// # Errors
///
/// [`PipelineError::Flow`] on a malformed script.
pub fn parse_flow(pipeline: &crate::pipeline::PipelineConfig) -> Result<aig::Flow, PipelineError> {
    let flow = aig::Flow::parse(&pipeline.flow)?;
    Ok(if pipeline.choices {
        flow.with_choices()
    } else {
        flow
    })
}

/// Synthesizes one benchmark through the flow, collecting the choice
/// network when [`PipelineConfig::choices`](crate::pipeline::PipelineConfig::choices)
/// asks for it (the flow is assumed to already carry a `dch` step — see
/// [`parse_flow`]).
pub fn synthesize_with_choices(
    flow: &aig::Flow,
    aig: &aig::Aig,
    pipeline: &crate::pipeline::PipelineConfig,
) -> (aig::Aig, Option<ChoiceAig>) {
    if pipeline.choices {
        let (synthesized, choices, _) = flow.run_with_choices(aig);
        (synthesized, choices)
    } else {
        (flow.run(aig), None)
    }
}

/// Serial reference implementation of [`run_table1_subset`]: identical
/// work, identical results, **no threads anywhere** — the inner pattern
/// simulation also uses the sequential reference
/// ([`crate::pipeline::evaluate_circuit_serial`]), so this is an honest
/// single-thread baseline. Kept callable so the `engine_smoke` binary and
/// the determinism tests can measure and verify the parallel driver
/// against it.
///
/// # Errors
///
/// Propagates the first [`PipelineError`] in row order.
pub fn run_table1_serial(
    config: &Table1Config,
    names: Option<&[&str]>,
) -> Result<Table1, PipelineError> {
    let flow = parse_flow(&config.pipeline)?;
    let libs = libraries();
    let benches = selected_benchmarks(names);
    let synthesized: Vec<(aig::Aig, Option<ChoiceAig>)> = benches
        .iter()
        .map(|bench| synthesize_with_choices(&flow, &bench.aig, &config.pipeline))
        .collect();
    let results: Vec<CircuitResult> = synthesized
        .iter()
        .flat_map(|(aig, choices)| {
            libs.iter().map(|lib| {
                crate::pipeline::evaluate_circuit_serial_with_choices(
                    aig,
                    choices.as_ref(),
                    lib,
                    &config.pipeline,
                )
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(assemble(benches, &synthesized, results))
}

fn selected_benchmarks(names: Option<&[&str]>) -> Vec<bench_circuits::Benchmark> {
    bench_circuits::table1_benchmarks()
        .into_iter()
        .filter(|bench| names.is_none_or(|names| names.contains(&bench.name)))
        .collect()
}

fn assemble(
    benches: Vec<bench_circuits::Benchmark>,
    synthesized: &[(aig::Aig, Option<ChoiceAig>)],
    results: Vec<CircuitResult>,
) -> Table1 {
    let families = GateFamily::ALL.len();
    assert_eq!(results.len(), benches.len() * families);
    assert_eq!(synthesized.len(), benches.len());
    let mut results = results.into_iter();
    let rows = benches
        .into_iter()
        .zip(synthesized)
        .map(|(bench, (aig, _))| {
            let per_family: Vec<CircuitResult> = results.by_ref().take(families).collect();
            Table1Row {
                name: bench.name.to_owned(),
                function: bench.function.to_owned(),
                ands: aig.and_count(),
                depth: aig.depth(),
                results: per_family.try_into().expect("three families per row"),
            }
        })
        .collect();
    Table1 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_one_static_instance_per_family() {
        let before = characterization_count();
        let a = library(GateFamily::CntfetGeneralized);
        let mid = characterization_count();
        let b = library(GateFamily::CntfetGeneralized);
        let after = characterization_count();
        // Same allocation, not merely equal contents.
        assert!(std::ptr::eq(a, b));
        // The second call never re-characterizes; the first did at most
        // once (zero if another test already warmed the cache).
        assert!(mid - before <= 1, "first call ran {} times", mid - before);
        assert_eq!(mid, after, "second call must hit the cache");
        assert!(characterization_count() <= GateFamily::ALL.len());
    }

    #[test]
    fn match_cache_builds_exactly_once_per_family() {
        let before = match_cache_build_count();
        let a = match_cache(GateFamily::Cmos);
        let mid = match_cache_build_count();
        let b = match_cache(GateFamily::Cmos);
        let after = match_cache_build_count();
        assert!(std::ptr::eq(a, b), "same shared instance on every access");
        assert!(mid - before <= 1, "first call built {} times", mid - before);
        assert_eq!(mid, after, "second call must hit the cache");

        // Driving circuits through the engine must not rebuild caches.
        let config = Table1Config {
            pipeline: crate::pipeline::PipelineConfig {
                patterns: 512,
                ..Default::default()
            },
        };
        let names = Some(&["t481"][..]);
        let warm = match_cache_build_count();
        run_table1_subset(&config, names).expect("built-in benchmarks map");
        run_table1_subset(&config, names).expect("built-in benchmarks map");
        assert_eq!(
            match_cache_build_count(),
            warm.max(GateFamily::ALL.len()),
            "table runs must reuse the shared match caches"
        );
        assert!(match_cache_build_count() <= GateFamily::ALL.len());
    }

    #[test]
    fn rewrite_library_is_shared_and_built_at_most_once() {
        let a = rewrite_library();
        let b = rewrite_library();
        assert!(std::ptr::eq(a, b), "same shared instance on every access");
        assert_eq!(a.class_count(), 222, "all 4-variable NPN classes");
        assert!(rewrite_library_build_count() <= 1);
    }

    #[test]
    fn malformed_flow_is_a_typed_error_not_a_panic() {
        let config = Table1Config {
            pipeline: crate::pipeline::PipelineConfig {
                flow: "b; frobnicate".to_owned(),
                patterns: 64,
                ..Default::default()
            },
        };
        let err = run_table1_subset(&config, Some(&["t481"])).unwrap_err();
        assert!(matches!(err, PipelineError::Flow(_)), "{err}");
    }

    #[test]
    fn custom_flow_threads_through_the_table_drivers() {
        // A balance-only flow must hand the mapper a network no smaller
        // than the default flow's (which rewrites and refactors too) —
        // and both must run end to end through the parallel driver.
        let pipeline = crate::pipeline::PipelineConfig {
            patterns: 256,
            ..Default::default()
        };
        let names = Some(&["t481"][..]);
        let default_run = run_table1_subset(
            &Table1Config {
                pipeline: pipeline.clone(),
            },
            names,
        )
        .expect("default flow maps");
        let balance_only = run_table1_subset(
            &Table1Config {
                pipeline: crate::pipeline::PipelineConfig {
                    flow: "b".to_owned(),
                    ..pipeline
                },
            },
            names,
        )
        .expect("balance-only flow maps");
        assert!(
            default_run.rows[0].ands <= balance_only.rows[0].ands,
            "default {} vs balance-only {}",
            default_run.rows[0].ands,
            balance_only.rows[0].ands
        );
        assert!(default_run.rows[0].depth > 0);
    }

    #[test]
    fn choice_mapping_never_regresses_and_records_the_delta() {
        let pipeline = crate::pipeline::PipelineConfig {
            patterns: 256,
            choices: true,
            ..Default::default()
        };
        let names = Some(&["t481"][..]);
        let table =
            run_table1_subset(&Table1Config { pipeline }, names).expect("choice-aware run maps");
        for r in &table.rows[0].results {
            // Default objective is Delay: the portfolio arbitrates on
            // STA critical path, so the delay guarantee holds (gates may
            // go either way — the delta is recorded, not bounded).
            assert!(r.gates_no_choice.is_some());
            let plain_delay = r
                .delay_no_choice
                .expect("choice runs record the no-choice STA delay")
                .value();
            assert!(
                r.delay.value() <= plain_delay * (1.0 + 1e-9),
                "the delay portfolio must never keep a slower mapping: {} vs {plain_delay}",
                r.delay.value()
            );
        }
        // Under the area objective the original gate-count guarantee
        // still holds.
        let area_pipeline = crate::pipeline::PipelineConfig {
            patterns: 256,
            choices: true,
            map: techmap::MapConfig::for_objective(techmap::Objective::Area),
            ..Default::default()
        };
        let area_table = run_table1_subset(
            &Table1Config {
                pipeline: area_pipeline,
            },
            names,
        )
        .expect("area choice-aware run maps");
        for r in &area_table.rows[0].results {
            let plain = r
                .gates_no_choice
                .expect("choice runs record the no-choice gate count");
            assert!(
                r.gates <= plain,
                "the area portfolio must never keep a worse choice mapping: {} vs {plain}",
                r.gates
            );
        }
        // Without choices, no delta is recorded.
        let base = run_table1_subset(
            &Table1Config {
                pipeline: crate::pipeline::PipelineConfig {
                    patterns: 256,
                    ..Default::default()
                },
            },
            names,
        )
        .expect("plain run maps");
        assert!(base.rows[0].results[0].gates_no_choice.is_none());
    }

    #[test]
    fn parallel_and_serial_tables_agree_with_choices() {
        let config = Table1Config {
            pipeline: crate::pipeline::PipelineConfig {
                patterns: 512,
                choices: true,
                verify: techmap::Verify::Sat,
                ..Default::default()
            },
        };
        let names = Some(&["C1908"][..]);
        let par = run_table1_subset(&config, names).expect("parallel choice run maps");
        let ser = run_table1_serial(&config, names).expect("serial choice run maps");
        assert_eq!(format!("{par}"), format!("{ser}"));
    }

    #[test]
    fn parallel_and_serial_tables_agree() {
        let config = Table1Config {
            pipeline: crate::pipeline::PipelineConfig {
                patterns: 2048,
                ..Default::default()
            },
        };
        let names = Some(&["C1355"][..]);
        let par = run_table1_subset(&config, names).expect("parallel run maps");
        let ser = run_table1_serial(&config, names).expect("serial run maps");
        assert_eq!(format!("{par}"), format!("{ser}"));
        assert!(characterization_count() <= GateFamily::ALL.len());
    }
}
