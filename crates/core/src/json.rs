//! Hand-rolled JSON scalar helpers shared by every artifact emitter.
//!
//! The workspace is offline-vendored and all of its JSON documents are
//! flat dictionaries of labels and numbers, so a serializer dependency
//! would be pure weight. These helpers are the single source of truth
//! for how a string, a finite `f64`, or a duration is rendered; the
//! bench binaries (`bench::qor`) and the synthesis server (`serve`)
//! both build their documents out of them, so the two surfaces cannot
//! drift apart formatting-wise.

use std::fmt::Write as _;
use std::time::Duration;

/// A JSON string literal (the labels emitted here are plain ASCII, but
/// quotes and backslashes are escaped for safety).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number for a duration, in seconds.
pub fn json_seconds(d: Duration) -> String {
    json_f64(d.as_secs_f64())
}

/// A finite `f64` as a JSON number (exponent notation).
pub fn json_f64(x: f64) -> String {
    debug_assert!(x.is_finite(), "QoR metrics are finite");
    format!("{x:.6e}")
}

/// Writes an artifact to `path`, exiting with a message on I/O failure
/// (binary helper).
pub fn write_or_exit(path: &str, content: &str) {
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote QoR artifact to {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }

    #[test]
    fn numbers_are_json_compatible() {
        assert_eq!(json_f64(0.0), "0.000000e0");
        assert_eq!(json_f64(1.5e-12), "1.500000e-12");
        // Exponent-notation numbers round-trip as numbers.
        assert_eq!(json_f64(6.02e23).parse::<f64>().unwrap(), 6.02e23);
    }

    #[test]
    fn durations_render_as_seconds() {
        assert_eq!(json_seconds(Duration::from_millis(1500)), "1.500000e0");
    }
}
