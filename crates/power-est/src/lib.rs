//! Random-pattern power estimation over mapped netlists — the paper's §4
//! circuit-level methodology ("power consumption and EDP were estimated
//! using 640K random patterns").
//!
//! * [`simulate_activity`] — bit-parallel (64-way) random simulation
//!   counting per-net toggles and signal probabilities, fanned out over
//!   the rayon pool in deterministic chunks (see
//!   [`simulate_activity_serial`] for the bit-identical sequential
//!   reference);
//! * [`estimate_power`] — rolls the activity into the eq. (1)–(5) power
//!   model: per-net dynamic power from real toggle rates, state-dependent
//!   leakage weighted by per-instance input-state probabilities, the
//!   0.15·P_D short-circuit conjecture, and EDP = (P_T/f)·delay.
//!
//! # Example
//!
//! ```
//! use aig::Aig;
//! use charlib::characterize_library;
//! use gate_lib::GateFamily;
//! use power_est::{estimate_power, simulate_activity};
//! use techmap::{map_aig, critical_path, MapConfig};
//!
//! let mut aig = Aig::new();
//! let a = aig.input();
//! let b = aig.input();
//! let x = aig.xor(a, b);
//! aig.output(x);
//! let lib = characterize_library(GateFamily::CntfetGeneralized);
//! let mapped = map_aig(&aig, &lib, &MapConfig::default()).expect("mapping succeeds");
//! let activity = simulate_activity(&mapped, &lib, 4096, 7);
//! let power = estimate_power(&mapped, &lib, &activity, 1.0e9);
//! assert!(power.total().value() > 0.0);
//! ```

pub mod estimate;
pub mod simulate;

pub use estimate::{estimate_power, PowerBreakdown};
pub use simulate::{simulate_activity, simulate_activity_serial, ActivityReport, CHUNK_WORDS};
