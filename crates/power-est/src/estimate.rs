//! Rolling simulated activity into the paper's power model (eq. 1–5).

use crate::simulate::ActivityReport;
use charlib::SHORT_CIRCUIT_FRACTION;
use device::{Energy, EnergyDelay, Frequency, Power, Time};
use techmap::MappedNetlist;

/// Circuit-level power breakdown.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerBreakdown {
    /// Dynamic power P_D (per-net toggle rates × net capacitance).
    pub dynamic: Power,
    /// Short-circuit power P_SC = 0.15 · P_D.
    pub short_circuit: Power,
    /// Static sub-threshold power P_S (state-weighted).
    pub static_sub: Power,
    /// Gate-leakage power P_G (state-weighted).
    pub gate_leak: Power,
    /// Operating frequency used.
    pub frequency: Frequency,
}

impl PowerBreakdown {
    /// Total power P_T.
    pub fn total(&self) -> Power {
        self.dynamic + self.short_circuit + self.static_sub + self.gate_leak
    }

    /// Energy per cycle E = P_T / f.
    pub fn energy_per_cycle(&self) -> Energy {
        self.total() / self.frequency
    }

    /// Energy–delay product, the paper's EDP column: (P_T/f) · delay.
    pub fn edp(&self, delay: Time) -> EnergyDelay {
        self.energy_per_cycle() * delay
    }
}

/// Estimates the power of a mapped netlist from simulated activity.
///
/// Dynamic power uses exact per-net toggle rates; leakage weights each
/// instance's per-input-state I_off/I_g by the product of its pin signal
/// probabilities (independent-input approximation, standard in probabilistic
/// power estimation).
pub fn estimate_power(
    netlist: &MappedNetlist,
    library: &charlib::CharacterizedLibrary,
    activity: &ActivityReport,
    frequency_hz: f64,
) -> PowerBreakdown {
    let vdd = library.tech.vdd;
    // Net capacitances: driver intrinsic output cap + consumer pin caps.
    let mut net_cap = vec![0.0f64; netlist.net_count()];
    for (i, inst) in netlist.instances.iter().enumerate() {
        let cell = &library.gates[inst.gate];
        net_cap[netlist.instance_output_net(i)] += cell.c_out;
        for (pin, r) in inst.inputs.iter().enumerate() {
            net_cap[r.net] += cell.input_caps[pin];
        }
    }
    // Dynamic power: α is "toggles per cycle"; one pattern = one cycle.
    let mut pd = 0.0f64;
    for (net, &cap) in net_cap.iter().enumerate() {
        pd += activity.activity(net) * cap * frequency_hz * vdd * vdd;
    }
    // State-weighted leakage.
    let mut ioff = 0.0f64;
    let mut ig = 0.0f64;
    for inst in &netlist.instances {
        let cell = &library.gates[inst.gate];
        let n = cell.gate.n_inputs;
        // Pin one-probabilities, honoring complement references.
        let probs: Vec<f64> = inst
            .inputs
            .iter()
            .map(|r| {
                let p = activity.probability(r.net);
                if r.inverted {
                    1.0 - p
                } else {
                    p
                }
            })
            .collect();
        for m in 0..(1usize << n) {
            let mut w = 1.0f64;
            for (k, &p) in probs.iter().enumerate() {
                w *= if (m >> k) & 1 == 1 { p } else { 1.0 - p };
            }
            if w == 0.0 {
                continue;
            }
            ioff += w * cell.ioff_for_state(m);
            ig += w * cell.ig_for_state(m);
        }
    }
    let dynamic = Power::new(pd);
    PowerBreakdown {
        dynamic,
        short_circuit: Power::new(SHORT_CIRCUIT_FRACTION * pd),
        static_sub: Power::new(ioff * vdd),
        gate_leak: Power::new(ig * vdd),
        frequency: Frequency::new(frequency_hz),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::simulate_activity;
    use aig::Aig;
    use charlib::characterize_library;
    use gate_lib::GateFamily;
    use techmap::{critical_path, map_aig, MapConfig};

    fn adder_aig(bits: usize) -> Aig {
        let mut aig = Aig::new();
        let a: Vec<_> = (0..bits).map(|_| aig.input()).collect();
        let b: Vec<_> = (0..bits).map(|_| aig.input()).collect();
        let mut carry = aig::Lit::FALSE;
        for i in 0..bits {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            let c1 = aig.and(a[i], b[i]);
            let c2 = aig.and(axb, carry);
            carry = aig.or(c1, c2);
            aig.output(sum);
        }
        aig.output(carry);
        aig
    }

    fn family_power(family: GateFamily, aig: &Aig) -> (PowerBreakdown, f64) {
        let lib = characterize_library(family);
        let mapped = map_aig(aig, &lib, &MapConfig::default()).expect("mapping succeeds");
        let act = simulate_activity(&mapped, &lib, 1 << 13, 11);
        let power = estimate_power(&mapped, &lib, &act, 1.0e9);
        let delay = critical_path(&mapped, &lib).critical.value();
        (power, delay)
    }

    #[test]
    fn breakdown_is_positive_and_ordered() {
        let aig = adder_aig(8);
        for family in GateFamily::ALL {
            let (p, delay) = family_power(family, &aig);
            assert!(p.dynamic.value() > 0.0);
            assert!(p.static_sub.value() > 0.0);
            assert!(p.gate_leak.value() > 0.0);
            assert!(delay > 0.0);
            // Static is well below dynamic at 1 GHz (paper: 1–2 orders).
            assert!(
                p.dynamic.value() > 5.0 * p.static_sub.value(),
                "{family}: P_D {} vs P_S {}",
                p.dynamic,
                p.static_sub
            );
            assert!(
                (p.short_circuit.value() / p.dynamic.value() - 0.15).abs() < 1e-12,
                "P_SC must be exactly the 0.15 conjecture"
            );
        }
    }

    #[test]
    fn cntfet_beats_cmos_on_power_and_edp() {
        let aig = adder_aig(8);
        let (p_gen, d_gen) = family_power(GateFamily::CntfetGeneralized, &aig);
        let (p_cmos, d_cmos) = family_power(GateFamily::Cmos, &aig);
        let pt_gen = p_gen.total().value();
        let pt_cmos = p_cmos.total().value();
        assert!(
            pt_gen < pt_cmos,
            "generalized CNTFET must dissipate less: {pt_gen} vs {pt_cmos}"
        );
        let edp_gen = p_gen.edp(device::Time::new(d_gen)).value();
        let edp_cmos = p_cmos.edp(device::Time::new(d_cmos)).value();
        let ratio = edp_cmos / edp_gen;
        assert!(ratio > 5.0, "EDP advantage should be large, got {ratio}");
    }

    #[test]
    fn cmos_static_an_order_above_cntfet() {
        let aig = adder_aig(8);
        let (p_cnt, _) = family_power(GateFamily::CntfetConventional, &aig);
        let (p_cmos, _) = family_power(GateFamily::Cmos, &aig);
        let ratio = p_cmos.static_sub.value() / p_cnt.static_sub.value();
        assert!(ratio > 5.0, "P_S ratio {ratio}");
    }

    #[test]
    fn energy_chain_consistency() {
        let aig = adder_aig(4);
        let (p, delay) = family_power(GateFamily::Cmos, &aig);
        let e = p.energy_per_cycle();
        let edp = p.edp(device::Time::new(delay));
        assert!((edp.value() - e.value() * delay).abs() < 1e-40);
    }
}
