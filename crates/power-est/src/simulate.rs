//! Bit-parallel random-pattern simulation with toggle counting.
//!
//! # Parallel structure and determinism
//!
//! The requested pattern budget is split into fixed-size **chunks** of
//! [`CHUNK_WORDS`] 64-pattern words. Each chunk draws its primary-input
//! words from its own RNG stream, seeded from the user seed and the chunk
//! index (`chunk_seed`), and accumulates toggle/one counts locally;
//! chunk results are then merged in chunk order, adding the one boundary
//! transition between consecutive chunks per net.
//!
//! Because the chunk partition, the per-chunk streams, and the merge order
//! are all independent of scheduling, [`simulate_activity`] (which fans
//! chunks out over the rayon pool) is **bit-identical** to
//! [`simulate_activity_serial`] (the sequential reference) for a fixed
//! seed, on any machine and any thread count.

use charlib::CharacterizedLibrary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use techmap::MappedNetlist;

/// Words of 64 patterns per simulation chunk (4096 patterns). Fixed: the
/// chunk partition is part of the deterministic stream contract, so it
/// must not depend on thread count or machine size.
pub const CHUNK_WORDS: usize = 64;

/// Per-net activity statistics from a random-pattern run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActivityReport {
    /// Number of patterns actually simulated.
    ///
    /// Simulation is word-parallel, so requests are rounded **up** to the
    /// next multiple of 64 (and a request of 0 still simulates one word):
    /// asking for 1000 patterns simulates 1024 and reports `patterns ==
    /// 1024`. [`ActivityReport::activity`] and
    /// [`ActivityReport::probability`] normalize by this field, never by
    /// the requested count.
    pub patterns: usize,
    /// Per-net toggle counts (transitions between consecutive patterns).
    pub toggles: Vec<u64>,
    /// Per-net count of patterns where the net was 1.
    pub ones: Vec<u64>,
}

impl ActivityReport {
    /// Switching activity of a net: toggles per pattern.
    pub fn activity(&self, net: usize) -> f64 {
        self.toggles[net] as f64 / self.patterns.max(1) as f64
    }

    /// Signal probability of a net.
    pub fn probability(&self, net: usize) -> f64 {
        self.ones[net] as f64 / self.patterns.max(1) as f64
    }
}

/// The RNG stream seed for one chunk: the user seed xored with a
/// SplitMix64-mixed chunk index, so adjacent chunks get decorrelated
/// streams while chunk identity stays a pure function of (seed, index).
fn chunk_seed(seed: u64, chunk: usize) -> u64 {
    let mut ix = chunk as u64;
    seed ^ if chunk == 0 {
        0
    } else {
        rand::split_mix_64(&mut ix)
    }
}

/// Per-chunk accumulator, merged in chunk order by [`merge_chunks`].
struct ChunkStats {
    /// Per-net toggles inside the chunk (internal + intra-chunk word
    /// boundaries).
    toggles: Vec<u64>,
    /// Per-net ones count inside the chunk.
    ones: Vec<u64>,
    /// Per-net value of the chunk's first pattern (bit 0 of first word).
    first: Vec<bool>,
    /// Per-net value of the chunk's last pattern (bit 63 of last word).
    last: Vec<bool>,
}

/// Simulates `words` pattern words from one RNG stream.
fn simulate_chunk(
    netlist: &MappedNetlist,
    library: &CharacterizedLibrary,
    words: usize,
    mut rng: StdRng,
) -> ChunkStats {
    debug_assert!(words > 0);
    let n_nets = netlist.net_count();
    let mut toggles = vec![0u64; n_nets];
    let mut ones = vec![0u64; n_nets];
    let mut first = vec![false; n_nets];
    let mut last = vec![false; n_nets];
    let mut prev_last: Vec<Option<bool>> = vec![None; n_nets];
    // Reused buffers: the per-word loop is the hot path of the whole
    // power estimate, so neither the PI words nor the net values allocate
    // after the first iteration.
    let mut pi_words = vec![0u64; netlist.pi_count];
    let mut values: Vec<u64> = Vec::with_capacity(n_nets);
    for word_index in 0..words {
        for w in pi_words.iter_mut() {
            *w = rng.gen();
        }
        netlist.simulate64_into(library, &pi_words, &mut values);
        for (net, &w) in values.iter().enumerate() {
            ones[net] += w.count_ones() as u64;
            // Transitions inside the word: bit k vs bit k+1.
            let internal = (w ^ (w >> 1)) & 0x7FFF_FFFF_FFFF_FFFF;
            toggles[net] += internal.count_ones() as u64;
            // Boundary with the previous word of this chunk.
            if let Some(prev) = prev_last[net] {
                if prev != (w & 1 == 1) {
                    toggles[net] += 1;
                }
            } else {
                first[net] = w & 1 == 1;
            }
            prev_last[net] = Some((w >> 63) & 1 == 1);
            if word_index == words - 1 {
                last[net] = (w >> 63) & 1 == 1;
            }
        }
    }
    ChunkStats {
        toggles,
        ones,
        first,
        last,
    }
}

/// Folds chunk accumulators in chunk order, adding the boundary toggle
/// between consecutive chunks.
fn merge_chunks(n_nets: usize, total_words: usize, chunks: Vec<ChunkStats>) -> ActivityReport {
    let mut toggles = vec![0u64; n_nets];
    let mut ones = vec![0u64; n_nets];
    let mut prev_last: Option<Vec<bool>> = None;
    for chunk in chunks {
        for net in 0..n_nets {
            toggles[net] += chunk.toggles[net];
            ones[net] += chunk.ones[net];
        }
        if let Some(prev) = prev_last {
            for net in 0..n_nets {
                if prev[net] != chunk.first[net] {
                    toggles[net] += 1;
                }
            }
        }
        prev_last = Some(chunk.last);
    }
    ActivityReport {
        patterns: total_words * 64,
        toggles,
        ones,
    }
}

/// Number of words to simulate for a request of `patterns` patterns (see
/// [`ActivityReport::patterns`] for the rounding contract).
fn words_for(patterns: usize) -> usize {
    patterns.div_ceil(64).max(1)
}

/// Words covered by chunk `chunk` out of `total_words`.
fn chunk_extent(total_words: usize, chunk: usize) -> usize {
    (total_words - chunk * CHUNK_WORDS).min(CHUNK_WORDS)
}

/// Simulates `patterns` random input vectors (rounded up per the
/// [`ActivityReport::patterns`] contract) and accumulates per-net toggles
/// and one-counts, fanning simulation chunks out over the rayon pool.
///
/// Bit-identical to [`simulate_activity_serial`] for the same arguments,
/// regardless of thread count.
pub fn simulate_activity(
    netlist: &MappedNetlist,
    library: &CharacterizedLibrary,
    patterns: usize,
    seed: u64,
) -> ActivityReport {
    let total_words = words_for(patterns);
    let n_chunks = total_words.div_ceil(CHUNK_WORDS);
    let chunks: Vec<ChunkStats> = (0..n_chunks)
        .into_par_iter()
        .map(|chunk| {
            let rng = StdRng::seed_from_u64(chunk_seed(seed, chunk));
            simulate_chunk(netlist, library, chunk_extent(total_words, chunk), rng)
        })
        .collect();
    merge_chunks(netlist.net_count(), total_words, chunks)
}

/// Sequential reference implementation of [`simulate_activity`]: same
/// chunk partition, same per-chunk streams, same merge — no thread pool.
pub fn simulate_activity_serial(
    netlist: &MappedNetlist,
    library: &CharacterizedLibrary,
    patterns: usize,
    seed: u64,
) -> ActivityReport {
    let total_words = words_for(patterns);
    let n_chunks = total_words.div_ceil(CHUNK_WORDS);
    let chunks: Vec<ChunkStats> = (0..n_chunks)
        .map(|chunk| {
            let rng = StdRng::seed_from_u64(chunk_seed(seed, chunk));
            simulate_chunk(netlist, library, chunk_extent(total_words, chunk), rng)
        })
        .collect();
    merge_chunks(netlist.net_count(), total_words, chunks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::Aig;
    use charlib::characterize_library;
    use gate_lib::GateFamily;
    use techmap::{map_aig, MapConfig};

    fn xor_and_netlist() -> (MappedNetlist, CharacterizedLibrary) {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.xor(a, b);
        let y = aig.and(a, b);
        aig.output(x);
        aig.output(y);
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let mapped = map_aig(&aig, &lib, &MapConfig::default()).expect("mapping succeeds");
        (mapped, lib)
    }

    #[test]
    fn input_activity_is_about_half() {
        let (mapped, lib) = xor_and_netlist();
        let report = simulate_activity(&mapped, &lib, 1 << 14, 1);
        for pi in 0..mapped.pi_count {
            let a = report.activity(pi);
            assert!((0.45..0.55).contains(&a), "PI {pi} activity {a}");
            let p = report.probability(pi);
            assert!((0.45..0.55).contains(&p), "PI {pi} probability {p}");
        }
    }

    #[test]
    fn xor_toggles_more_than_and() {
        let (mapped, lib) = xor_and_netlist();
        let report = simulate_activity(&mapped, &lib, 1 << 14, 2);
        let xor_net = mapped.outputs()[0].net;
        let and_net = mapped.outputs()[1].net;
        let a_xor = report.activity(xor_net);
        let a_and = report.activity(and_net);
        // Random inputs: XOR toggles ≈ 0.5, AND ≈ 0.375.
        assert!(a_xor > a_and, "xor {a_xor} vs and {a_and}");
        assert!((0.45..0.55).contains(&a_xor), "xor activity {a_xor}");
        assert!((0.3..0.45).contains(&a_and), "and activity {a_and}");
    }

    #[test]
    fn deterministic_with_seed() {
        let (mapped, lib) = xor_and_netlist();
        let a = simulate_activity(&mapped, &lib, 4096, 9);
        let b = simulate_activity(&mapped, &lib, 4096, 9);
        assert_eq!(a.toggles, b.toggles);
        assert_eq!(a.ones, b.ones);
        let c = simulate_activity(&mapped, &lib, 4096, 10);
        assert_ne!(a.toggles, c.toggles);
    }

    #[test]
    fn and_probability_is_quarter() {
        let (mapped, lib) = xor_and_netlist();
        let report = simulate_activity(&mapped, &lib, 1 << 15, 3);
        let and_net = mapped.outputs()[1].net;
        let p = report.probability(and_net);
        assert!((0.22..0.28).contains(&p), "AND probability {p}");
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_reference() {
        let (mapped, lib) = xor_and_netlist();
        // Cover: sub-chunk (1 word), exactly one chunk, a ragged multi-chunk
        // tail, and several full chunks.
        for patterns in [64usize, CHUNK_WORDS * 64, CHUNK_WORDS * 64 + 640, 1 << 15] {
            for seed in [0u64, 9, 0xDA7E_2010] {
                let par = simulate_activity(&mapped, &lib, patterns, seed);
                let ser = simulate_activity_serial(&mapped, &lib, patterns, seed);
                assert_eq!(par, ser, "patterns {patterns} seed {seed}");
            }
        }
    }

    #[test]
    fn patterns_round_up_to_whole_words() {
        let (mapped, lib) = xor_and_netlist();
        // The documented contract on ActivityReport::patterns.
        for (requested, simulated) in [
            (0usize, 64usize),
            (1, 64),
            (64, 64),
            (1000, 1024),
            (1024, 1024),
        ] {
            let report = simulate_activity(&mapped, &lib, requested, 5);
            assert_eq!(
                report.patterns, simulated,
                "request {requested} must round up to {simulated}"
            );
        }
    }

    #[test]
    fn toggle_counts_are_consistent_across_chunk_boundaries() {
        let (mapped, lib) = xor_and_netlist();
        // A net's toggle count over N patterns is at most N-1 transitions,
        // and ones is at most N; both must hold across merged chunks.
        let patterns = CHUNK_WORDS * 64 * 3 + 128;
        let report = simulate_activity(&mapped, &lib, patterns, 11);
        for net in 0..mapped.net_count() {
            assert!(report.toggles[net] < report.patterns as u64);
            assert!(report.ones[net] <= report.patterns as u64);
        }
    }
}
