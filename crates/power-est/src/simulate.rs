//! Bit-parallel random-pattern simulation with toggle counting.

use charlib::CharacterizedLibrary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use techmap::MappedNetlist;

/// Per-net activity statistics from a random-pattern run.
#[derive(Clone, Debug)]
pub struct ActivityReport {
    /// Number of patterns simulated.
    pub patterns: usize,
    /// Per-net toggle counts (transitions between consecutive patterns).
    pub toggles: Vec<u64>,
    /// Per-net count of patterns where the net was 1.
    pub ones: Vec<u64>,
}

impl ActivityReport {
    /// Switching activity of a net: toggles per pattern.
    pub fn activity(&self, net: usize) -> f64 {
        self.toggles[net] as f64 / self.patterns.max(1) as f64
    }

    /// Signal probability of a net.
    pub fn probability(&self, net: usize) -> f64 {
        self.ones[net] as f64 / self.patterns.max(1) as f64
    }
}

/// Simulates `patterns` random input vectors (rounded up to multiples of
/// 64) and accumulates per-net toggles and one-counts.
pub fn simulate_activity(
    netlist: &MappedNetlist,
    library: &CharacterizedLibrary,
    patterns: usize,
    seed: u64,
) -> ActivityReport {
    let words = patterns.div_ceil(64).max(1);
    let n_nets = netlist.net_count();
    let mut toggles = vec![0u64; n_nets];
    let mut ones = vec![0u64; n_nets];
    let mut prev_last: Vec<Option<bool>> = vec![None; n_nets];
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..words {
        let pi_words: Vec<u64> = (0..netlist.pi_count).map(|_| rng.gen()).collect();
        let values = netlist.simulate64(library, &pi_words);
        for (net, &w) in values.iter().enumerate() {
            ones[net] += w.count_ones() as u64;
            // Transitions inside the word: bit k vs bit k+1.
            let internal = (w ^ (w >> 1)) & 0x7FFF_FFFF_FFFF_FFFF;
            toggles[net] += internal.count_ones() as u64;
            // Boundary with the previous word.
            if let Some(last) = prev_last[net] {
                if last != (w & 1 == 1) {
                    toggles[net] += 1;
                }
            }
            prev_last[net] = Some((w >> 63) & 1 == 1);
        }
    }
    ActivityReport {
        patterns: words * 64,
        toggles,
        ones,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::Aig;
    use charlib::characterize_library;
    use gate_lib::GateFamily;
    use techmap::map_aig;

    fn xor_and_netlist() -> (MappedNetlist, CharacterizedLibrary) {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.xor(a, b);
        let y = aig.and(a, b);
        aig.output(x);
        aig.output(y);
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let mapped = map_aig(&aig, &lib);
        (mapped, lib)
    }

    #[test]
    fn input_activity_is_about_half() {
        let (mapped, lib) = xor_and_netlist();
        let report = simulate_activity(&mapped, &lib, 1 << 14, 1);
        for pi in 0..mapped.pi_count {
            let a = report.activity(pi);
            assert!((0.45..0.55).contains(&a), "PI {pi} activity {a}");
            let p = report.probability(pi);
            assert!((0.45..0.55).contains(&p), "PI {pi} probability {p}");
        }
    }

    #[test]
    fn xor_toggles_more_than_and() {
        let (mapped, lib) = xor_and_netlist();
        let report = simulate_activity(&mapped, &lib, 1 << 14, 2);
        let xor_net = mapped.outputs[0].net;
        let and_net = mapped.outputs[1].net;
        let a_xor = report.activity(xor_net);
        let a_and = report.activity(and_net);
        // Random inputs: XOR toggles ≈ 0.5, AND ≈ 0.375.
        assert!(a_xor > a_and, "xor {a_xor} vs and {a_and}");
        assert!((0.45..0.55).contains(&a_xor), "xor activity {a_xor}");
        assert!((0.3..0.45).contains(&a_and), "and activity {a_and}");
    }

    #[test]
    fn deterministic_with_seed() {
        let (mapped, lib) = xor_and_netlist();
        let a = simulate_activity(&mapped, &lib, 4096, 9);
        let b = simulate_activity(&mapped, &lib, 4096, 9);
        assert_eq!(a.toggles, b.toggles);
        assert_eq!(a.ones, b.ones);
        let c = simulate_activity(&mapped, &lib, 4096, 10);
        assert_ne!(a.toggles, c.toggles);
    }

    #[test]
    fn and_probability_is_quarter() {
        let (mapped, lib) = xor_and_netlist();
        let report = simulate_activity(&mapped, &lib, 1 << 15, 3);
        let and_net = mapped.outputs[1].net;
        let p = report.probability(and_net);
        assert!((0.22..0.28).contains(&p), "AND probability {p}");
    }
}
