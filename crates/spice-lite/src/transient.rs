//! Transient analysis: fixed-step backward Euler over the nonlinear MNA
//! system, with time-varying voltage sources.
//!
//! Used by the short-circuit-power ablation: the paper adopts the CMOS
//! conjecture P_SC ≈ 0.15·P_D for CNTFETs; a transient run of a switching
//! inverter lets us *measure* the crossbar charge instead.

use crate::lu::Matrix;
use crate::netlist::{Circuit, Element};
use crate::solver::{OperatingPoint, SolveError, SolverOptions};
use std::collections::HashMap;

/// A time-varying override for a named voltage source.
pub type Waveform<'a> = (&'a str, &'a dyn Fn(f64) -> f64);

/// Result of a transient run.
#[derive(Clone, Debug)]
pub struct TransientResult {
    /// Time points, seconds.
    pub times: Vec<f64>,
    /// Operating point at each time point.
    pub points: Vec<OperatingPoint>,
}

impl TransientResult {
    /// Integrates the current delivered by a named source over the run
    /// (trapezoidal), returning charge in coulombs.
    pub fn integrate_source_charge(&self, source: &str) -> f64 {
        let mut q = 0.0;
        for k in 1..self.times.len() {
            let dt = self.times[k] - self.times[k - 1];
            let i0 = self.points[k - 1].source_current(source).unwrap_or(0.0);
            let i1 = self.points[k].source_current(source).unwrap_or(0.0);
            q += 0.5 * (i0 + i1) * dt;
        }
        q
    }

    /// Integrates source charge over a sub-interval `[t0, t1]`.
    pub fn integrate_source_charge_between(&self, source: &str, t0: f64, t1: f64) -> f64 {
        let mut q = 0.0;
        for k in 1..self.times.len() {
            if self.times[k] <= t0 || self.times[k - 1] >= t1 {
                continue;
            }
            let dt = self.times[k] - self.times[k - 1];
            let i0 = self.points[k - 1].source_current(source).unwrap_or(0.0);
            let i1 = self.points[k].source_current(source).unwrap_or(0.0);
            q += 0.5 * (i0 + i1) * dt;
        }
        q
    }
}

/// Runs a fixed-step backward-Euler transient.
///
/// The initial condition is the DC operating point with every waveform
/// evaluated at `t = 0`. Each step warm-starts Newton from the previous
/// solution.
///
/// # Errors
///
/// Returns the first [`SolveError`] encountered.
///
/// # Panics
///
/// Panics if a waveform names an unknown source, or `dt`/`t_stop` are not
/// positive.
///
/// # Example
///
/// ```
/// use spice_lite::{Circuit, GROUND, transient};
///
/// // RC charging: v(t) = 1 − e^{−t/RC}.
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("vin");
/// let out = ckt.node("out");
/// ckt.add_vsource("VIN", vin, GROUND, 0.0);
/// ckt.add_resistor("R", vin, out, 1_000.0);
/// ckt.add_capacitor("C", out, GROUND, 1e-12);
/// let step = |t: f64| if t > 0.0 { 1.0 } else { 0.0 };
/// let result = transient(&ckt, 5e-9, 1e-11, &[("VIN", &step)])?;
/// let v_end = result.points.last().expect("points").voltage(out);
/// assert!((v_end - 1.0).abs() < 0.02); // fully charged after 5·RC
/// # Ok::<(), spice_lite::SolveError>(())
/// ```
pub fn transient(
    circuit: &Circuit,
    t_stop: f64,
    dt: f64,
    waveforms: &[Waveform<'_>],
) -> Result<TransientResult, SolveError> {
    assert!(dt > 0.0 && t_stop > 0.0, "time parameters must be positive");
    let mut ckt = circuit.clone();
    let wf: HashMap<&str, &dyn Fn(f64) -> f64> = waveforms.iter().copied().collect();
    for (name, _) in waveforms {
        assert!(
            circuit.vsource_index(name).is_some(),
            "unknown waveform source `{name}`"
        );
    }

    let n_nodes = ckt.node_count();
    let n_vsrc = ckt
        .elements()
        .iter()
        .filter(|e| matches!(e, Element::VSource { .. }))
        .count();
    let dim = (n_nodes - 1) + n_vsrc;
    let options = SolverOptions::default();

    // t = 0 initial condition: DC with waveforms at 0.
    apply_waveforms(&mut ckt, &wf, 0.0);
    let op0 = ckt.solve_dc_with(options)?;
    let mut x: Vec<f64> = op0.voltages()[1..]
        .iter()
        .copied()
        .chain((0..n_vsrc).map(|_| 0.0))
        .collect();

    let mut times = vec![0.0];
    let mut points = vec![op0];
    let mut matrix = Matrix::zeros(dim);
    let mut rhs = vec![0.0; dim];
    let steps = (t_stop / dt).ceil() as usize;
    let mut prev_v: Vec<f64> = points[0].voltages().to_vec();
    for k in 1..=steps {
        let t = k as f64 * dt;
        apply_waveforms(&mut ckt, &wf, t);
        // Warm-started Newton at a single small g_min.
        ckt.newton(
            &mut x,
            &mut matrix,
            &mut rhs,
            options,
            &[1e-15],
            Some((&prev_v, dt)),
        )?;
        let op = ckt.operating_point(&x, n_nodes, n_vsrc);
        prev_v = op.voltages().to_vec();
        times.push(t);
        points.push(op);
    }
    Ok(TransientResult { times, points })
}

fn apply_waveforms(ckt: &mut Circuit, wf: &HashMap<&str, &dyn Fn(f64) -> f64>, t: f64) {
    for element in ckt.elements_mut() {
        if let Element::VSource { name, volts, .. } = element {
            if let Some(f) = wf.get(name.as_str()) {
                *volts = f(t);
            }
        }
    }
}

/// A linear ramp waveform from `v0` to `v1` over `[t0, t0 + rise]`.
pub fn ramp(v0: f64, v1: f64, t0: f64, rise: f64) -> impl Fn(f64) -> f64 {
    move |t: f64| {
        if t <= t0 {
            v0
        } else if t >= t0 + rise {
            v1
        } else {
            v0 + (v1 - v0) * (t - t0) / rise
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GROUND;
    use device::{Polarity, TechParams};

    #[test]
    fn rc_charging_matches_analytic() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.add_vsource("VIN", vin, GROUND, 0.0);
        ckt.add_resistor("R", vin, out, 1e3);
        ckt.add_capacitor("C", out, GROUND, 1e-12);
        let step = |t: f64| if t > 0.0 { 1.0 } else { 0.0 };
        let result = transient(&ckt, 3e-9, 5e-12, &[("VIN", &step)]).expect("converges");
        // Compare at t = RC: v = 1 − 1/e ≈ 0.632 (BE slightly overdamps).
        let idx = result
            .times
            .iter()
            .position(|&t| t >= 1e-9)
            .expect("RC point inside run");
        let v = result.points[idx].voltage(out);
        assert!((v - 0.632).abs() < 0.03, "v(RC) = {v}");
    }

    #[test]
    fn capacitor_charge_balance() {
        // Total charge delivered through R equals C·ΔV.
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.add_vsource("VIN", vin, GROUND, 0.0);
        ckt.add_resistor("R", vin, out, 10e3);
        ckt.add_capacitor("C", out, GROUND, 2e-15);
        let wave = ramp(0.0, 0.9, 1e-12, 10e-12);
        let result = transient(&ckt, 2e-9, 1e-12, &[("VIN", &wave)]).expect("converges");
        let q = result.integrate_source_charge("VIN");
        let expected = 2e-15 * 0.9;
        assert!(
            (q / expected - 1.0).abs() < 0.05,
            "q = {q:e}, expected {expected:e}"
        );
    }

    #[test]
    fn inverter_switches_dynamically() {
        let tech = TechParams::cmos_32nm();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("VDD", vdd, GROUND, tech.vdd);
        ckt.add_vsource("VIN", vin, GROUND, 0.0);
        ckt.add_transistor("MP", tech.model(Polarity::P), out, vin, vdd);
        ckt.add_transistor("MN", tech.model(Polarity::N), out, vin, GROUND);
        ckt.add_capacitor("CL", out, GROUND, 100e-18);
        let wave = ramp(0.0, tech.vdd, 10e-12, 20e-12);
        let result = transient(&ckt, 100e-12, 0.5e-12, &[("VIN", &wave)]).expect("converges");
        let first = result.points.first().expect("points").voltage(out);
        let last = result.points.last().expect("points").voltage(out);
        assert!(first > 0.85 * tech.vdd, "output starts high: {first}");
        assert!(last < 0.15 * tech.vdd, "output ends low: {last}");
        // The output must fall monotonically-ish after the ramp starts.
        let mid_idx = result.times.iter().position(|&t| t >= 30e-12).expect("mid");
        assert!(result.points[mid_idx].voltage(out) < first);
    }

    #[test]
    fn ramp_waveform_shape() {
        let w = ramp(0.0, 1.0, 1.0, 2.0);
        assert_eq!(w(0.5), 0.0);
        assert_eq!(w(1.0), 0.0);
        assert!((w(2.0) - 0.5).abs() < 1e-12);
        assert_eq!(w(3.0), 1.0);
        assert_eq!(w(9.0), 1.0);
    }
}
