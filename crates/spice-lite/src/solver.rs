//! DC operating-point solver: modified nodal analysis + Newton–Raphson.
//!
//! Unknowns are the non-ground node voltages plus one branch current per
//! voltage source. Nonlinear transistors are linearized each iteration with
//! central finite differences of the compact model; robustness comes from
//! voltage-step damping and g_min continuation (a shunt conductance stepped
//! from 1 mS down to 1 fS, each solution seeding the next).

use crate::lu::Matrix;
use crate::netlist::{Circuit, Element, NodeId};

/// Options controlling the Newton iteration.
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    /// Maximum Newton iterations per continuation step.
    pub max_iterations: usize,
    /// Convergence threshold on the node-voltage update, volts.
    pub v_tolerance: f64,
    /// Maximum per-iteration voltage step, volts (damping).
    pub max_step: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            max_iterations: 300,
            v_tolerance: 1e-10,
            max_step: 0.25,
        }
    }
}

/// Error returned when the DC solve fails.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// The Newton iteration did not converge within the iteration budget.
    NoConvergence {
        /// Final maximum voltage update, volts.
        last_delta: f64,
    },
    /// The linearized system was singular (typically a floating node).
    Singular {
        /// Matrix column at which factorization failed.
        column: usize,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NoConvergence { last_delta } => {
                write!(
                    f,
                    "newton iteration did not converge (last step {last_delta:e} V)"
                )
            }
            SolveError::Singular { column } => {
                write!(f, "singular system at column {column} (floating node?)")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// A solved DC operating point.
#[derive(Clone, Debug)]
pub struct OperatingPoint {
    voltages: Vec<f64>,
    vsource_currents: Vec<f64>,
    element_currents: Vec<f64>,
    vsource_names: Vec<String>,
}

impl OperatingPoint {
    /// Voltage of a node, volts (ground reads 0).
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.index()]
    }

    /// All node voltages indexed by [`NodeId::index`].
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Current delivered by the named voltage source *into the circuit*
    /// through its positive terminal, amperes. For a `VDD` rail source this
    /// is the total current drawn from the supply (e.g. leakage).
    ///
    /// Returns `None` for unknown names.
    pub fn source_current(&self, name: &str) -> Option<f64> {
        let idx = self.vsource_names.iter().position(|n| n == name)?;
        Some(-self.vsource_currents[idx])
    }

    /// Current through element `index` (by insertion order), amperes.
    ///
    /// Convention: resistors and transistors report the current flowing
    /// from their first terminal (a / drain) to their second (b / source);
    /// voltage sources report branch current into the positive terminal;
    /// current sources report their set point.
    pub fn element_current(&self, index: usize) -> f64 {
        self.element_currents[index]
    }
}

/// Relative finite-difference step for device linearization, volts.
const FD_STEP: f64 = 1e-6;

/// The DC g_min continuation ladder: heavy shunt first, nearly nothing last.
pub(crate) const GMIN_CONTINUATION: [f64; 5] = [1e-3, 1e-6, 1e-9, 1e-12, 1e-15];

impl Circuit {
    /// Solves the DC operating point with default [`SolverOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if Newton fails to converge or the system is
    /// singular (e.g. a node with no DC path).
    pub fn solve_dc(&self) -> Result<OperatingPoint, SolveError> {
        self.solve_dc_with(SolverOptions::default())
    }

    /// Solves the DC operating point with explicit options.
    ///
    /// # Errors
    ///
    /// See [`Circuit::solve_dc`].
    pub fn solve_dc_with(&self, options: SolverOptions) -> Result<OperatingPoint, SolveError> {
        let n_nodes = self.node_count();
        let n_vsrc = self
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. }))
            .count();
        let dim = (n_nodes - 1) + n_vsrc;
        let mut x = vec![0.0; dim];
        let mut matrix = Matrix::zeros(dim);
        let mut rhs = vec![0.0; dim];

        self.newton(
            &mut x,
            &mut matrix,
            &mut rhs,
            options,
            &GMIN_CONTINUATION,
            None,
        )?;
        Ok(self.operating_point(&x, n_nodes, n_vsrc))
    }

    /// Newton–Raphson with g_min continuation over `gmin_steps`.
    pub(crate) fn newton(
        &self,
        x: &mut [f64],
        matrix: &mut Matrix,
        rhs: &mut [f64],
        options: SolverOptions,
        gmin_steps: &[f64],
        transient: Option<(&[f64], f64)>,
    ) -> Result<(), SolveError> {
        let n_nodes = self.node_count();
        let mut last_delta = f64::INFINITY;
        for (step_idx, &gmin) in gmin_steps.iter().enumerate() {
            let mut converged = false;
            for _ in 0..options.max_iterations {
                self.assemble(x, gmin, matrix, rhs, transient);
                let mut x_new = rhs.to_vec();
                matrix
                    .solve_in_place(&mut x_new)
                    .map_err(|e| SolveError::Singular { column: e.column })?;
                // Damped update on the voltage unknowns; branch currents
                // are taken as solved.
                let mut max_dv: f64 = 0.0;
                for (new, old) in x_new.iter().zip(x.iter()).take(n_nodes - 1) {
                    max_dv = max_dv.max((new - old).abs());
                }
                let scale = if max_dv > options.max_step {
                    options.max_step / max_dv
                } else {
                    1.0
                };
                for (xi, xn) in x.iter_mut().zip(x_new.iter()).take(n_nodes - 1) {
                    *xi += scale * (*xn - *xi);
                }
                for (xi, xn) in x.iter_mut().zip(x_new.iter()).skip(n_nodes - 1) {
                    *xi = *xn;
                }
                last_delta = max_dv * scale;
                if max_dv < options.v_tolerance {
                    converged = true;
                    break;
                }
            }
            if !converged && step_idx == gmin_steps.len() - 1 {
                return Err(SolveError::NoConvergence { last_delta });
            }
        }
        Ok(())
    }

    /// Kirchhoff current-law residual of a solved operating point: the
    /// worst absolute current imbalance over all non-ground nodes, in
    /// amperes. A healthy solution sits many orders below the circuit's
    /// smallest current of interest — exposed so callers can audit
    /// convergence instead of trusting the Newton tolerance blindly.
    pub fn kcl_residual(&self, op: &OperatingPoint) -> f64 {
        let mut net = vec![0.0f64; self.node_count()];
        for (idx, element) in self.elements().iter().enumerate() {
            let i = op.element_current(idx);
            match element {
                Element::Resistor { a, b, .. } => {
                    net[a.index()] -= i;
                    net[b.index()] += i;
                }
                Element::Capacitor { .. } => {}
                Element::ISource { from, to, amps, .. } => {
                    net[from.index()] -= amps;
                    net[to.index()] += amps;
                }
                Element::VSource { pos, neg, .. } => {
                    // Branch current flows into the positive terminal.
                    net[pos.index()] -= i;
                    net[neg.index()] += i;
                }
                Element::Transistor { drain, source, .. } => {
                    net[drain.index()] -= i;
                    net[source.index()] += i;
                }
            }
        }
        net.iter().skip(1).fold(0.0f64, |acc, &x| acc.max(x.abs()))
    }

    /// Assembles the linearized MNA system at the current iterate.
    /// `transient` carries `(previous node voltages, dt)` for backward-Euler
    /// capacitor companions; `None` means DC (capacitors open).
    pub(crate) fn assemble(
        &self,
        x: &[f64],
        gmin: f64,
        matrix: &mut Matrix,
        rhs: &mut [f64],
        transient: Option<(&[f64], f64)>,
    ) {
        let n_nodes = self.node_count();
        matrix.clear();
        rhs.fill(0.0);
        // Node voltage accessor: ground = 0 V, node i>0 = x[i-1].
        let v = |node: NodeId| -> f64 {
            if node.index() == 0 {
                0.0
            } else {
                x[node.index() - 1]
            }
        };
        // Row/column index of a node (None for ground).
        let idx = |node: NodeId| -> Option<usize> {
            if node.index() == 0 {
                None
            } else {
                Some(node.index() - 1)
            }
        };
        // Shunt g_min on every non-ground node.
        for i in 0..(n_nodes - 1) {
            matrix.stamp(i, i, gmin);
        }

        let mut vsrc_row = n_nodes - 1;
        for element in self.elements() {
            match element {
                Element::Resistor { a, b, ohms, .. } => {
                    let g = 1.0 / ohms;
                    stamp_conductance(matrix, idx(*a), idx(*b), g);
                }
                Element::Capacitor { a, b, farads, .. } => {
                    if let Some((prev, dt)) = transient {
                        // Backward Euler: i = C/dt · (v − v_prev).
                        let g = farads / dt;
                        stamp_conductance(matrix, idx(*a), idx(*b), g);
                        let v_prev = prev[a.index()] - prev[b.index()];
                        let i_eq = g * v_prev;
                        if let Some(i) = idx(*a) {
                            rhs[i] += i_eq;
                        }
                        if let Some(j) = idx(*b) {
                            rhs[j] -= i_eq;
                        }
                    }
                    // DC: open circuit — no stamp.
                }
                Element::ISource { from, to, amps, .. } => {
                    if let Some(i) = idx(*from) {
                        rhs[i] -= amps;
                    }
                    if let Some(i) = idx(*to) {
                        rhs[i] += amps;
                    }
                }
                Element::VSource {
                    pos, neg, volts, ..
                } => {
                    let row = vsrc_row;
                    vsrc_row += 1;
                    if let Some(p) = idx(*pos) {
                        matrix.stamp(row, p, 1.0);
                        matrix.stamp(p, row, 1.0);
                    }
                    if let Some(n) = idx(*neg) {
                        matrix.stamp(row, n, -1.0);
                        matrix.stamp(n, row, -1.0);
                    }
                    rhs[row] = *volts;
                }
                Element::Transistor {
                    model,
                    drain,
                    gate,
                    source,
                    ..
                } => {
                    let (vg, vd, vs) = (v(*gate), v(*drain), v(*source));
                    let id0 = model.ids(vg, vd, vs);
                    let h = FD_STEP;
                    let gm = (model.ids(vg + h, vd, vs) - model.ids(vg - h, vd, vs)) / (2.0 * h);
                    let gdd = (model.ids(vg, vd + h, vs) - model.ids(vg, vd - h, vs)) / (2.0 * h);
                    let gss = (model.ids(vg, vd, vs + h) - model.ids(vg, vd, vs - h)) / (2.0 * h);
                    // Companion model: I_eq enters the RHS, conductances the
                    // matrix. Current I_DS leaves the drain node and enters
                    // the source node.
                    let i_eq = id0 - gm * vg - gdd * vd - gss * vs;
                    if let Some(d) = idx(*drain) {
                        if let Some(g) = idx(*gate) {
                            matrix.stamp(d, g, gm);
                        }
                        matrix.stamp(d, d, gdd);
                        if let Some(s) = idx(*source) {
                            matrix.stamp(d, s, gss);
                        }
                        rhs[d] -= i_eq;
                    }
                    if let Some(s) = idx(*source) {
                        if let Some(g) = idx(*gate) {
                            matrix.stamp(s, g, -gm);
                        }
                        if let Some(d) = idx(*drain) {
                            matrix.stamp(s, d, -gdd);
                        }
                        matrix.stamp(s, s, -gss);
                        rhs[s] += i_eq;
                    }
                }
            }
        }
    }

    pub(crate) fn operating_point(
        &self,
        x: &[f64],
        n_nodes: usize,
        n_vsrc: usize,
    ) -> OperatingPoint {
        let mut voltages = vec![0.0; n_nodes];
        voltages[1..n_nodes].copy_from_slice(&x[..n_nodes - 1]);
        let vsource_currents: Vec<f64> = (0..n_vsrc).map(|k| x[n_nodes - 1 + k]).collect();
        let mut vsource_names = Vec::with_capacity(n_vsrc);
        let mut element_currents = Vec::with_capacity(self.elements().len());
        let mut vsrc_seen = 0usize;
        for element in self.elements() {
            let current = match element {
                Element::Resistor { a, b, ohms, .. } => {
                    (voltages[a.index()] - voltages[b.index()]) / ohms
                }
                Element::ISource { amps, .. } => *amps,
                // DC: a capacitor carries no current (transient analysis
                // computes displacement currents separately).
                Element::Capacitor { .. } => 0.0,
                Element::VSource { name, .. } => {
                    vsource_names.push(name.clone());
                    let i = vsource_currents[vsrc_seen];
                    vsrc_seen += 1;
                    i
                }
                Element::Transistor {
                    model,
                    drain,
                    gate,
                    source,
                    ..
                } => model.ids(
                    voltages[gate.index()],
                    voltages[drain.index()],
                    voltages[source.index()],
                ),
            };
            element_currents.push(current);
        }
        OperatingPoint {
            voltages,
            vsource_currents,
            element_currents,
            vsource_names,
        }
    }
}

/// Stamps a two-terminal conductance between two (possibly ground) nodes.
fn stamp_conductance(matrix: &mut Matrix, a: Option<usize>, b: Option<usize>, g: f64) {
    if let Some(i) = a {
        matrix.stamp(i, i, g);
    }
    if let Some(j) = b {
        matrix.stamp(j, j, g);
    }
    if let (Some(i), Some(j)) = (a, b) {
        matrix.stamp(i, j, -g);
        matrix.stamp(j, i, -g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GROUND;
    use device::{Polarity, TechParams};

    #[test]
    fn resistor_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let mid = ckt.node("mid");
        ckt.add_vsource("V1", vin, GROUND, 1.0);
        ckt.add_resistor("R1", vin, mid, 1e3);
        ckt.add_resistor("R2", mid, GROUND, 1e3);
        let op = ckt.solve_dc().expect("linear circuit converges");
        assert!((op.voltage(mid) - 0.5).abs() < 1e-9);
        // Source delivers V/(R1+R2) = 0.5 mA into the circuit.
        let i = op.source_current("V1").expect("V1 exists");
        assert!((i - 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn isource_into_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_isource("I1", GROUND, a, 1e-3);
        ckt.add_resistor("R1", a, GROUND, 2e3);
        let op = ckt.solve_dc().expect("converges");
        assert!((op.voltage(a) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn nfet_pulls_down_inverter() {
        // Resistive-load inverter: gate high → output near ground.
        let tech = TechParams::cmos_32nm();
        let nfet = tech.model(Polarity::N);
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("gate");
        let out = ckt.node("out");
        ckt.add_vsource("VDD", vdd, GROUND, tech.vdd);
        ckt.add_vsource("VIN", gate, GROUND, tech.vdd);
        ckt.add_resistor("RL", vdd, out, 1e6);
        ckt.add_transistor("MN", nfet, out, gate, GROUND);
        let op = ckt.solve_dc().expect("converges");
        assert!(
            op.voltage(out) < 0.1,
            "output should be pulled low, got {}",
            op.voltage(out)
        );
    }

    #[test]
    fn off_nfet_leaks_about_ioff() {
        let tech = TechParams::cmos_32nm();
        let nfet = tech.model(Polarity::N);
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource("VDD", vdd, GROUND, tech.vdd);
        // Gate tied to ground: device off, drain at VDD.
        ckt.add_transistor("MN", nfet, vdd, GROUND, GROUND);
        let op = ckt.solve_dc().expect("converges");
        let leak = op.source_current("VDD").expect("VDD exists");
        assert!(
            (leak / tech.ioff_unit - 1.0).abs() < 0.05,
            "leak {leak:e} vs unit {:e}",
            tech.ioff_unit
        );
    }

    #[test]
    fn series_stack_leaks_less_than_single_device() {
        // The Fig. 4 stack effect: two series off-transistors leak much
        // less than one, because the intermediate node rises.
        let tech = TechParams::cmos_32nm();
        let nfet = tech.model(Polarity::N);

        let single = {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            ckt.add_vsource("VDD", vdd, GROUND, tech.vdd);
            ckt.add_transistor("M1", nfet, vdd, GROUND, GROUND);
            ckt.solve_dc()
                .expect("converges")
                .source_current("VDD")
                .expect("VDD")
        };
        let stacked = {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let mid = ckt.node("mid");
            ckt.add_vsource("VDD", vdd, GROUND, tech.vdd);
            ckt.add_transistor("M1", nfet, vdd, GROUND, mid);
            ckt.add_transistor("M2", nfet, mid, GROUND, GROUND);
            ckt.solve_dc()
                .expect("converges")
                .source_current("VDD")
                .expect("VDD")
        };
        assert!(stacked > 0.0);
        let factor = single / stacked;
        assert!(
            factor > 3.0,
            "stack effect should suppress leakage ≥3×, got {factor}"
        );
        // Intermediate node must have risen above ground.
    }

    #[test]
    fn parallel_devices_leak_additively() {
        let tech = TechParams::cmos_32nm();
        let nfet = tech.model(Polarity::N);
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource("VDD", vdd, GROUND, tech.vdd);
        for i in 0..3 {
            ckt.add_transistor(format!("M{i}"), nfet, vdd, GROUND, GROUND);
        }
        let op = ckt.solve_dc().expect("converges");
        let leak = op.source_current("VDD").expect("VDD");
        assert!(
            (leak / (3.0 * tech.ioff_unit) - 1.0).abs() < 0.05,
            "three parallel devices should leak 3× the unit, got {leak:e}"
        );
    }

    #[test]
    fn cmos_inverter_transfer_endpoints() {
        let tech = TechParams::cmos_32nm();
        let nfet = tech.model(Polarity::N);
        let pfet = tech.model(Polarity::P);
        for (vin, expect_high) in [(0.0, true), (tech.vdd, false)] {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let input = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_vsource("VDD", vdd, GROUND, tech.vdd);
            ckt.add_vsource("VIN", input, GROUND, vin);
            ckt.add_transistor("MP", pfet, out, input, vdd);
            ckt.add_transistor("MN", nfet, out, input, GROUND);
            let op = ckt.solve_dc().expect("converges");
            let vout = op.voltage(out);
            if expect_high {
                assert!(vout > 0.85 * tech.vdd, "vin={vin}: vout={vout}");
            } else {
                assert!(vout < 0.15 * tech.vdd, "vin={vin}: vout={vout}");
            }
        }
    }

    #[test]
    fn kcl_residual_is_tiny_on_solved_circuits() {
        let tech = TechParams::cmos_32nm();
        // Linear circuit.
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let mid = ckt.node("mid");
        ckt.add_vsource("V1", vin, GROUND, 1.0);
        ckt.add_resistor("R1", vin, mid, 1e3);
        ckt.add_resistor("R2", mid, GROUND, 1e3);
        let op = ckt.solve_dc().expect("converges");
        assert!(
            ckt.kcl_residual(&op) < 1e-12,
            "linear residual {}",
            ckt.kcl_residual(&op)
        );

        // Nonlinear stack: residual must stay far below the nA leakage.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let mid = ckt.node("mid");
        ckt.add_vsource("VDD", vdd, GROUND, tech.vdd);
        ckt.add_transistor("M1", tech.model(Polarity::N), vdd, GROUND, mid);
        ckt.add_transistor("M2", tech.model(Polarity::N), mid, GROUND, GROUND);
        let op = ckt.solve_dc().expect("converges");
        let residual = ckt.kcl_residual(&op);
        assert!(
            residual < 1e-3 * tech.ioff_unit,
            "stack residual {residual:e} vs I_off {:e}",
            tech.ioff_unit
        );
    }

    #[test]
    fn floating_node_reports_singular_or_converges_to_gmin_value() {
        // A node connected to nothing but gmin: should still solve (to 0 V)
        // rather than crash.
        let mut ckt = Circuit::new();
        let a = ckt.node("floating");
        let b = ckt.node("driven");
        ckt.add_vsource("V1", b, GROUND, 1.0);
        ckt.add_resistor("R1", b, GROUND, 1e3);
        let op = ckt.solve_dc().expect("gmin keeps the system nonsingular");
        assert!(op.voltage(a).abs() < 1e-6);
    }
}
