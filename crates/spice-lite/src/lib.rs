//! A minimal nonlinear DC circuit solver — the "HSPICE" box of the paper's
//! Fig. 5 simulation flow.
//!
//! The paper uses HSPICE with the Stanford CNFET model to quantify the
//! leakage current of every distinct off-transistor pattern. All those
//! simulations are small DC operating-point problems (a handful of
//! transistors between the rails), which is exactly what this crate solves:
//!
//! * [`Circuit`] — a netlist of resistors, voltage sources and transistors
//!   (compact models from the [`device`] crate);
//! * modified nodal analysis with Newton–Raphson iteration, finite-difference
//!   device linearization, voltage-step damping and g_min continuation;
//! * [`OperatingPoint`] — solved node voltages plus branch/device currents,
//!   with helpers to read rail currents (the leakage measurements).
//!
//! # Example: voltage divider
//!
//! ```
//! use spice_lite::{Circuit, GROUND};
//!
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("vin");
//! let mid = ckt.node("mid");
//! ckt.add_vsource("V1", vin, GROUND, 1.0);
//! ckt.add_resistor("R1", vin, mid, 1_000.0);
//! ckt.add_resistor("R2", mid, GROUND, 3_000.0);
//! let op = ckt.solve_dc()?;
//! assert!((op.voltage(mid) - 0.75).abs() < 1e-9);
//! # Ok::<(), spice_lite::SolveError>(())
//! ```

pub mod lu;
pub mod netlist;
pub mod solver;
pub mod sweep;
pub mod transient;

pub use netlist::{Circuit, Element, NodeId, GROUND};
pub use solver::{OperatingPoint, SolveError, SolverOptions};
pub use sweep::{dc_sweep, SweepPoint};
pub use transient::{ramp, transient, TransientResult};
