//! Dense LU factorization with partial pivoting.
//!
//! The leakage circuits simulated by the characterization flow have at most
//! a few dozen nodes, so a dense direct solver is both simpler and faster
//! than anything sparse.

/// A dense square matrix in row-major order.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "matrix index out of bounds");
        self.data[row * self.n + col]
    }

    /// Writes entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "matrix index out of bounds");
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` to entry `(row, col)` — the MNA "stamp" operation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn stamp(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "matrix index out of bounds");
        self.data[row * self.n + col] += value;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Solves `A·x = b` in place via LU with partial pivoting; `b` becomes
    /// the solution.
    ///
    /// (Index-based loops are kept for readability of the textbook
    /// elimination; see the allow below.)
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrix`] when a pivot smaller than `1e-300` is
    /// encountered.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), SingularMatrix> {
        assert_eq!(b.len(), self.n, "right-hand side length mismatch");
        let n = self.n;
        for k in 0..n {
            // Partial pivoting: find the largest |entry| in column k.
            let mut pivot_row = k;
            let mut pivot_val = self.get(k, k).abs();
            for r in (k + 1)..n {
                let v = self.get(r, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(SingularMatrix { column: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = self.get(k, c);
                    self.set(k, c, self.get(pivot_row, c));
                    self.set(pivot_row, c, tmp);
                }
                b.swap(k, pivot_row);
            }
            let pivot = self.get(k, k);
            for r in (k + 1)..n {
                let factor = self.get(r, k) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in k..n {
                    let v = self.get(r, c) - factor * self.get(k, c);
                    self.set(r, c, v);
                }
                b[r] -= factor * b[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut acc = b[k];
            for c in (k + 1)..n {
                acc -= self.get(k, c) * b[c];
            }
            b[k] = acc / self.get(k, k);
        }
        Ok(())
    }
}

/// Error returned when Gaussian elimination hits a (numerically) zero pivot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SingularMatrix {
    /// Column at which elimination failed.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "singular matrix at column {}", self.column)
    }
}

impl std::error::Error for SingularMatrix {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = Matrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let mut b = vec![1.0, 2.0, 3.0];
        m.solve_in_place(&mut b).expect("identity is nonsingular");
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_general_system() {
        // | 2 1 | x = | 5 |   →  x = 2, y = 1
        // | 1 3 |     | 5 |
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 3.0);
        let mut b = vec![5.0, 5.0];
        m.solve_in_place(&mut b).expect("nonsingular");
        assert!((b[0] - 2.0).abs() < 1e-12);
        assert!((b[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // | 0 1 | x = | 1 |  →  x = 2, y = 1
        // | 1 0 |     | 2 |
        let mut m = Matrix::zeros(2);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        let mut b = vec![1.0, 2.0];
        m.solve_in_place(&mut b)
            .expect("pivoting should rescue this");
        assert!((b[0] - 2.0).abs() < 1e-12);
        assert!((b[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        let mut b = vec![1.0, 2.0];
        assert!(m.solve_in_place(&mut b).is_err());
    }

    #[test]
    fn random_roundtrip() {
        // Build a well-conditioned random-ish system and verify A·x = b.
        let n = 8;
        let mut m = Matrix::zeros(n);
        let mut seed = 0x2545_F491_4F6C_DD1D_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, next());
            }
            // Diagonal dominance keeps it nonsingular.
            m.stamp(r, r, 4.0);
        }
        let reference = m.clone();
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let mut b = vec![0.0; n];
        for (r, slot) in b.iter_mut().enumerate() {
            for (c, &x) in x_true.iter().enumerate() {
                *slot += reference.get(r, c) * x;
            }
        }
        m.solve_in_place(&mut b).expect("diagonally dominant");
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-9, "x[{i}]");
        }
    }

    #[test]
    fn stamp_accumulates() {
        let mut m = Matrix::zeros(2);
        m.stamp(0, 0, 1.5);
        m.stamp(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 4.0);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }
}
