//! DC sweeps: repeatedly solve the operating point while stepping one
//! voltage source (used for transfer curves such as the transmission-gate
//! study of Fig. 2).

use crate::netlist::{Circuit, Element};
use crate::solver::{OperatingPoint, SolveError, SolverOptions};

/// One point of a DC sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The swept source value, volts.
    pub value: f64,
    /// The solved operating point at this value.
    pub op: OperatingPoint,
}

/// Sweeps the named voltage source over `values`, solving the DC operating
/// point at each step (each solution is independent; the circuits involved
/// are small enough that warm-starting is unnecessary).
///
/// # Errors
///
/// Returns the first [`SolveError`] encountered, or an error if the source
/// name is unknown.
pub fn dc_sweep(
    circuit: &Circuit,
    source_name: &str,
    values: impl IntoIterator<Item = f64>,
) -> Result<Vec<SweepPoint>, SolveError> {
    let mut points = Vec::new();
    for value in values {
        let mut ckt = circuit.clone();
        let mut found = false;
        for element in ckt.elements_mut() {
            if let Element::VSource { name, volts, .. } = element {
                if name == source_name {
                    *volts = value;
                    found = true;
                }
            }
        }
        assert!(found, "unknown sweep source `{source_name}`");
        let op = ckt.solve_dc_with(SolverOptions::default())?;
        points.push(SweepPoint { value, op });
    }
    Ok(points)
}

/// Generates `n` evenly spaced values covering `[start, stop]` inclusive.
pub fn linspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    (0..n)
        .map(|i| start + (stop - start) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GROUND;
    use device::{Polarity, TechParams};

    #[test]
    fn linspace_endpoints() {
        let v = linspace(0.0, 0.9, 10);
        assert_eq!(v.len(), 10);
        assert!((v[0] - 0.0).abs() < 1e-12);
        assert!((v[9] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn inverter_vtc_is_monotone_decreasing() {
        let tech = TechParams::cmos_32nm();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("VDD", vdd, GROUND, tech.vdd);
        ckt.add_vsource("VIN", input, GROUND, 0.0);
        ckt.add_transistor("MP", tech.model(Polarity::P), out, input, vdd);
        ckt.add_transistor("MN", tech.model(Polarity::N), out, input, GROUND);
        let points = dc_sweep(&ckt, "VIN", linspace(0.0, tech.vdd, 19)).expect("sweeps converge");
        let outs: Vec<f64> = points.iter().map(|p| p.op.voltage(out)).collect();
        for w in outs.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "VTC must be non-increasing: {outs:?}");
        }
        assert!(outs[0] > 0.85 * tech.vdd);
        assert!(*outs.last().expect("nonempty") < 0.15 * tech.vdd);
    }

    #[test]
    #[should_panic(expected = "unknown sweep source")]
    fn unknown_source_panics() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, GROUND, 1.0);
        ckt.add_resistor("R", a, GROUND, 1e3);
        let _ = dc_sweep(&ckt, "nope", [0.0]);
    }
}
