//! Circuit netlists: nodes and elements.

use device::CompactModel;

/// Handle to a circuit node. Node 0 is always ground.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// The ground node (reference, 0 V).
pub const GROUND: NodeId = NodeId(0);

impl NodeId {
    /// Raw index of the node (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A circuit element.
#[derive(Clone, Debug)]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// Instance name for diagnostics.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Ideal voltage source from `pos` to `neg`.
    VSource {
        /// Instance name; used to look up branch current.
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source voltage in volts.
        volts: f64,
    },
    /// Ideal current source pushing `amps` from `from` into `to`.
    ISource {
        /// Instance name for diagnostics.
        name: String,
        /// Current leaves this node.
        from: NodeId,
        /// Current enters this node.
        to: NodeId,
        /// Source current in amperes.
        amps: f64,
    },
    /// Linear capacitor between `a` and `b`. Open circuit in DC; companion
    /// conductance under backward-Euler transient analysis.
    Capacitor {
        /// Instance name for diagnostics.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads.
        farads: f64,
    },
    /// A transistor described by a [`CompactModel`]. The gate draws no DC
    /// current (gate tunnelling is accounted for analytically by the
    /// characterization layer, not inside the DC solve).
    Transistor {
        /// Instance name for diagnostics.
        name: String,
        /// Compact model evaluated each Newton iteration.
        model: CompactModel,
        /// Drain terminal.
        drain: NodeId,
        /// Gate terminal.
        gate: NodeId,
        /// Source terminal.
        source: NodeId,
    },
}

/// A flat netlist under construction.
///
/// Nodes are created with [`Circuit::node`]; elements with the `add_*`
/// methods. Solve with [`Circuit::solve_dc`](crate::solver) once built.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    elements: Vec<Element>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Self {
            node_names: vec!["0".to_owned()],
            elements: Vec::new(),
        }
    }

    /// Allocates a fresh node with a diagnostic name.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.into());
        id
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Diagnostic name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// All elements added so far.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutable access to the elements, for in-place parameter updates such
    /// as DC sweeps.
    pub fn elements_mut(&mut self) -> &mut [Element] {
        &mut self.elements
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not finite and positive.
    pub fn add_resistor(&mut self, name: impl Into<String>, a: NodeId, b: NodeId, ohms: f64) {
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistance must be positive"
        );
        self.elements.push(Element::Resistor {
            name: name.into(),
            a,
            b,
            ohms,
        });
    }

    /// Adds an ideal voltage source (`pos` − `neg` = `volts`).
    pub fn add_vsource(&mut self, name: impl Into<String>, pos: NodeId, neg: NodeId, volts: f64) {
        self.elements.push(Element::VSource {
            name: name.into(),
            pos,
            neg,
            volts,
        });
    }

    /// Adds an ideal current source pushing `amps` from `from` into `to`.
    pub fn add_isource(&mut self, name: impl Into<String>, from: NodeId, to: NodeId, amps: f64) {
        self.elements.push(Element::ISource {
            name: name.into(),
            from,
            to,
            amps,
        });
    }

    /// Adds a linear capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not finite and positive.
    pub fn add_capacitor(&mut self, name: impl Into<String>, a: NodeId, b: NodeId, farads: f64) {
        assert!(
            farads.is_finite() && farads > 0.0,
            "capacitance must be positive"
        );
        self.elements.push(Element::Capacitor {
            name: name.into(),
            a,
            b,
            farads,
        });
    }

    /// Adds a transistor with the given compact model.
    pub fn add_transistor(
        &mut self,
        name: impl Into<String>,
        model: CompactModel,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
    ) {
        self.elements.push(Element::Transistor {
            name: name.into(),
            model,
            drain,
            gate,
            source,
        });
    }

    /// Finds the index of a voltage source by name (for current readout).
    pub fn vsource_index(&self, name: &str) -> Option<usize> {
        self.elements
            .iter()
            .filter_map(|e| match e {
                Element::VSource { name: n, .. } => Some(n.as_str()),
                _ => None,
            })
            .position(|n| n == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_sequential() {
        let mut c = Circuit::new();
        assert_eq!(c.node_count(), 1);
        let a = c.node("a");
        let b = c.node("b");
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.node_name(GROUND), "0");
    }

    #[test]
    fn vsource_lookup_counts_only_sources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, GROUND, 10.0);
        c.add_vsource("VDD", a, GROUND, 0.9);
        c.add_vsource("VIN", a, GROUND, 0.0);
        assert_eq!(c.vsource_index("VDD"), Some(0));
        assert_eq!(c.vsource_index("VIN"), Some(1));
        assert_eq!(c.vsource_index("nope"), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_resistance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R", a, GROUND, 0.0);
    }
}
