//! Packed truth tables for functions of up to [`MAX_VARS`](crate::MAX_VARS)
//! variables.
//!
//! A function of `n ≤ 6` variables is stored in the low `2^n` bits of a
//! `u64`; bit `i` holds `f(i)` where variable `k` contributes bit `k` of the
//! minterm index. All operations keep the unused high bits zero so that
//! equality of truth tables is plain `u64` equality.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Pre-computed variable masks: `VAR_MASK[k]` is the 6-variable truth table
/// of variable `k` (the classic binary "magic numbers").
pub const VAR_MASK: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A Boolean function of up to six variables, packed into a `u64`.
///
/// # Example
///
/// ```
/// use logic::TruthTable;
///
/// let a = TruthTable::var(3, 0);
/// let b = TruthTable::var(3, 1);
/// let c = TruthTable::var(3, 2);
/// let maj = (a & b) | (b & c) | (a & c);
/// assert_eq!(maj.count_ones(), 4);
/// assert!(maj.eval(&[true, true, false]));
/// assert!(!maj.eval(&[true, false, false]));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    n_vars: u8,
    bits: u64,
}

impl TruthTable {
    /// Constructs the constant-zero function of `n_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars > 6`.
    pub fn zero(n_vars: usize) -> Self {
        assert!(n_vars <= 6, "truth tables support at most 6 variables");
        Self {
            n_vars: n_vars as u8,
            bits: 0,
        }
    }

    /// Constructs the constant-one function of `n_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars > 6`.
    pub fn one(n_vars: usize) -> Self {
        Self::zero(n_vars).not()
    }

    /// Constructs the projection function of variable `var` among `n_vars`.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars > 6` or `var >= n_vars`.
    pub fn var(n_vars: usize, var: usize) -> Self {
        assert!(n_vars <= 6, "truth tables support at most 6 variables");
        assert!(
            var < n_vars,
            "variable index {var} out of range 0..{n_vars}"
        );
        Self {
            n_vars: n_vars as u8,
            bits: VAR_MASK[var] & mask(n_vars),
        }
    }

    /// Constructs a truth table from its raw bit representation.
    ///
    /// Bits above `2^n_vars` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars > 6`.
    pub fn from_bits(n_vars: usize, bits: u64) -> Self {
        assert!(n_vars <= 6, "truth tables support at most 6 variables");
        Self {
            n_vars: n_vars as u8,
            bits: bits & mask(n_vars),
        }
    }

    /// Builds a truth table by evaluating `f` on every assignment.
    ///
    /// Assignment `i` passes variable `k` as bit `k` of `i`.
    pub fn from_fn(n_vars: usize, mut f: impl FnMut(&[bool]) -> bool) -> Self {
        assert!(n_vars <= 6, "truth tables support at most 6 variables");
        let mut bits = 0u64;
        let mut assignment = [false; 6];
        for i in 0..(1u64 << n_vars) {
            for (k, slot) in assignment.iter_mut().enumerate().take(n_vars) {
                *slot = (i >> k) & 1 == 1;
            }
            if f(&assignment[..n_vars]) {
                bits |= 1 << i;
            }
        }
        Self {
            n_vars: n_vars as u8,
            bits,
        }
    }

    /// The number of variables this table is defined over.
    pub fn n_vars(&self) -> usize {
        self.n_vars as usize
    }

    /// The raw packed bits (only the low `2^n_vars` bits are meaningful).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// The number of minterms (assignments mapped to one).
    pub fn count_ones(&self) -> u32 {
        self.bits.count_ones()
    }

    /// The number of maxterms (assignments mapped to zero).
    pub fn count_zeros(&self) -> u32 {
        (1u32 << self.n_vars) - self.count_ones()
    }

    /// Evaluates the function on a full assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != n_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.n_vars(), "assignment arity mismatch");
        let mut idx = 0usize;
        for (k, &bit) in assignment.iter().enumerate() {
            if bit {
                idx |= 1 << k;
            }
        }
        self.eval_index(idx)
    }

    /// Evaluates the function on minterm `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n_vars`.
    pub fn eval_index(&self, index: usize) -> bool {
        assert!(index < (1 << self.n_vars), "minterm index out of range");
        (self.bits >> index) & 1 == 1
    }

    /// Whether this is the constant-zero function.
    pub fn is_zero(&self) -> bool {
        self.bits == 0
    }

    /// Whether this is the constant-one function.
    pub fn is_one(&self) -> bool {
        self.bits == mask(self.n_vars())
    }

    /// Whether this is either constant.
    pub fn is_constant(&self) -> bool {
        self.is_zero() || self.is_one()
    }

    /// The positive cofactor with respect to `var` (as a function of the same
    /// variable set; `var` becomes irrelevant).
    pub fn cofactor1(&self, var: usize) -> Self {
        let m = VAR_MASK[var] & mask(self.n_vars());
        let hi = self.bits & m;
        Self {
            n_vars: self.n_vars,
            bits: hi | (hi >> (1 << var)),
        }
    }

    /// The negative cofactor with respect to `var`.
    pub fn cofactor0(&self, var: usize) -> Self {
        let m = !VAR_MASK[var] & mask(self.n_vars());
        let lo = self.bits & m;
        Self {
            n_vars: self.n_vars,
            bits: lo | (lo << (1 << var)),
        }
    }

    /// Whether the function actually depends on `var`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor0(var) != self.cofactor1(var)
    }

    /// The set of variables the function depends on, as a bit mask.
    pub fn support_mask(&self) -> u8 {
        let mut m = 0u8;
        for v in 0..self.n_vars() {
            if self.depends_on(v) {
                m |= 1 << v;
            }
        }
        m
    }

    /// The number of variables the function depends on.
    pub fn support_size(&self) -> usize {
        self.support_mask().count_ones() as usize
    }

    /// Returns the same function with variable `var` complemented.
    pub fn flip_var(&self, var: usize) -> Self {
        let shift = 1u32 << var;
        let m = VAR_MASK[var];
        let hi = self.bits & m;
        let lo = self.bits & !m;
        Self {
            n_vars: self.n_vars,
            bits: ((hi >> shift) | (lo << shift)) & mask(self.n_vars()),
        }
    }

    /// Returns the same function with adjacent variables `var` and `var + 1`
    /// swapped.
    ///
    /// # Panics
    ///
    /// Panics if `var + 1 >= n_vars`.
    pub fn swap_adjacent(&self, var: usize) -> Self {
        assert!(
            var + 1 < self.n_vars(),
            "cannot swap variable {var} with {}",
            var + 1
        );
        // Classic bit-trick: move the blocks where bit(var) != bit(var+1).
        let shift = 1u32 << var;
        let keep = !(VAR_MASK[var] ^ VAR_MASK[var + 1]);
        let up = VAR_MASK[var + 1] & !VAR_MASK[var];
        let down = VAR_MASK[var] & !VAR_MASK[var + 1];
        let bits = (self.bits & keep) | ((self.bits & up) >> shift) | ((self.bits & down) << shift);
        Self {
            n_vars: self.n_vars,
            bits: bits & mask(self.n_vars()),
        }
    }

    /// Applies an arbitrary variable permutation: variable `k` of the result
    /// reads what variable `perm[k]` read in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n_vars`.
    pub fn permute(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.n_vars(), "permutation arity mismatch");
        let mut seen = [false; 6];
        for &p in perm {
            assert!(p < self.n_vars() && !seen[p], "invalid permutation");
            seen[p] = true;
        }
        let n = self.n_vars();
        let mut bits = 0u64;
        for i in 0..(1u64 << n) {
            // Destination minterm i reads source minterm j where
            // bit perm[k] of j equals bit k of i.
            let mut j = 0u64;
            for (k, &p) in perm.iter().enumerate() {
                if (i >> k) & 1 == 1 {
                    j |= 1 << p;
                }
            }
            if (self.bits >> j) & 1 == 1 {
                bits |= 1 << i;
            }
        }
        Self {
            n_vars: self.n_vars,
            bits,
        }
    }

    /// Re-expresses the function over a larger variable set, keeping variable
    /// indices (new variables are irrelevant).
    ///
    /// # Panics
    ///
    /// Panics if `n_vars` is smaller than the current arity or exceeds six.
    pub fn extend_to(&self, n_vars: usize) -> Self {
        assert!(n_vars <= 6, "truth tables support at most 6 variables");
        assert!(
            n_vars >= self.n_vars(),
            "cannot shrink a truth table with extend_to"
        );
        let mut bits = self.bits;
        for v in self.n_vars()..n_vars {
            bits |= bits << (1u64 << v);
        }
        Self {
            n_vars: n_vars as u8,
            bits: bits & mask(n_vars),
        }
    }

    /// Drops irrelevant trailing variables down to the function's support.
    ///
    /// Returns a pair of the compacted table and the list of original
    /// variable indices retained (in order).
    pub fn shrink_to_support(&self) -> (Self, Vec<usize>) {
        let kept: Vec<usize> = (0..self.n_vars()).filter(|&v| self.depends_on(v)).collect();
        let n = kept.len();
        let mut bits = 0u64;
        for i in 0..(1u64 << n) {
            let mut j = 0u64;
            for (k, &orig) in kept.iter().enumerate() {
                if (i >> k) & 1 == 1 {
                    j |= 1 << orig;
                }
            }
            // Irrelevant variables may take any value; use zero.
            if (self.bits >> j) & 1 == 1 {
                bits |= 1 << i;
            }
        }
        (
            Self {
                n_vars: n as u8,
                bits,
            },
            kept,
        )
    }

    /// Evaluates the function bitwise over 64 parallel patterns.
    ///
    /// `pins[k]` carries 64 values of variable `k` (bit `j` = pattern `j`);
    /// bit `j` of the result is the function applied to bit `j` of every
    /// pin. This is the shared word-evaluation kernel behind mapped-netlist
    /// simulation and [`TruthTable::compose`]: the function is expanded as
    /// a sum of minterms, each minterm an AND of (possibly complemented)
    /// pin words.
    ///
    /// # Panics
    ///
    /// Panics if `pins.len() != n_vars`.
    pub fn eval_words(&self, pins: &[u64]) -> u64 {
        assert_eq!(pins.len(), self.n_vars(), "pin word count mismatch");
        let mut out = 0u64;
        for m in 0..(1usize << self.n_vars) {
            if (self.bits >> m) & 1 == 0 {
                continue;
            }
            let mut term = u64::MAX;
            for (k, &w) in pins.iter().enumerate() {
                term &= if (m >> k) & 1 == 1 { w } else { !w };
            }
            out |= term;
        }
        out
    }

    /// Composes `self` with sub-functions: variable `k` is replaced by
    /// `inputs[k]`. All inputs must share one arity, which becomes the
    /// arity of the result.
    ///
    /// A truth table over `n` variables *is* a word of `2^n ≤ 64` parallel
    /// evaluations, so composition is one [`TruthTable::eval_words`] call
    /// over the input tables' packed bits.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n_vars` or the inputs disagree on arity.
    pub fn compose(&self, inputs: &[TruthTable]) -> Self {
        assert_eq!(inputs.len(), self.n_vars(), "composition arity mismatch");
        let n = inputs.first().map_or(0, |t| t.n_vars());
        assert!(
            inputs.iter().all(|t| t.n_vars() == n),
            "composition inputs must share an arity"
        );
        let words: Vec<u64> = inputs.iter().map(|t| t.bits()).collect();
        Self::from_bits(n, self.eval_words(&words))
    }
}

fn mask(n_vars: usize) -> u64 {
    if n_vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1u64 << n_vars)) - 1
    }
}

impl Not for TruthTable {
    type Output = Self;
    fn not(self) -> Self {
        Self {
            n_vars: self.n_vars,
            bits: !self.bits & mask(self.n_vars()),
        }
    }
}

macro_rules! impl_bitop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for TruthTable {
            type Output = Self;
            fn $method(self, rhs: Self) -> Self {
                assert_eq!(self.n_vars, rhs.n_vars, "truth-table arity mismatch");
                Self {
                    n_vars: self.n_vars,
                    bits: self.bits $op rhs.bits,
                }
            }
        }
    };
}

impl_bitop!(BitAnd, bitand, &);
impl_bitop!(BitOr, bitor, |);
impl_bitop!(BitXor, bitxor, ^);

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars, {:#x})", self.n_vars, self.bits)
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = (1usize << self.n_vars()).div_ceil(4);
        write!(f, "{:0width$x}", self.bits, width = digits.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_masks_are_projections() {
        for n in 1..=6 {
            for v in 0..n {
                let t = TruthTable::var(n, v);
                for i in 0..(1usize << n) {
                    assert_eq!(t.eval_index(i), (i >> v) & 1 == 1);
                }
            }
        }
    }

    #[test]
    fn basic_algebra() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!((a & b).count_ones(), 1);
        assert_eq!((a | b).count_ones(), 3);
        assert_eq!((a ^ b).count_ones(), 2);
        assert_eq!((!(a & b)).count_ones(), 3);
        assert!((a ^ a).is_zero());
        assert!((a | !a).is_one());
    }

    #[test]
    fn cofactors_shannon() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let f = (a & b) | c;
        // Shannon expansion: f = a·f1 + a'·f0.
        let recomposed = (a & f.cofactor1(0)) | (!a & f.cofactor0(0));
        assert_eq!(f, recomposed);
        assert!(f.depends_on(0));
        assert!(!(a & b).depends_on(2));
    }

    #[test]
    fn support_detection() {
        let a = TruthTable::var(4, 0);
        let c = TruthTable::var(4, 2);
        let f = a ^ c;
        assert_eq!(f.support_mask(), 0b0101);
        assert_eq!(f.support_size(), 2);
        let (g, kept) = f.shrink_to_support();
        assert_eq!(kept, vec![0, 2]);
        assert_eq!(g.n_vars(), 2);
        let x = TruthTable::var(2, 0);
        let y = TruthTable::var(2, 1);
        assert_eq!(g, x ^ y);
    }

    #[test]
    fn flip_var_is_involution() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let f = (a & b) | (!b & c);
        for v in 0..3 {
            assert_eq!(f.flip_var(v).flip_var(v), f);
        }
        assert_eq!(TruthTable::var(3, 1).flip_var(1), !TruthTable::var(3, 1));
    }

    #[test]
    fn swap_adjacent_swaps() {
        let f = TruthTable::var(3, 0) & !TruthTable::var(3, 1);
        let g = f.swap_adjacent(0);
        assert_eq!(g, TruthTable::var(3, 1) & !TruthTable::var(3, 0));
        assert_eq!(g.swap_adjacent(0), f);
    }

    #[test]
    fn permute_matches_repeated_swaps() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let f = (a & b) | c;
        // Rotate variables left: new var0 reads old var1, etc.
        let g = f.permute(&[1, 2, 0]);
        // Permuting distributes over the Boolean operators.
        let expected = (a.permute(&[1, 2, 0]) & b.permute(&[1, 2, 0])) | c.permute(&[1, 2, 0]);
        assert_eq!(g, expected);
        // Spelled out: g(x) = f(y) with y_{perm[k]} = x_k.
        let x0 = TruthTable::var(3, 0);
        let x1 = TruthTable::var(3, 1);
        let x2 = TruthTable::var(3, 2);
        assert_eq!(g, (x2 & x0) | x1);
        // Identity permutation.
        assert_eq!(f.permute(&[0, 1, 2]), f);
    }

    #[test]
    fn permute_projection() {
        // Permuted projection stays a projection of the mapped variable.
        let f = TruthTable::var(3, 2);
        let g = f.permute(&[2, 0, 1]);
        // New variable 0 reads old variable 2, so g should be var 0.
        assert_eq!(g, TruthTable::var(3, 0));
    }

    #[test]
    fn extend_keeps_function() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let f = a ^ b;
        let g = f.extend_to(4);
        assert_eq!(g.n_vars(), 4);
        assert_eq!(g, TruthTable::var(4, 0) ^ TruthTable::var(4, 1));
        assert!(!g.depends_on(2));
        assert!(!g.depends_on(3));
    }

    #[test]
    fn compose_builds_nested_functions() {
        // f(x, y) = x & y composed with x = a^b, y = c gives (a^b)&c.
        let f = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let g = f.compose(&[a ^ b, c]);
        assert_eq!(g, (a ^ b) & c);
    }

    #[test]
    fn eval_words_matches_scalar_eval() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let f = (a & b) | (!a & c);
        // 8 patterns in one word.
        let wa = 0b10101010u64;
        let wb = 0b11001100u64;
        let wc = 0b11110000u64;
        let out = f.eval_words(&[wa, wb, wc]);
        for k in 0..8 {
            let bits = [(wa >> k) & 1 == 1, (wb >> k) & 1 == 1, (wc >> k) & 1 == 1];
            assert_eq!((out >> k) & 1 == 1, f.eval(&bits), "pattern {k}");
        }
    }

    #[test]
    fn eval_words_on_constants() {
        assert_eq!(TruthTable::one(2).eval_words(&[0b01, 0b10]), u64::MAX);
        assert_eq!(TruthTable::zero(2).eval_words(&[0b01, 0b10]), 0);
    }

    #[test]
    fn from_fn_majority() {
        let maj = TruthTable::from_fn(3, |v| (v[0] as u8 + v[1] as u8 + v[2] as u8) >= 2);
        assert_eq!(maj.count_ones(), 4);
        assert!(maj.eval(&[true, true, false]));
        assert!(!maj.eval(&[false, false, true]));
    }

    #[test]
    #[should_panic(expected = "at most 6")]
    fn rejects_seven_vars() {
        let _ = TruthTable::zero(7);
    }

    #[test]
    fn display_is_hex() {
        let a = TruthTable::var(2, 0);
        assert_eq!(a.to_string(), "a");
        let one = TruthTable::one(3);
        assert_eq!(one.to_string(), "ff");
    }
}
