//! Irredundant sum-of-products extraction (Minato–Morreale ISOP).
//!
//! Used by the AIG refactoring pass (rebuild a cut as a balanced SOP when
//! that is cheaper) and by the genlib exporter to print gate functions in
//! the SOP notation genlib expects.

use crate::truthtable::TruthTable;

/// A product term over at most six variables.
///
/// A variable may appear positively, negatively, or not at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Cube {
    /// Bit `v` set: variable `v` appears in this cube.
    pub care: u8,
    /// Bit `v` set (and `care` set): variable appears positively.
    pub polarity: u8,
}

impl Cube {
    /// The universal cube (empty product, constant one).
    pub fn universe() -> Self {
        Self {
            care: 0,
            polarity: 0,
        }
    }

    /// A single-literal cube.
    pub fn literal(var: usize, positive: bool) -> Self {
        Self {
            care: 1 << var,
            polarity: if positive { 1 << var } else { 0 },
        }
    }

    /// Adds a literal to the cube, returning the extended cube.
    pub fn with_literal(mut self, var: usize, positive: bool) -> Self {
        self.care |= 1 << var;
        if positive {
            self.polarity |= 1 << var;
        } else {
            self.polarity &= !(1 << var);
        }
        self
    }

    /// Number of literals in the cube.
    pub fn literal_count(&self) -> usize {
        self.care.count_ones() as usize
    }

    /// Evaluates the cube on an assignment given as a bit mask.
    pub fn eval_mask(&self, assignment: u8) -> bool {
        (assignment ^ self.polarity) & self.care == 0
    }

    /// The truth table of this cube over `n_vars` variables.
    pub fn to_truth_table(&self, n_vars: usize) -> TruthTable {
        let mut t = TruthTable::one(n_vars);
        for v in 0..n_vars {
            if (self.care >> v) & 1 == 1 {
                let lit = TruthTable::var(n_vars, v);
                t = t & if (self.polarity >> v) & 1 == 1 {
                    lit
                } else {
                    !lit
                };
            }
        }
        t
    }
}

/// Computes an irredundant sum-of-products cover of `f` using the
/// Minato–Morreale algorithm (with on-set = off-set complement, i.e. no
/// don't-cares).
///
/// The result covers exactly `f`: the OR of all returned cubes equals `f`.
///
/// # Example
///
/// ```
/// use logic::{isop, TruthTable};
///
/// let a = TruthTable::var(3, 0);
/// let b = TruthTable::var(3, 1);
/// let c = TruthTable::var(3, 2);
/// let f = (a & b) | c;
/// let cover = isop(f);
/// let rebuilt = cover
///     .iter()
///     .fold(TruthTable::zero(3), |acc, cube| acc | cube.to_truth_table(3));
/// assert_eq!(rebuilt, f);
/// assert!(cover.len() <= 2);
/// ```
pub fn isop(f: TruthTable) -> Vec<Cube> {
    let mut cubes = Vec::new();
    isop_rec(f, f, f.n_vars(), Cube::universe(), &mut cubes);
    cubes
}

/// Recursive ISOP on (lower bound `l`, upper bound `u`): returns a cover `g`
/// with `l ⊆ g ⊆ u`. Entry point uses `l = u = f`.
fn isop_rec(
    l: TruthTable,
    u: TruthTable,
    var_hint: usize,
    prefix: Cube,
    out: &mut Vec<Cube>,
) -> TruthTable {
    debug_assert_eq!((l & !u).bits(), 0, "lower bound must imply upper bound");
    if l.is_zero() {
        return TruthTable::zero(l.n_vars());
    }
    if u.is_one() {
        out.push(prefix);
        return TruthTable::one(l.n_vars());
    }
    // Pick the top variable in the joint support.
    let mut var = None;
    for v in (0..var_hint).rev() {
        if l.depends_on(v) || u.depends_on(v) {
            var = Some(v);
            break;
        }
    }
    let v = match var {
        Some(v) => v,
        None => {
            // l is a constant: non-zero here, so emit the prefix cube.
            out.push(prefix);
            return TruthTable::one(l.n_vars());
        }
    };

    let l0 = l.cofactor0(v);
    let l1 = l.cofactor1(v);
    let u0 = u.cofactor0(v);
    let u1 = u.cofactor1(v);

    // Cubes that must contain literal !v: needed in the 0-branch but not
    // allowed in the 1-branch.
    let g0 = isop_rec(l0 & !u1, u0, v, prefix.with_literal(v, false), out);
    // Cubes that must contain literal v.
    let g1 = isop_rec(l1 & !u0, u1, v, prefix.with_literal(v, true), out);
    // Remaining minterms can be covered by cubes free of variable v.
    let l_rest = (l0 & !g0) | (l1 & !g1);
    let g_free = isop_rec(l_rest, u0 & u1, v, prefix, out);

    let tv = TruthTable::var(l.n_vars(), v);
    (!tv & g0) | (tv & g1) | g_free
}

/// Renders a cover as genlib-style SOP text with variable names `a`–`f`,
/// e.g. `a*!b + c`.
pub fn cover_to_string(cubes: &[Cube]) -> String {
    if cubes.is_empty() {
        return "CONST0".to_owned();
    }
    let mut terms = Vec::with_capacity(cubes.len());
    for cube in cubes {
        if cube.care == 0 {
            return "CONST1".to_owned();
        }
        let mut lits = Vec::new();
        for v in 0..6 {
            if (cube.care >> v) & 1 == 1 {
                let name = (b'a' + v) as char;
                if (cube.polarity >> v) & 1 == 1 {
                    lits.push(name.to_string());
                } else {
                    lits.push(format!("!{name}"));
                }
            }
        }
        terms.push(lits.join("*"));
    }
    terms.join(" + ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_tt(cubes: &[Cube], n: usize) -> TruthTable {
        cubes
            .iter()
            .fold(TruthTable::zero(n), |acc, c| acc | c.to_truth_table(n))
    }

    #[test]
    fn isop_covers_exactly() {
        for n in 1..=4usize {
            // Exhaustive for small n, sampled for n = 4.
            let limit = 1u64 << (1u64 << n);
            let step = if n < 4 { 1 } else { 257 };
            let mut bits = 0u64;
            while bits < limit {
                let f = TruthTable::from_bits(n, bits);
                let cover = isop(f);
                assert_eq!(cover_tt(&cover, n), f, "cover mismatch for {f:?}");
                bits += step;
            }
        }
    }

    #[test]
    fn isop_of_constants() {
        assert!(isop(TruthTable::zero(3)).is_empty());
        let ones = isop(TruthTable::one(3));
        assert_eq!(ones.len(), 1);
        assert_eq!(ones[0], Cube::universe());
    }

    #[test]
    fn isop_single_cube_for_product() {
        let a = TruthTable::var(3, 0);
        let c = TruthTable::var(3, 2);
        let cover = isop(a & !c);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].literal_count(), 2);
    }

    #[test]
    fn isop_xor_needs_two_cubes() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let cover = isop(a ^ b);
        assert_eq!(cover.len(), 2);
        assert!(cover.iter().all(|c| c.literal_count() == 2));
    }

    #[test]
    fn isop_is_irredundant_on_samples() {
        // Removing any cube must change the covered function.
        let samples = [
            TruthTable::from_bits(4, 0x1ee1),
            TruthTable::from_bits(4, 0x8000),
            TruthTable::from_bits(4, 0x6996), // 4-input parity
            TruthTable::from_bits(3, 0xe8),   // majority
        ];
        for f in samples {
            let cover = isop(f);
            assert_eq!(cover_tt(&cover, f.n_vars()), f);
            for skip in 0..cover.len() {
                let partial: Vec<Cube> = cover
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, c)| *c)
                    .collect();
                assert_ne!(
                    cover_tt(&partial, f.n_vars()),
                    f,
                    "cube {skip} is redundant for {f:?}"
                );
            }
        }
    }

    #[test]
    fn cube_eval_mask() {
        let cube = Cube::literal(0, true).with_literal(2, false);
        assert!(cube.eval_mask(0b001));
        assert!(!cube.eval_mask(0b101));
        assert!(!cube.eval_mask(0b000));
    }

    #[test]
    fn string_rendering() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let s = cover_to_string(&isop(a & !b));
        assert_eq!(s, "a*!b");
        assert_eq!(cover_to_string(&[]), "CONST0");
        assert_eq!(cover_to_string(&[Cube::universe()]), "CONST1");
    }
}
