//! A small Boolean expression AST with a text parser.
//!
//! Used to declare gate functions readably, e.g. the generalized NAND of the
//! paper is `!( (a^c) & (b^d) )`. Variables are single letters `a`–`f`
//! mapping to truth-table variables 0–5.
//!
//! Grammar (precedence low → high): `|`, `^`, `&`, unary `!`, parentheses.

use std::fmt;

use crate::truthtable::TruthTable;

/// A Boolean expression over at most six variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Constant false/true.
    Const(bool),
    /// Variable by index (0–5, printed `a`–`f`).
    Var(u8),
    /// Logical complement.
    Not(Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Exclusive or.
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Shorthand constructor for a variable.
    pub fn var(v: u8) -> Self {
        Expr::Var(v)
    }

    /// Logical complement of `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Expr::Not(Box::new(self))
    }

    /// Conjunction with `rhs`.
    pub fn and(self, rhs: Expr) -> Self {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction with `rhs`.
    pub fn or(self, rhs: Expr) -> Self {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// Exclusive or with `rhs`.
    pub fn xor(self, rhs: Expr) -> Self {
        Expr::Xor(Box::new(self), Box::new(rhs))
    }

    /// Highest variable index referenced, plus one (zero for constants).
    pub fn arity(&self) -> usize {
        match self {
            Expr::Const(_) => 0,
            Expr::Var(v) => *v as usize + 1,
            Expr::Not(e) => e.arity(),
            Expr::And(l, r) | Expr::Or(l, r) | Expr::Xor(l, r) => l.arity().max(r.arity()),
        }
    }

    /// Evaluates under an assignment (indexing by variable number).
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable is out of range of `assignment`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(v) => assignment[*v as usize],
            Expr::Not(e) => !e.eval(assignment),
            Expr::And(l, r) => l.eval(assignment) && r.eval(assignment),
            Expr::Or(l, r) => l.eval(assignment) || r.eval(assignment),
            Expr::Xor(l, r) => l.eval(assignment) ^ r.eval(assignment),
        }
    }

    /// Converts to a truth table over `n_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars` is smaller than [`Expr::arity`] or exceeds six.
    pub fn to_truth_table(&self, n_vars: usize) -> TruthTable {
        assert!(
            n_vars >= self.arity(),
            "truth table arity below expression arity"
        );
        TruthTable::from_fn(n_vars, |v| self.eval(v))
    }

    /// Parses an expression from text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseExprError`] on malformed input or variables beyond `f`.
    ///
    /// # Example
    ///
    /// ```
    /// use logic::Expr;
    ///
    /// # fn main() -> Result<(), logic::expr::ParseExprError> {
    /// let gnand = Expr::parse("!((a^c)&(b^d))")?;
    /// assert_eq!(gnand.arity(), 4);
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(text: &str) -> Result<Self, ParseExprError> {
        let tokens: Vec<char> = text.chars().filter(|c| !c.is_whitespace()).collect();
        let mut parser = Parser { tokens, pos: 0 };
        let e = parser.parse_or()?;
        if parser.pos != parser.tokens.len() {
            return Err(ParseExprError::trailing(parser.pos));
        }
        Ok(e)
    }
}

/// Error produced when parsing a Boolean expression fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseExprError {
    message: String,
    position: usize,
}

impl ParseExprError {
    fn new(message: impl Into<String>, position: usize) -> Self {
        Self {
            message: message.into(),
            position,
        }
    }

    fn trailing(position: usize) -> Self {
        Self::new("unexpected trailing input", position)
    }

    /// Character offset (whitespace stripped) where the error occurred.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at position {}", self.message, self.position)
    }
}

impl std::error::Error for ParseExprError {}

struct Parser {
    tokens: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.tokens.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_or(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.parse_xor()?;
        while self.peek() == Some('|') || self.peek() == Some('+') {
            self.bump();
            let rhs = self.parse_xor()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn parse_xor(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some('^') {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = lhs.xor(rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.parse_unary()?;
        while self.peek() == Some('&') || self.peek() == Some('*') {
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseExprError> {
        match self.peek() {
            Some('!') => {
                self.bump();
                Ok(self.parse_unary()?.not())
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseExprError> {
        let pos = self.pos;
        match self.bump() {
            Some('(') => {
                let e = self.parse_or()?;
                if self.bump() != Some(')') {
                    return Err(ParseExprError::new(
                        "expected closing parenthesis",
                        self.pos,
                    ));
                }
                Ok(self.parse_postfix(e))
            }
            Some('0') => Ok(Expr::Const(false)),
            Some('1') => Ok(Expr::Const(true)),
            Some(c @ 'a'..='f') => Ok(self.parse_postfix(Expr::Var(c as u8 - b'a'))),
            Some(c) => Err(ParseExprError::new(
                format!("unexpected character `{c}`"),
                pos,
            )),
            None => Err(ParseExprError::new("unexpected end of input", pos)),
        }
    }

    /// Postfix `'` complement, as in `a'` or `(a&b)'`.
    fn parse_postfix(&mut self, mut e: Expr) -> Expr {
        while self.peek() == Some('\'') {
            self.bump();
            e = e.not();
        }
        e
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `{:#}` (alternate) parenthesizes binary operators, which is how
        // sub-expressions are always rendered — precedence-safe output.
        let parenthesize =
            f.alternate() && matches!(self, Expr::And(..) | Expr::Or(..) | Expr::Xor(..));
        if parenthesize {
            f.write_str("(")?;
        }
        match self {
            Expr::Const(c) => write!(f, "{}", u8::from(*c))?,
            Expr::Var(v) => write!(f, "{}", (b'a' + v) as char)?,
            Expr::Not(e) => write!(f, "!{e:#}")?,
            Expr::And(l, r) => write!(f, "{l:#}&{r:#}")?,
            Expr::Or(l, r) => write!(f, "{l:#}|{r:#}")?,
            Expr::Xor(l, r) => write!(f, "{l:#}^{r:#}")?,
        }
        if parenthesize {
            f.write_str(")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truthtable::TruthTable;

    #[test]
    fn parses_generalized_nand() {
        let e = Expr::parse("!((a^c)&(b^d))").expect("valid expression");
        let t = e.to_truth_table(4);
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 2);
        let d = TruthTable::var(4, 3);
        assert_eq!(t, !((a ^ c) & (b ^ d)));
    }

    #[test]
    fn precedence_or_lowest() {
        let e = Expr::parse("a|b&c").expect("valid expression");
        let t = e.to_truth_table(3);
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        assert_eq!(t, a | (b & c));
    }

    #[test]
    fn postfix_complement() {
        let e = Expr::parse("a'&b").expect("valid expression");
        let t = e.to_truth_table(2);
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!(t, !a & b);
    }

    #[test]
    fn plus_and_star_aliases() {
        let e1 = Expr::parse("a+b*c").expect("valid expression");
        let e2 = Expr::parse("a|b&c").expect("valid expression");
        assert_eq!(e1.to_truth_table(3), e2.to_truth_table(3));
    }

    #[test]
    fn constants() {
        assert_eq!(
            Expr::parse("0").expect("valid").to_truth_table(1),
            TruthTable::zero(1)
        );
        assert_eq!(
            Expr::parse("1").expect("valid").to_truth_table(1),
            TruthTable::one(1)
        );
    }

    #[test]
    fn error_on_garbage() {
        assert!(Expr::parse("a&&b").is_err());
        assert!(Expr::parse("(a|b").is_err());
        assert!(Expr::parse("a b").is_err());
        assert!(Expr::parse("z").is_err());
        assert!(Expr::parse("").is_err());
    }

    #[test]
    fn display_roundtrip() {
        let e = Expr::parse("!((a^c)&(b^d))|e").expect("valid expression");
        let shown = e.to_string();
        let re = Expr::parse(&shown).expect("display output parses");
        assert_eq!(re.to_truth_table(5), e.to_truth_table(5));
    }

    #[test]
    fn arity_tracks_max_var() {
        assert_eq!(Expr::parse("a^f").expect("valid").arity(), 6);
        assert_eq!(Expr::parse("1").expect("valid").arity(), 0);
    }
}
