//! Boolean-function utilities shared across the workspace.
//!
//! This crate provides the Boolean layer that both the gate library and the
//! technology mapper are built on:
//!
//! * [`TruthTable`] — functions of up to six variables packed into a `u64`;
//! * [`npn`] — NPN canonization (input negation, input permutation, output
//!   negation) used for Boolean matching during technology mapping;
//! * [`expr`] — a tiny Boolean expression AST with a parser, handy for
//!   declaring gate functions such as `(a^c)&(b^d)`;
//! * [`sop`] — irredundant sum-of-products extraction (Minato–Morreale ISOP).
//!
//! # Example
//!
//! ```
//! use logic::{TruthTable, npn::npn_canon};
//!
//! let a = TruthTable::var(2, 0);
//! let b = TruthTable::var(2, 1);
//! let xor = a ^ b;
//! let xnor = !xor;
//! // XOR and XNOR share an NPN class.
//! assert_eq!(npn_canon(xor).canonical, npn_canon(xnor).canonical);
//! ```

pub mod expr;
pub mod npn;
pub mod sop;
pub mod truthtable;

pub use expr::Expr;
pub use npn::{npn_canon, NpnCanon, NpnTransform};
pub use sop::{isop, Cube};
pub use truthtable::TruthTable;

/// Maximum number of variables supported by the packed truth tables.
pub const MAX_VARS: usize = 6;
