//! NPN canonization of Boolean functions.
//!
//! Two functions are NPN-equivalent when one can be obtained from the other
//! by Negating inputs, Permuting inputs, and/or Negating the output. The
//! technology mapper matches cut functions against library gates per NPN
//! class, which is what lets generalized ambipolar gates (with embedded XOR
//! inputs) absorb both polarities of a sub-function.
//!
//! Canonization here is exhaustive over the declared variable count, which is
//! exact and fast enough for the ≤6-variable cuts used in mapping (callers
//! cache results keyed by the raw truth-table bits).

use crate::truthtable::TruthTable;

/// An NPN transform: flip the masked inputs, then permute (result variable
/// `k` reads pre-permutation variable `perm[k]`), then optionally complement
/// the output.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NpnTransform {
    /// Number of variables the transform acts on.
    pub n_vars: u8,
    /// Bit `v` set means input variable `v` is complemented before permuting.
    pub input_flips: u8,
    /// `perm[k]` is the pre-permutation variable feeding post-permutation
    /// slot `k`. Only the first `n_vars` entries are meaningful.
    pub perm: [u8; 6],
    /// Whether the output is complemented.
    pub output_flip: bool,
}

impl std::fmt::Debug for NpnTransform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NpnTransform(flips={:#b}, perm={:?}, out={})",
            self.input_flips,
            &self.perm[..self.n_vars as usize],
            self.output_flip
        )
    }
}

impl NpnTransform {
    /// The identity transform on `n_vars` variables.
    pub fn identity(n_vars: usize) -> Self {
        let mut perm = [0u8; 6];
        for (k, p) in perm.iter_mut().enumerate() {
            *p = k as u8;
        }
        Self {
            n_vars: n_vars as u8,
            input_flips: 0,
            perm,
            output_flip: false,
        }
    }

    /// Applies the transform to a truth table.
    ///
    /// # Panics
    ///
    /// Panics if the table arity does not match the transform arity.
    pub fn apply(&self, t: TruthTable) -> TruthTable {
        assert_eq!(t.n_vars(), self.n_vars as usize, "transform arity mismatch");
        let n = self.n_vars as usize;
        let mut t = t;
        for v in 0..n {
            if (self.input_flips >> v) & 1 == 1 {
                t = t.flip_var(v);
            }
        }
        let perm: Vec<usize> = self.perm[..n].iter().map(|&p| p as usize).collect();
        t = t.permute(&perm);
        if self.output_flip {
            t = !t;
        }
        t
    }

    /// The composition `self ∘ other`: applying the result equals applying
    /// `other` first and then `self`.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    #[allow(clippy::needless_range_loop)] // index pairs two arrays
    pub fn compose(&self, other: &Self) -> Self {
        assert_eq!(self.n_vars, other.n_vars, "transform arity mismatch");
        let n = self.n_vars as usize;
        // self.apply(other.apply(f)): flips move through other's
        // permutation; permutations compose; output flips xor.
        let mut flips = other.input_flips;
        for k in 0..n {
            if (self.input_flips >> k) & 1 == 1 {
                flips ^= 1 << other.perm[k];
            }
        }
        let mut perm = [0u8; 6];
        for k in 0..n {
            perm[k] = other.perm[self.perm[k] as usize];
        }
        Self {
            n_vars: self.n_vars,
            input_flips: flips,
            perm,
            output_flip: self.output_flip ^ other.output_flip,
        }
    }

    /// The inverse transform, satisfying
    /// `t.inverse().apply(t.apply(f)) == f` for every `f`.
    #[allow(clippy::needless_range_loop)] // index pairs two arrays
    pub fn inverse(&self) -> Self {
        let n = self.n_vars as usize;
        let mut perm_inv = [0u8; 6];
        for k in 0..n {
            perm_inv[self.perm[k] as usize] = k as u8;
        }
        let mut flips = 0u8;
        for k in 0..n {
            if (self.input_flips >> k) & 1 == 1 {
                flips |= 1 << perm_inv[k];
            }
        }
        Self {
            n_vars: self.n_vars,
            input_flips: flips,
            perm: perm_inv,
            output_flip: self.output_flip,
        }
    }
}

/// The result of canonizing a function: the class representative and the
/// transform that maps the *original* function onto it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NpnCanon {
    /// The NPN class representative (minimal packed bits over the class).
    pub canonical: TruthTable,
    /// Transform with `transform.apply(original) == canonical`.
    pub transform: NpnTransform,
}

/// Computes the NPN canonical representative of `t` by exhaustive search
/// over input flips, input permutations, and output phase.
///
/// The representative is the NPN-equivalent table with minimal packed bits;
/// it is identical for every member of the class.
///
/// # Example
///
/// ```
/// use logic::{TruthTable, npn::npn_canon};
///
/// let a = TruthTable::var(2, 0);
/// let b = TruthTable::var(2, 1);
/// let nand = !(a & b);
/// let nor = !(a | b);
/// // NAND and NOR are NPN-equivalent (flip both inputs + output).
/// assert_eq!(npn_canon(nand).canonical, npn_canon(nor).canonical);
/// ```
pub fn npn_canon(t: TruthTable) -> NpnCanon {
    let n = t.n_vars();
    let mut best: Option<(TruthTable, NpnTransform)> = None;
    let mut indices: Vec<u8> = (0..n as u8).collect();
    permutations(&mut indices, 0, &mut |perm_slice| {
        let mut perm_arr = [0u8; 6];
        perm_arr[..n].copy_from_slice(perm_slice);
        // Flip-then-permute commutes to permute-then-flip on permuted
        // indices: `permute(flip_v(t)) = flip_k(permute(t))` where
        // `perm[k] = v`. So permute once per permutation, then walk every
        // flip mask of the *permuted* table in Gray-code order — each
        // step is a single cheap `flip_var` instead of a full transform
        // application.
        let mut perm_usize = [0usize; 6];
        for (k, &p) in perm_slice.iter().enumerate() {
            perm_usize[k] = p as usize;
        }
        let mut cur = t.permute(&perm_usize[..n]);
        let mut permuted_flips = 0u8;
        for gray in 0u16..(1u16 << n) {
            if gray > 0 {
                let v = gray.trailing_zeros() as usize;
                cur = cur.flip_var(v);
                permuted_flips ^= 1 << v;
            }
            // Map the permuted-index mask back to original variables.
            let mut input_flips = 0u8;
            for (k, &p) in perm_slice.iter().enumerate() {
                if (permuted_flips >> k) & 1 == 1 {
                    input_flips |= 1 << p;
                }
            }
            for out in [false, true] {
                let cand = if out { !cur } else { cur };
                match &best {
                    Some((b, _)) if b.bits() <= cand.bits() => {}
                    _ => {
                        best = Some((
                            cand,
                            NpnTransform {
                                n_vars: n as u8,
                                input_flips,
                                perm: perm_arr,
                                output_flip: out,
                            },
                        ))
                    }
                }
            }
        }
    });
    let (canonical, transform) = best.expect("at least the identity transform is evaluated");
    NpnCanon {
        canonical,
        transform,
    }
}

/// Heap's-algorithm-style permutation enumeration over `items[at..]`.
fn permutations(items: &mut [u8], at: usize, visit: &mut impl FnMut(&[u8])) {
    if at == items.len() {
        visit(items);
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        permutations(items, at + 1, visit);
        items.swap(at, i);
    }
    if items.is_empty() {
        visit(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tt2(f: impl Fn(bool, bool) -> bool) -> TruthTable {
        TruthTable::from_fn(2, |v| f(v[0], v[1]))
    }

    #[test]
    fn nand_nor_share_class() {
        let nand = tt2(|a, b| !(a && b));
        let nor = tt2(|a, b| !(a || b));
        let and = tt2(|a, b| a && b);
        let or = tt2(|a, b| a || b);
        let c = npn_canon(nand).canonical;
        assert_eq!(npn_canon(nor).canonical, c);
        assert_eq!(npn_canon(and).canonical, c);
        assert_eq!(npn_canon(or).canonical, c);
    }

    #[test]
    fn xor_class_is_distinct_from_and_class() {
        let xor = tt2(|a, b| a ^ b);
        let and = tt2(|a, b| a && b);
        assert_ne!(npn_canon(xor).canonical, npn_canon(and).canonical);
    }

    #[test]
    fn transform_maps_original_to_canonical() {
        let f = TruthTable::from_fn(3, |v| (v[0] && v[1]) || (!v[0] && v[2]));
        let c = npn_canon(f);
        assert_eq!(c.transform.apply(f), c.canonical);
    }

    #[test]
    fn inverse_roundtrip() {
        let f = TruthTable::from_fn(4, |v| (v[0] ^ v[1]) && (v[2] || !v[3]));
        let c = npn_canon(f);
        assert_eq!(c.transform.inverse().apply(c.canonical), f);
    }

    #[test]
    fn canonization_is_class_invariant() {
        // Apply a bunch of ad-hoc NPN transforms; the canonical form must
        // never change.
        let f = TruthTable::from_fn(3, |v| (v[0] && v[1]) ^ v[2]);
        let base = npn_canon(f).canonical;
        let variants = [
            f.flip_var(0),
            f.flip_var(2).flip_var(1),
            !f,
            f.permute(&[2, 0, 1]),
            (!f.flip_var(1)).permute(&[1, 2, 0]),
        ];
        for v in variants {
            assert_eq!(npn_canon(v).canonical, base);
        }
    }

    #[test]
    fn identity_transform_is_identity() {
        let f = TruthTable::from_fn(3, |v| v[0] || (v[1] && v[2]));
        assert_eq!(NpnTransform::identity(3).apply(f), f);
    }

    #[test]
    fn canonical_of_constant_is_constant() {
        let z = TruthTable::zero(3);
        assert_eq!(npn_canon(z).canonical, z);
        let one = TruthTable::one(3);
        // Constant one canonizes to constant zero via output flip.
        assert_eq!(npn_canon(one).canonical, z);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let f = TruthTable::from_fn(4, |v| (v[0] ^ v[1]) | (v[2] && v[3]));
        // Two arbitrary transforms.
        let t1 = NpnTransform {
            n_vars: 4,
            input_flips: 0b0101,
            perm: [2, 0, 3, 1, 0, 0],
            output_flip: true,
        };
        let t2 = NpnTransform {
            n_vars: 4,
            input_flips: 0b1010,
            perm: [1, 3, 0, 2, 0, 0],
            output_flip: false,
        };
        let seq = t2.apply(t1.apply(f));
        let composed = t2.compose(&t1).apply(f);
        assert_eq!(seq, composed);
        // And in the other order.
        let seq = t1.apply(t2.apply(f));
        let composed = t1.compose(&t2).apply(f);
        assert_eq!(seq, composed);
    }

    #[test]
    fn compose_with_inverse_is_identity() {
        let f = TruthTable::from_fn(3, |v| v[0] ^ (v[1] && !v[2]));
        let c = npn_canon(f);
        let id = c.transform.inverse().compose(&c.transform);
        assert_eq!(id.apply(f), f);
    }

    #[test]
    fn number_of_two_var_classes() {
        // There are exactly 4 NPN classes of 2-variable functions:
        // constants, single variable, AND-like, XOR-like.
        let mut classes = std::collections::HashSet::new();
        for bits in 0..16u64 {
            classes.insert(npn_canon(TruthTable::from_bits(2, bits)).canonical);
        }
        assert_eq!(classes.len(), 4);
    }
}
