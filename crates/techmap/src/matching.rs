//! NPN Boolean matching of cut functions against library cells.

use charlib::CharacterizedLibrary;
use logic::npn::{npn_canon, NpnTransform};
use logic::TruthTable;
use std::collections::HashMap;

/// How a library cell realizes a cut function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchCandidate {
    /// Index of the cell in the characterized library.
    pub gate: usize,
    /// For each cell pin `k`: `(support_var, inverted)` — which variable
    /// of the (support-shrunk) cut function feeds the pin, and whether it
    /// must be complemented.
    pub pins: Vec<(usize, bool)>,
    /// Whether the cell output is the complement of the cut function.
    pub output_inverted: bool,
}

/// A hash table from NPN classes to the library cells realizing them.
#[derive(Debug)]
pub struct MatchTable {
    /// Key: (support size, canonical truth-table bits).
    classes: HashMap<(usize, u64), Vec<(usize, NpnTransform)>>,
    /// Index of the INV cell.
    inverter: usize,
    /// Memoized canonization of cut functions.
    canon_cache: HashMap<(usize, u64), (TruthTable, NpnTransform)>,
}

impl MatchTable {
    /// Builds the table for a characterized library.
    ///
    /// # Panics
    ///
    /// Panics if the library has no INV cell (every family provides one).
    pub fn new(library: &CharacterizedLibrary) -> Self {
        let mut classes: HashMap<(usize, u64), Vec<(usize, NpnTransform)>> = HashMap::new();
        let mut inverter = None;
        for (idx, cell) in library.gates.iter().enumerate() {
            let f = cell.gate.function;
            if cell.gate.name == "INV" {
                inverter = Some(idx);
            }
            let canon = npn_canon(f);
            classes
                .entry((f.n_vars(), canon.canonical.bits()))
                .or_default()
                .push((idx, canon.transform));
        }
        Self {
            classes,
            inverter: inverter.expect("library must contain INV"),
            canon_cache: HashMap::new(),
        }
    }

    /// The library index of the INV cell.
    pub fn inverter(&self) -> usize {
        self.inverter
    }

    /// Matches a support-shrunk cut function (every variable in support),
    /// returning all candidate bindings.
    ///
    /// For each candidate, the binding `U` satisfies
    /// `cell_function = U.apply(cut_function)`; pin `k` of the cell reads
    /// cut variable `U.perm[k]` complemented per `U.input_flips`, and the
    /// cell output is complemented iff `U.output_flip`.
    pub fn matches(&mut self, f: TruthTable) -> Vec<MatchCandidate> {
        let key = (f.n_vars(), f.bits());
        let (canonical, transform) = *self.canon_cache.entry(key).or_insert_with(|| {
            let c = npn_canon(f);
            (c.canonical, c.transform)
        });
        let Some(cells) = self.classes.get(&(f.n_vars(), canonical.bits())) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(cells.len());
        for (gate, s) in cells {
            // cell = S⁻¹(C) and C = T(f) ⇒ cell = (S⁻¹ ∘ T)(f).
            let u = s.inverse().compose(&transform);
            let n = f.n_vars();
            let pins = (0..n)
                .map(|k| {
                    let v = u.perm[k] as usize;
                    (v, (u.input_flips >> v) & 1 == 1)
                })
                .collect();
            out.push(MatchCandidate {
                gate: *gate,
                pins,
                output_inverted: u.output_flip,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlib::characterize_library;
    use gate_lib::GateFamily;

    fn check_candidate_realizes(
        library: &CharacterizedLibrary,
        cand: &MatchCandidate,
        f: TruthTable,
    ) {
        let cell = &library.gates[cand.gate];
        let g = cell.gate.function;
        let n = f.n_vars();
        assert_eq!(g.n_vars(), n, "exact-arity matching");
        // Evaluate: for every assignment y of the cut variables, drive the
        // pins per the binding and compare.
        for m in 0..(1usize << n) {
            let y: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            let pins: Vec<bool> = cand.pins.iter().map(|&(v, inv)| y[v] ^ inv).collect();
            let cell_out = g.eval(&pins);
            let expected = f.eval(&y) ^ cand.output_inverted;
            assert_eq!(
                cell_out, expected,
                "cell {} binding wrong at minterm {m}",
                cell.gate.name
            );
        }
    }

    #[test]
    fn and_class_matches_in_all_families() {
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            let mut table = MatchTable::new(&lib);
            let a = TruthTable::var(2, 0);
            let b = TruthTable::var(2, 1);
            for f in [a & b, !(a & b), a | !b, !(a | b)] {
                let cands = table.matches(f);
                assert!(!cands.is_empty(), "{family}: no match for {f:?}");
                for c in &cands {
                    check_candidate_realizes(&lib, c, f);
                }
            }
        }
    }

    #[test]
    fn xor_class_matches() {
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            let mut table = MatchTable::new(&lib);
            let a = TruthTable::var(2, 0);
            let b = TruthTable::var(2, 1);
            let cands = table.matches(a ^ b);
            assert!(!cands.is_empty(), "{family}: XOR unmatched");
            for c in &cands {
                check_candidate_realizes(&lib, c, a ^ b);
            }
        }
    }

    #[test]
    fn gnand_class_matches_only_generalized() {
        let f = {
            let t = |v| TruthTable::var(4, v);
            !((t(0) ^ t(1)) & (t(2) ^ t(3)))
        };
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let mut table = MatchTable::new(&lib);
        let cands = table.matches(f);
        assert!(!cands.is_empty(), "GNAND2 class must match");
        for c in &cands {
            check_candidate_realizes(&lib, c, f);
        }
        let lib = characterize_library(GateFamily::Cmos);
        let mut table = MatchTable::new(&lib);
        assert!(
            table.matches(f).is_empty(),
            "CMOS cannot cover a 4-input XOR-of-products in one cell"
        );
    }

    #[test]
    fn aoi_classes_match_with_bindings() {
        let t = |v| TruthTable::var(3, v);
        let f = !((t(0) & t(1)) | t(2)); // AOI21
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            let mut table = MatchTable::new(&lib);
            let cands = table.matches(f);
            assert!(!cands.is_empty(), "{family}: AOI21 unmatched");
            for c in &cands {
                check_candidate_realizes(&lib, c, f);
            }
        }
    }

    #[test]
    fn inverter_index_is_inv() {
        let lib = characterize_library(GateFamily::Cmos);
        let table = MatchTable::new(&lib);
        assert_eq!(lib.gates[table.inverter()].gate.name, "INV");
    }

    #[test]
    fn random_functions_verified_when_matched() {
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let mut table = MatchTable::new(&lib);
        let mut seed = 0xDEAD_BEEF_u64;
        let mut matched = 0;
        for _ in 0..200 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let f = TruthTable::from_bits(3, seed & 0xFF);
            if f.support_size() != 3 {
                continue;
            }
            for c in table.matches(f) {
                check_candidate_realizes(&lib, &c, f);
                matched += 1;
            }
        }
        assert!(matched > 0, "some 3-input functions must match");
    }
}
