//! NPN Boolean matching of cut functions against library cells.
//!
//! The matching data splits into two layers with very different lifetimes:
//!
//! * [`NpnMatchCache`] — the immutable NPN class table of a library
//!   (canonical function → realizing cells + transforms). Building it
//!   canonizes every cell once; after that it is read-only and freely
//!   shared across circuits and threads (`ambipolar::engine` keeps one per
//!   gate family in a `OnceLock`).
//! * [`Matcher`] — a cheap per-mapping-run scratch that memoizes the
//!   canonization of cut functions seen during one run (the same cut
//!   function recurs across thousands of nodes).

use crate::config::MapError;
use charlib::CharacterizedLibrary;
use gate_lib::GateFamily;
use logic::npn::{npn_canon, NpnTransform};
use logic::TruthTable;
use std::collections::HashMap;

/// How a library cell realizes a cut function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchCandidate {
    /// Index of the cell in the characterized library.
    pub gate: usize,
    /// For each cell pin `k`: `(support_var, inverted)` — which variable
    /// of the (support-shrunk) cut function feeds the pin, and whether it
    /// must be complemented.
    pub pins: Vec<(usize, bool)>,
    /// Whether the cell output is the complement of the cut function.
    pub output_inverted: bool,
}

/// The immutable NPN class table of a library: every cell canonized once,
/// indexed by `(arity, canonical bits)`.
///
/// The table depends only on the cell *functions* (not on delays, caps, or
/// leakage), so one cache serves every technology point of a family —
/// [`NpnMatchCache::for_family`] builds it straight from the generated
/// cell list without running characterization.
#[derive(Debug)]
pub struct NpnMatchCache {
    /// Key: (support size, canonical truth-table bits). Value: cells of
    /// that class with the transform mapping each cell onto the canonical
    /// representative, in library order.
    classes: HashMap<(usize, u64), Vec<(usize, NpnTransform)>>,
    /// Index of the INV cell.
    inverter: usize,
    /// Number of cells indexed (diagnostics).
    cell_count: usize,
}

impl NpnMatchCache {
    /// Builds the class table for a characterized library.
    ///
    /// # Errors
    ///
    /// [`MapError::MissingInverter`] if the library has no `INV` cell.
    pub fn new(library: &CharacterizedLibrary) -> Result<Self, MapError> {
        Self::from_cells(
            library
                .gates
                .iter()
                .map(|cell| (cell.gate.name.as_str(), cell.gate.function)),
        )
    }

    /// Builds the class table for a gate family from its generated cell
    /// list, without characterizing the library (cell indices agree with
    /// the characterized library of the same family, which preserves
    /// generation order).
    ///
    /// # Errors
    ///
    /// [`MapError::MissingInverter`] if the family provides no `INV` cell.
    pub fn for_family(family: GateFamily) -> Result<Self, MapError> {
        let gates = gate_lib::generate_library(family);
        Self::from_cells(gates.iter().map(|gate| (gate.name.as_str(), gate.function)))
    }

    fn from_cells<'a>(
        cells: impl Iterator<Item = (&'a str, TruthTable)>,
    ) -> Result<Self, MapError> {
        let mut classes: HashMap<(usize, u64), Vec<(usize, NpnTransform)>> = HashMap::new();
        let mut inverter = None;
        let mut cell_count = 0usize;
        for (idx, (name, f)) in cells.enumerate() {
            if name == "INV" {
                inverter = Some(idx);
            }
            let canon = npn_canon(f);
            classes
                .entry((f.n_vars(), canon.canonical.bits()))
                .or_default()
                .push((idx, canon.transform));
            cell_count += 1;
        }
        Ok(Self {
            classes,
            inverter: inverter.ok_or(MapError::MissingInverter)?,
            cell_count,
        })
    }

    /// The library index of the INV cell.
    pub fn inverter(&self) -> usize {
        self.inverter
    }

    /// Number of distinct NPN classes in the library.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of cells indexed.
    pub fn cell_count(&self) -> usize {
        self.cell_count
    }

    /// Computes all candidate bindings for a support-shrunk cut function
    /// (every variable in support). Prefer going through a [`Matcher`],
    /// which memoizes the canonization across a mapping run.
    ///
    /// For each candidate, the binding `U` satisfies
    /// `cell_function = U.apply(cut_function)`; pin `k` of the cell reads
    /// cut variable `U.perm[k]` complemented per `U.input_flips`, and the
    /// cell output is complemented iff `U.output_flip`.
    pub fn compute_matches(&self, f: TruthTable) -> Vec<MatchCandidate> {
        let canon = npn_canon(f);
        let Some(cells) = self.classes.get(&(f.n_vars(), canon.canonical.bits())) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(cells.len());
        for (gate, s) in cells {
            // cell = S⁻¹(C) and C = T(f) ⇒ cell = (S⁻¹ ∘ T)(f).
            let u = s.inverse().compose(&canon.transform);
            let n = f.n_vars();
            let pins = (0..n)
                .map(|k| {
                    let v = u.perm[k] as usize;
                    (v, (u.input_flips >> v) & 1 == 1)
                })
                .collect();
            out.push(MatchCandidate {
                gate: *gate,
                pins,
                output_inverted: u.output_flip,
            });
        }
        out
    }
}

/// Per-mapping-run matcher: a shared, immutable [`NpnMatchCache`] plus a
/// private memo of the cut functions canonized so far. Create one per
/// `map_aig` call; drop it when the run ends.
#[derive(Debug)]
pub struct Matcher<'c> {
    cache: &'c NpnMatchCache,
    /// Memoized candidate lists keyed by the raw cut-function bits.
    memo: HashMap<(usize, u64), Vec<MatchCandidate>>,
}

impl<'c> Matcher<'c> {
    /// A fresh matcher over a shared class table.
    pub fn new(cache: &'c NpnMatchCache) -> Self {
        Self {
            cache,
            memo: HashMap::new(),
        }
    }

    /// The library index of the INV cell.
    pub fn inverter(&self) -> usize {
        self.cache.inverter()
    }

    /// Matches a support-shrunk cut function, memoizing the (expensive)
    /// NPN canonization per distinct function.
    pub fn matches(&mut self, f: TruthTable) -> &[MatchCandidate] {
        let cache = self.cache;
        self.memo
            .entry((f.n_vars(), f.bits()))
            .or_insert_with(|| cache.compute_matches(f))
    }

    /// Number of distinct cut functions canonized so far.
    pub fn distinct_functions(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlib::characterize_library;
    use gate_lib::GateFamily;

    fn check_candidate_realizes(
        library: &CharacterizedLibrary,
        cand: &MatchCandidate,
        f: TruthTable,
    ) {
        let cell = &library.gates[cand.gate];
        let g = cell.gate.function;
        let n = f.n_vars();
        assert_eq!(g.n_vars(), n, "exact-arity matching");
        // Evaluate: for every assignment y of the cut variables, drive the
        // pins per the binding and compare.
        for m in 0..(1usize << n) {
            let y: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            let pins: Vec<bool> = cand.pins.iter().map(|&(v, inv)| y[v] ^ inv).collect();
            let cell_out = g.eval(&pins);
            let expected = f.eval(&y) ^ cand.output_inverted;
            assert_eq!(
                cell_out, expected,
                "cell {} binding wrong at minterm {m}",
                cell.gate.name
            );
        }
    }

    #[test]
    fn and_class_matches_in_all_families() {
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            let cache = NpnMatchCache::new(&lib).expect("INV present");
            let mut matcher = Matcher::new(&cache);
            let a = TruthTable::var(2, 0);
            let b = TruthTable::var(2, 1);
            for f in [a & b, !(a & b), a | !b, !(a | b)] {
                let cands = matcher.matches(f).to_vec();
                assert!(!cands.is_empty(), "{family}: no match for {f:?}");
                for c in &cands {
                    check_candidate_realizes(&lib, c, f);
                }
            }
        }
    }

    #[test]
    fn xor_class_matches() {
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            let cache = NpnMatchCache::new(&lib).expect("INV present");
            let mut matcher = Matcher::new(&cache);
            let a = TruthTable::var(2, 0);
            let b = TruthTable::var(2, 1);
            let cands = matcher.matches(a ^ b).to_vec();
            assert!(!cands.is_empty(), "{family}: XOR unmatched");
            for c in &cands {
                check_candidate_realizes(&lib, c, a ^ b);
            }
        }
    }

    #[test]
    fn gnand_class_matches_only_generalized() {
        let f = {
            let t = |v| TruthTable::var(4, v);
            !((t(0) ^ t(1)) & (t(2) ^ t(3)))
        };
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let cache = NpnMatchCache::new(&lib).expect("INV present");
        let cands = cache.compute_matches(f);
        assert!(!cands.is_empty(), "GNAND2 class must match");
        for c in &cands {
            check_candidate_realizes(&lib, c, f);
        }
        let lib = characterize_library(GateFamily::Cmos);
        let cache = NpnMatchCache::new(&lib).expect("INV present");
        assert!(
            cache.compute_matches(f).is_empty(),
            "CMOS cannot cover a 4-input XOR-of-products in one cell"
        );
    }

    #[test]
    fn aoi_classes_match_with_bindings() {
        let t = |v| TruthTable::var(3, v);
        let f = !((t(0) & t(1)) | t(2)); // AOI21
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            let cache = NpnMatchCache::new(&lib).expect("INV present");
            let cands = cache.compute_matches(f);
            assert!(!cands.is_empty(), "{family}: AOI21 unmatched");
            for c in &cands {
                check_candidate_realizes(&lib, c, f);
            }
        }
    }

    #[test]
    fn inverter_index_is_inv() {
        let lib = characterize_library(GateFamily::Cmos);
        let cache = NpnMatchCache::new(&lib).expect("INV present");
        assert_eq!(lib.gates[cache.inverter()].gate.name, "INV");
        assert!(cache.class_count() > 0);
        assert_eq!(cache.cell_count(), lib.gates.len());
    }

    #[test]
    fn family_cache_agrees_with_characterized_cache() {
        // The characterization-free constructor must index the same cells
        // at the same positions as the characterized library.
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            let from_lib = NpnMatchCache::new(&lib).expect("INV present");
            let from_family = NpnMatchCache::for_family(family).expect("INV present");
            assert_eq!(from_lib.inverter(), from_family.inverter(), "{family}");
            assert_eq!(from_lib.class_count(), from_family.class_count());
            assert_eq!(from_lib.cell_count(), from_family.cell_count());
            // Spot-check candidate agreement on a few functions.
            let a = TruthTable::var(2, 0);
            let b = TruthTable::var(2, 1);
            for f in [a & b, a ^ b, !(a | b)] {
                assert_eq!(
                    from_lib.compute_matches(f),
                    from_family.compute_matches(f),
                    "{family}: candidates diverge for {f:?}"
                );
            }
        }
    }

    #[test]
    fn matcher_memoizes_distinct_functions() {
        let lib = characterize_library(GateFamily::Cmos);
        let cache = NpnMatchCache::new(&lib).expect("INV present");
        let mut matcher = Matcher::new(&cache);
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let first = matcher.matches(a & b).to_vec();
        let again = matcher.matches(a & b).to_vec();
        assert_eq!(first, again);
        assert_eq!(matcher.distinct_functions(), 1);
        let _ = matcher.matches(a ^ b);
        assert_eq!(matcher.distinct_functions(), 2);
    }

    #[test]
    fn missing_inverter_is_an_error_not_a_panic() {
        let mut lib = characterize_library(GateFamily::Cmos);
        lib.gates.retain(|g| g.gate.name != "INV");
        assert_eq!(
            NpnMatchCache::new(&lib).err(),
            Some(MapError::MissingInverter)
        );
    }

    #[test]
    fn random_functions_verified_when_matched() {
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let cache = NpnMatchCache::new(&lib).expect("INV present");
        let mut matcher = Matcher::new(&cache);
        let mut seed = 0xDEAD_BEEF_u64;
        let mut matched = 0;
        for _ in 0..200 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let f = TruthTable::from_bits(3, seed & 0xFF);
            if f.support_size() != 3 {
                continue;
            }
            for c in matcher.matches(f).to_vec() {
                check_candidate_realizes(&lib, &c, f);
                matched += 1;
            }
        }
        assert!(matched > 0, "some 3-input functions must match");
    }
}
