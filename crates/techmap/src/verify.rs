//! Verification of mapped netlists against their source AIGs: a fast
//! simulation mode and a definitive SAT mode.
//!
//! [`verify_mapping`] back-converts the netlist
//! ([`MappedNetlist::to_aig`]) and closes the check with the SAT-based
//! equivalence engine ([`aig::check_equivalence`]) — a *proof*, not a
//! sample. Failures carry a concrete [`CexReport`]: the input pattern,
//! the first output that disagrees, and both sides' values on it.

use crate::netlist::MappedNetlist;
use aig::{Aig, Equivalence, ShapeMismatch};
use charlib::CharacterizedLibrary;

/// How much post-mapping verification the pipeline performs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Verify {
    /// No verification (the historical default; mapping is trusted).
    #[default]
    Off,
    /// Random/exhaustive simulation: cheap, definitive only up to 16
    /// inputs (a `false` is always real, a pass is probabilistic beyond
    /// that).
    Sim,
    /// SAT-closed equivalence proof: sound and complete at any width.
    Sat,
}

impl Verify {
    /// All modes, in CLI/documentation order.
    pub const ALL: [Verify; 3] = [Verify::Off, Verify::Sim, Verify::Sat];

    /// Lower-case CLI label (`off` / `sim` / `sat`).
    pub fn label(self) -> &'static str {
        match self {
            Verify::Off => "off",
            Verify::Sim => "sim",
            Verify::Sat => "sat",
        }
    }
}

impl std::fmt::Display for Verify {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Verify {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(Verify::Off),
            "sim" => Ok(Verify::Sim),
            "sat" => Ok(Verify::Sat),
            other => Err(format!(
                "unknown verify mode `{other}` (expected off, sim, or sat)"
            )),
        }
    }
}

/// A concrete disagreement between a netlist and its source AIG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CexReport {
    /// The input assignment (one bool per primary input, input order).
    pub inputs: Vec<bool>,
    /// Index of the first disagreeing primary output.
    pub output: usize,
    /// What the source AIG computes on `inputs` at that output.
    pub expected: bool,
    /// What the mapped netlist computes there instead.
    pub got: bool,
}

impl std::fmt::Display for CexReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pattern: String = self
            .inputs
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        write!(
            f,
            "output {} differs on input pattern {} (inputs 0..n left to right): \
             source computes {}, netlist computes {}",
            self.output, pattern, self.expected as u8, self.got as u8
        )
    }
}

/// Why a mapped netlist failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The netlist and the AIG disagree on interface widths.
    Shape(ShapeMismatch),
    /// The netlist computes a different function; here is where.
    Mismatch(CexReport),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Shape(s) => write!(f, "netlist {s}"),
            VerifyError::Mismatch(c) => write!(f, "netlist is not equivalent: {c}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Proves a mapped netlist equivalent to its source AIG (SAT-closed —
/// sound and complete at any input count).
///
/// The netlist is rebuilt as an AIG ([`MappedNetlist::to_aig`]) and the
/// pair goes through the simulation-filtered, SAT-swept equivalence
/// engine. `Ok(())` is a theorem about the mapping; an `Err` carries a
/// concrete counterexample pattern.
///
/// # Errors
///
/// [`VerifyError::Shape`] when the netlist's interface widths differ from
/// the AIG's; [`VerifyError::Mismatch`] with a [`CexReport`] when the
/// functions differ.
///
/// # Example
///
/// ```
/// use aig::Aig;
/// use charlib::characterize_library;
/// use gate_lib::GateFamily;
/// use techmap::{map_aig, verify_mapping, MapConfig};
///
/// let mut aig = Aig::new();
/// let a = aig.input();
/// let b = aig.input();
/// let c = aig.input();
/// let x = aig.xor(a, b);
/// let f = aig.and(x, c);
/// aig.output(f);
/// let lib = characterize_library(GateFamily::CntfetGeneralized);
/// let mapped = map_aig(&aig, &lib, &MapConfig::default()).expect("maps");
/// // Not sampled: SAT-proven equivalent.
/// verify_mapping(&aig, &mapped, &lib).expect("mapping is correct");
/// ```
pub fn verify_mapping(
    aig: &Aig,
    netlist: &MappedNetlist,
    library: &CharacterizedLibrary,
) -> Result<(), VerifyError> {
    let rebuilt = netlist.to_aig(library);
    match aig::check_equivalence(aig, &rebuilt) {
        Err(shape) => Err(VerifyError::Shape(shape)),
        Ok(Equivalence::Equal) => Ok(()),
        Ok(Equivalence::Counterexample(inputs)) => {
            Err(VerifyError::Mismatch(report(aig, netlist, library, inputs)))
        }
    }
}

/// Verifies by simulation only: exhaustive for ≤ 16 inputs (definitive),
/// `rounds` random 64-pattern words — rounded up to whole 256-pattern
/// [`aig::WideWord`] blocks — otherwise (a pass is probabilistic, a
/// failure is always real and reported as a [`CexReport`]).
///
/// # Errors
///
/// As [`verify_mapping`]; a probabilistic pass returns `Ok(())`.
pub fn verify_mapping_sim(
    aig: &Aig,
    netlist: &MappedNetlist,
    library: &CharacterizedLibrary,
    seed: u64,
    rounds: usize,
) -> Result<(), VerifyError> {
    let aig = aig.cleanup();
    if aig.input_count() != netlist.pi_count || aig.output_count() != netlist.outputs().len() {
        return Err(VerifyError::Shape(ShapeMismatch {
            inputs: (aig.input_count(), netlist.pi_count),
            outputs: (aig.output_count(), netlist.outputs().len()),
        }));
    }
    let n = aig.input_count();
    let mut rng = aig::sim::PatternRng::new(seed);
    let exhaustive = n <= 16;
    let mut values = Vec::new();
    let mut got = Vec::new();
    let mut check_round =
        |inputs: &[u64], expected: &[u64], mask: u64| -> Result<(), VerifyError> {
            netlist.simulate64_into(library, inputs, &mut values);
            netlist.output_words_into(&values, &mut got);
            for (k, (e, g)) in expected.iter().zip(got.iter()).enumerate() {
                let diff = (e ^ g) & mask;
                if diff != 0 {
                    let bit = diff.trailing_zeros();
                    let pattern: Vec<bool> = inputs.iter().map(|w| (w >> bit) & 1 == 1).collect();
                    return Err(VerifyError::Mismatch(CexReport {
                        inputs: pattern,
                        output: k,
                        expected: (e >> bit) & 1 == 1,
                        got: (g >> bit) & 1 == 1,
                    }));
                }
            }
            Ok(())
        };
    if exhaustive {
        for round in 0..(1usize << n).div_ceil(64) {
            let base = (round * 64) as u64;
            let inputs: Vec<u64> = (0..n)
                .map(|i| {
                    let mut w = 0u64;
                    for k in 0..64u64 {
                        if ((base + k) >> i) & 1 == 1 {
                            w |= 1 << k;
                        }
                    }
                    w
                })
                .collect();
            let expected = aig::simulate64(&aig, &inputs);
            let remaining = (1u64 << n).saturating_sub(base);
            let mask = if remaining >= 64 {
                u64::MAX
            } else {
                (1u64 << remaining) - 1
            };
            check_round(&inputs, &expected, mask)?;
        }
    } else {
        // Random rounds run through the widened simulation kernel: one
        // AIG pass covers a whole cache-line block of patterns (rounds
        // are rounded up to full blocks — strictly more coverage).
        let mut inputs = vec![0u64; n];
        for _ in 0..rounds.div_ceil(aig::WIDE_WORDS) {
            let wide: Vec<aig::WideWord> = (0..n).map(|_| rng.next_wide()).collect();
            let expected = aig::simulate_wide(&aig, &wide);
            for w in 0..aig::WIDE_WORDS {
                for (i, block) in wide.iter().enumerate() {
                    inputs[i] = block[w];
                }
                let lane: Vec<u64> = expected.iter().map(|b| b[w]).collect();
                check_round(&inputs, &lane, u64::MAX)?;
            }
        }
    }
    Ok(())
}

/// Verifies according to a [`Verify`] mode (`Off` verifies nothing).
///
/// # Errors
///
/// As the selected mode's verifier.
pub fn verify_mapping_with(
    aig: &Aig,
    netlist: &MappedNetlist,
    library: &CharacterizedLibrary,
    mode: Verify,
    seed: u64,
    rounds: usize,
) -> Result<(), VerifyError> {
    match mode {
        Verify::Off => Ok(()),
        Verify::Sim => verify_mapping_sim(aig, netlist, library, seed, rounds),
        Verify::Sat => verify_mapping(aig, netlist, library),
    }
}

/// Builds the counterexample report for a known-diverging input pattern.
fn report(
    aig: &Aig,
    netlist: &MappedNetlist,
    library: &CharacterizedLibrary,
    inputs: Vec<bool>,
) -> CexReport {
    let expected = aig::sim::evaluate(&aig.cleanup(), &inputs);
    let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
    let values = netlist.simulate64(library, &words);
    let got_words = netlist.output_words(&values);
    for (k, (e, g)) in expected.iter().zip(got_words.iter()).enumerate() {
        if *e != (g & 1 == 1) {
            return CexReport {
                inputs,
                output: k,
                expected: *e,
                got: g & 1 == 1,
            };
        }
    }
    // The equivalence engine only reports real counterexamples; reaching
    // here would mean the pattern does not distinguish the two networks.
    unreachable!("counterexample pattern must distinguish the networks")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MapConfig;
    use crate::mapper::map_aig;
    use crate::netlist::NetRef;
    use charlib::characterize_library;
    use gate_lib::GateFamily;

    fn adder_aig() -> Aig {
        let mut aig = Aig::new();
        let a: Vec<_> = (0..4).map(|_| aig.input()).collect();
        let b: Vec<_> = (0..4).map(|_| aig.input()).collect();
        let mut carry = aig::Lit::FALSE;
        for i in 0..4 {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            let c1 = aig.and(a[i], b[i]);
            let c2 = aig.and(axb, carry);
            carry = aig.or(c1, c2);
            aig.output(sum);
        }
        aig.output(carry);
        aig
    }

    #[test]
    fn correct_mappings_prove_in_every_family_and_mode() {
        let aig = adder_aig();
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            let mapped = map_aig(&aig, &lib, &MapConfig::default()).expect("maps");
            verify_mapping(&aig, &mapped, &lib).expect("SAT proof");
            verify_mapping_sim(&aig, &mapped, &lib, 11, 8).expect("sim pass");
            for mode in Verify::ALL {
                verify_mapping_with(&aig, &mapped, &lib, mode, 11, 8).expect("all modes pass");
            }
        }
    }

    #[test]
    fn corrupted_netlist_yields_concrete_counterexample() {
        let aig = adder_aig();
        let lib = characterize_library(GateFamily::Cmos);
        let mapped = map_aig(&aig, &lib, &MapConfig::default()).expect("maps");
        // Corrupt: re-route the last output to a different net.
        let mut outputs = mapped.outputs().to_vec();
        let o = outputs.len() - 1;
        outputs[o] = NetRef::plain(if outputs[o].net == 0 { 1 } else { 0 });
        let corrupted = MappedNetlist::new(
            mapped.family,
            mapped.pi_count,
            mapped.instances.clone(),
            outputs,
        );
        let err = verify_mapping(&aig, &corrupted, &lib).expect_err("must fail");
        let VerifyError::Mismatch(report) = err else {
            panic!("expected a counterexample, got {err:?}");
        };
        assert_eq!(report.inputs.len(), aig.input_count());
        assert_ne!(report.expected, report.got);
        // The pattern is a real disagreement, checkable by simulation.
        let expected = aig::sim::evaluate(&aig, &report.inputs);
        let words: Vec<u64> = report.inputs.iter().map(|&b| u64::from(b)).collect();
        let values = corrupted.simulate64(&lib, &words);
        let got = corrupted.output_words(&values);
        assert_eq!(expected[report.output], report.expected);
        assert_eq!(got[report.output] & 1 == 1, report.got);
        assert!(report.to_string().contains("differs on input pattern"));
        // The sim mode finds it too (8 inputs: exhaustive, definitive).
        assert!(matches!(
            verify_mapping_sim(&aig, &corrupted, &lib, 1, 4),
            Err(VerifyError::Mismatch(_))
        ));
    }

    #[test]
    fn flipped_output_phase_is_caught() {
        let aig = adder_aig();
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let mapped = map_aig(&aig, &lib, &MapConfig::default()).expect("maps");
        let mut outputs = mapped.outputs().to_vec();
        outputs[0].inverted = !outputs[0].inverted;
        let corrupted = MappedNetlist::new(
            mapped.family,
            mapped.pi_count,
            mapped.instances.clone(),
            outputs,
        );
        let err = verify_mapping(&aig, &corrupted, &lib).expect_err("must fail");
        let VerifyError::Mismatch(report) = err else {
            panic!("expected a counterexample");
        };
        assert_eq!(report.output, 0, "the flipped output differs everywhere");
    }

    #[test]
    fn shape_mismatch_is_typed() {
        let aig = adder_aig();
        let lib = characterize_library(GateFamily::Cmos);
        let mapped = map_aig(&aig, &lib, &MapConfig::default()).expect("maps");
        let mut outputs = mapped.outputs().to_vec();
        outputs.pop();
        let truncated = MappedNetlist::new(
            mapped.family,
            mapped.pi_count,
            mapped.instances.clone(),
            outputs,
        );
        assert!(matches!(
            verify_mapping(&aig, &truncated, &lib),
            Err(VerifyError::Shape(_))
        ));
        assert!(matches!(
            verify_mapping_sim(&aig, &truncated, &lib, 1, 4),
            Err(VerifyError::Shape(_))
        ));
    }

    #[test]
    fn verify_mode_parses_and_displays() {
        for mode in Verify::ALL {
            let parsed: Verify = mode.label().parse().expect("labels parse");
            assert_eq!(parsed, mode);
        }
        assert_eq!("SAT".parse::<Verify>(), Ok(Verify::Sat));
        assert!("prove".parse::<Verify>().is_err());
        assert_eq!(Verify::default(), Verify::Off);
    }
}
