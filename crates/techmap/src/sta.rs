//! Load-dependent static timing analysis of mapped netlists.

use crate::netlist::MappedNetlist;
use charlib::CharacterizedLibrary;
use device::{Capacitance, Time};

/// Result of a timing analysis.
#[derive(Clone, Debug)]
pub struct StaReport {
    /// Arrival time of every net, seconds.
    pub net_arrival: Vec<f64>,
    /// Capacitive load of every net, farads.
    pub net_load: Vec<f64>,
    /// The critical-path delay (max arrival over primary outputs).
    pub critical: Time,
}

/// Computes arrival times: primary inputs arrive at t = 0, every instance
/// adds its load-dependent cell delay `0.69·R·(C_out + C_load)`.
///
/// Primary-output nets carry the library's default output load
/// ([`crate::config::default_output_load`], one inverter input
/// capacitance) in addition to any internal consumers — PO nets have no
/// consumer pins inside the netlist, and timing a driver into zero
/// farads would systematically underestimate the critical path. Use
/// [`critical_path_with_load`] for an explicit per-output load (e.g. the
/// one a non-default [`crate::MapConfig::output_load`] mapped under).
pub fn critical_path(netlist: &MappedNetlist, library: &CharacterizedLibrary) -> StaReport {
    critical_path_with_load(
        netlist,
        library,
        crate::config::default_output_load(library),
    )
}

/// [`critical_path`] with an explicit primary-output load in farads,
/// charged once per output tap on the driving net.
pub fn critical_path_with_load(
    netlist: &MappedNetlist,
    library: &CharacterizedLibrary,
    output_load: f64,
) -> StaReport {
    let n = netlist.net_count();
    // Net loads: sum of consumer pin capacitances, plus the configured
    // load per primary-output tap.
    let mut net_load = vec![0.0f64; n];
    for inst in &netlist.instances {
        let cell = &library.gates[inst.gate];
        for (pin, r) in inst.inputs.iter().enumerate() {
            net_load[r.net] += cell.input_caps[pin];
        }
    }
    for r in netlist.outputs() {
        net_load[r.net] += output_load;
    }
    // Arrival propagation (instances are topologically ordered).
    let mut net_arrival = vec![0.0f64; n];
    for (i, inst) in netlist.instances.iter().enumerate() {
        let cell = &library.gates[inst.gate];
        let out_net = netlist.instance_output_net(i);
        let input_arrival = inst
            .inputs
            .iter()
            .map(|r| net_arrival[r.net])
            .fold(0.0f64, f64::max);
        let delay = cell.delay(Capacitance::new(net_load[out_net])).value();
        net_arrival[out_net] = input_arrival + delay;
    }
    let critical = netlist
        .outputs()
        .iter()
        .map(|r| net_arrival[r.net])
        .fold(0.0f64, f64::max);
    StaReport {
        net_arrival,
        net_load,
        critical: Time::new(critical),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MapConfig;
    use crate::mapper::map_aig;
    use aig::Aig;
    use charlib::{characterize_library, CharacterizedLibrary};
    use gate_lib::GateFamily;

    fn map_default(aig: &Aig, library: &CharacterizedLibrary) -> MappedNetlist {
        map_aig(aig, library, &MapConfig::default()).expect("default mapping succeeds")
    }

    fn adder_aig(bits: usize) -> Aig {
        let mut aig = Aig::new();
        let a: Vec<_> = (0..bits).map(|_| aig.input()).collect();
        let b: Vec<_> = (0..bits).map(|_| aig.input()).collect();
        let mut carry = aig::Lit::FALSE;
        for i in 0..bits {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            let c1 = aig.and(a[i], b[i]);
            let c2 = aig.and(axb, carry);
            carry = aig.or(c1, c2);
            aig.output(sum);
        }
        aig.output(carry);
        aig
    }

    #[test]
    fn arrival_increases_along_carry_chain() {
        let aig = adder_aig(6);
        let lib = characterize_library(GateFamily::Cmos);
        let mapped = map_default(&aig, &lib);
        let report = critical_path(&mapped, &lib);
        assert!(report.critical.value() > 0.0);
        // Sum bit arrivals must be non-decreasing with bit index (the
        // carry chain dominates).
        let arrivals: Vec<f64> = mapped
            .outputs()
            .iter()
            .take(6)
            .map(|r| report.net_arrival[r.net])
            .collect();
        assert!(
            arrivals.windows(2).all(|w| w[1] >= w[0] - 1e-15),
            "{arrivals:?}"
        );
    }

    #[test]
    fn cntfet_mapping_is_faster_than_cmos() {
        let aig = adder_aig(8);
        let cnt = characterize_library(GateFamily::CntfetConventional);
        let cmos = characterize_library(GateFamily::Cmos);
        let d_cnt = critical_path(&map_default(&aig, &cnt), &cnt)
            .critical
            .value();
        let d_cmos = critical_path(&map_default(&aig, &cmos), &cmos)
            .critical
            .value();
        let ratio = d_cmos / d_cnt;
        assert!(
            ratio > 3.0,
            "CNTFET should be markedly faster (Deng'07 ≈5×), got {ratio}"
        );
    }

    #[test]
    fn generalized_mapping_cuts_depth_on_parity() {
        let mut aig = Aig::new();
        let xs: Vec<_> = (0..16).map(|_| aig.input()).collect();
        let p = aig.xor_many(&xs);
        aig.output(p);
        let gen = characterize_library(GateFamily::CntfetGeneralized);
        let conv = characterize_library(GateFamily::CntfetConventional);
        let d_gen = critical_path(&map_default(&aig, &gen), &gen)
            .critical
            .value();
        let d_conv = critical_path(&map_default(&aig, &conv), &conv)
            .critical
            .value();
        assert!(
            d_gen < d_conv,
            "generalized XOR cells shorten the parity tree: {d_gen} vs {d_conv}"
        );
    }

    #[test]
    fn loads_are_positive_for_driven_nets() {
        let aig = adder_aig(4);
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let mapped = map_default(&aig, &lib);
        let report = critical_path(&mapped, &lib);
        // Every net consumed by some instance has positive load.
        for inst in &mapped.instances {
            for r in &inst.inputs {
                assert!(report.net_load[r.net] > 0.0);
            }
        }
    }
}
