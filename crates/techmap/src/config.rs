//! Mapper configuration (objective, cut shape, load model) and the
//! fallible-mapping error type.

use charlib::CharacterizedLibrary;
use device::Capacitance;

/// What the match-selection phase optimizes.
///
/// Every objective runs the same staged engine; only the primary cost in
/// the dynamic program changes. The secondary cost breaks ties so the
/// mapper stays deterministic across machines and thread counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize arrival time; break ties on area flow (the classic
    /// delay-oriented mapper, and the setting Table 1 is produced with).
    #[default]
    Delay,
    /// Minimize area flow; break ties on arrival time.
    Area,
    /// Minimize energy flow (per-cycle cell energy from characterization);
    /// break ties on arrival time.
    Energy,
}

impl Objective {
    /// All objectives, in CLI/documentation order.
    pub const ALL: [Objective; 3] = [Objective::Delay, Objective::Area, Objective::Energy];

    /// Lower-case CLI label (`delay` / `area` / `energy`).
    pub fn label(self) -> &'static str {
        match self {
            Objective::Delay => "delay",
            Objective::Area => "area",
            Objective::Energy => "energy",
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Objective {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "delay" => Ok(Objective::Delay),
            "area" => Ok(Objective::Area),
            "energy" => Ok(Objective::Energy),
            other => Err(format!(
                "unknown objective `{other}` (expected delay, area, or energy)"
            )),
        }
    }
}

/// How the mapper estimates the capacitive load a cell drives while
/// selecting matches (the real per-net loads are only known after cover
/// extraction; static timing re-derives them exactly).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LoadModel {
    /// A multiple of the library's average input-pin capacitance
    /// (`AveragePins(2.0)` is the historical default: two average pins).
    AveragePins(f64),
    /// A fixed load in farads.
    Fixed(f64),
}

impl Default for LoadModel {
    fn default() -> Self {
        LoadModel::AveragePins(2.0)
    }
}

impl LoadModel {
    /// Resolves the model against a characterized library.
    pub fn estimate(&self, library: &CharacterizedLibrary) -> Capacitance {
        match *self {
            LoadModel::AveragePins(pins) => {
                Capacitance::new(pins * library.average(|g| g.avg_input_cap().value()))
            }
            LoadModel::Fixed(farads) => Capacitance::new(farads),
        }
    }
}

/// The default capacitive load of a primary-output net: one inverter
/// input capacitance of the target library — the smallest plausible
/// downstream consumer. Primary-output nets have no consumer pins inside
/// the netlist, so without this a PO driver's delay would be computed at
/// zero farads, systematically underestimating the critical path; the
/// selection DP, the mapper's predicted-delay bookkeeping, and
/// [`sta::critical_path`](crate::sta::critical_path) all charge the same
/// value so the timing model is consistent end to end.
pub fn default_output_load(library: &CharacterizedLibrary) -> f64 {
    library
        .find("INV")
        .and_then(|g| g.input_caps.first().copied())
        .unwrap_or(0.0)
}

/// Configuration of one mapping run.
///
/// The default reproduces the historical mapper exactly: delay objective
/// with area-flow tie-breaking, 6-feasible cuts, 8 priority cuts per node,
/// and a two-average-pins load estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MapConfig {
    /// Cost the selection phase minimizes.
    pub objective: Objective,
    /// Maximum leaves per cut (must be in `2..=6`).
    pub cut_k: usize,
    /// Maximum priority cuts stored per node.
    pub max_cuts: usize,
    /// Mapping-time load estimate.
    pub load: LoadModel,
    /// Map over structural choices: when a
    /// [`ChoiceAig`](aig::ChoiceAig) is supplied
    /// ([`map_choice_aig`](crate::map_choice_aig)), enumerate cuts
    /// across every choice ring so the cover may use structures earlier
    /// flow passes discarded. With `false` the choice network is merely
    /// collapsed to its representatives and mapped plain.
    pub use_choices: bool,
    /// Capacitive load on primary-output nets, farads. `None` (the
    /// default) resolves to [`default_output_load`] — one inverter input
    /// capacitance of the target library — so PO driver delays are never
    /// computed into zero farads. The resolved value is charged both by
    /// the selection DP's arrival estimates and by static timing.
    pub output_load: Option<f64>,
    /// Area-recovery rounds the delay objective runs after its
    /// arrival-time DP: required times are propagated backward from the
    /// primary outputs and nodes with positive slack are re-selected —
    /// the first round minimizing area flow, later rounds exact local
    /// area (ABC `&if`-style). `0` disables recovery (the historical
    /// single-pass greedy mapper). Ignored by the Area/Energy objectives.
    pub recovery_rounds: usize,
}

impl Default for MapConfig {
    fn default() -> Self {
        Self {
            objective: Objective::Delay,
            cut_k: Self::DEFAULT_CUT_K,
            max_cuts: Self::DEFAULT_MAX_CUTS,
            load: LoadModel::default(),
            use_choices: false,
            output_load: None,
            recovery_rounds: Self::DEFAULT_RECOVERY_ROUNDS,
        }
    }
}

impl MapConfig {
    /// Default cut width (6-feasible cuts).
    pub const DEFAULT_CUT_K: usize = 6;
    /// Default priority-cut cap per node.
    pub const DEFAULT_MAX_CUTS: usize = 8;
    /// Default delay-objective recovery schedule: one area-flow round
    /// followed by two exact-local-area rounds.
    pub const DEFAULT_RECOVERY_ROUNDS: usize = 3;

    /// The default configuration with a different objective.
    pub fn for_objective(objective: Objective) -> Self {
        Self {
            objective,
            ..Self::default()
        }
    }

    /// The primary-output load in farads, resolving the `None` default
    /// against the library ([`default_output_load`]).
    pub fn output_load_farads(&self, library: &CharacterizedLibrary) -> f64 {
        self.output_load
            .unwrap_or_else(|| default_output_load(library))
    }
}

/// Why a mapping run could not produce a netlist.
///
/// The staged mapper never panics on malformed inputs; every failure mode
/// surfaces here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapError {
    /// A logic node has no library match under any enumerated cut. Cannot
    /// happen for libraries containing the AND2/NAND2 NPN class (all three
    /// paper families do), but external genlib-style libraries may lack it.
    UnmatchedNode {
        /// The AIG node index.
        node: u32,
        /// How many cuts were enumerated for it.
        cuts: usize,
    },
    /// A primary output is a constant; the cell-based netlist has no tie
    /// cells to express it.
    ConstantOutput {
        /// Index of the offending primary output.
        output: usize,
    },
    /// The library provides no `INV` cell, so input/output phases cannot
    /// be repaired.
    MissingInverter,
    /// `cut_k` is outside the supported `2..=6` range of the packed
    /// truth tables.
    InvalidCutK {
        /// The rejected cut width.
        k: usize,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::UnmatchedNode { node, cuts } => {
                write!(
                    f,
                    "node {node} has no library match ({cuts} cuts enumerated)"
                )
            }
            MapError::ConstantOutput { output } => {
                write!(
                    f,
                    "primary output {output} is a constant; the mapper has no tie cells"
                )
            }
            MapError::MissingInverter => write!(f, "library does not contain an INV cell"),
            MapError::InvalidCutK { k } => {
                write!(f, "cut width {k} outside the supported 2..=6 range")
            }
        }
    }
}

impl std::error::Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_the_historical_mapper() {
        let config = MapConfig::default();
        assert_eq!(config.objective, Objective::Delay);
        assert_eq!(config.cut_k, MapConfig::DEFAULT_CUT_K);
        assert_eq!(config.max_cuts, MapConfig::DEFAULT_MAX_CUTS);
        assert_eq!(config.load, LoadModel::AveragePins(2.0));
    }

    #[test]
    fn objective_round_trips_through_labels() {
        for objective in Objective::ALL {
            let parsed: Objective = objective.label().parse().expect("labels parse");
            assert_eq!(parsed, objective);
        }
        assert!("frequency".parse::<Objective>().is_err());
        assert_eq!("DELAY".parse::<Objective>(), Ok(Objective::Delay));
    }

    #[test]
    fn errors_render_usefully() {
        let e = MapError::UnmatchedNode { node: 7, cuts: 3 };
        assert!(e.to_string().contains("node 7"));
        assert!(MapError::MissingInverter.to_string().contains("INV"));
        assert!(MapError::InvalidCutK { k: 9 }.to_string().contains('9'));
        assert!(MapError::ConstantOutput { output: 1 }
            .to_string()
            .contains("output 1"));
    }
}
