//! Delay-oriented cut mapping with area-flow tie-breaking and cover
//! extraction.

use crate::matching::MatchTable;
use crate::netlist::{Instance, MappedNetlist, NetRef};
use aig::cuts::{enumerate_cuts, CutConfig};
use aig::graph::{Aig, Node};
use charlib::CharacterizedLibrary;
use std::collections::HashMap;

/// A resolved match chosen for an AND node.
#[derive(Clone, Debug)]
struct Chosen {
    gate: usize,
    /// `(leaf_node, inverted)` per cell pin.
    pins: Vec<(u32, bool)>,
    output_inverted: bool,
}

/// Maps an AIG onto a characterized library.
///
/// Input-phase requirements are free for the dual-rail generalized family
/// and materialize shared inverters otherwise; output-phase mismatches
/// cost an inverter in every family.
///
/// # Panics
///
/// Panics if a node cannot be matched (cannot happen for libraries
/// containing the AND2/NAND2 class, which all three families do) or if a
/// primary output is a constant (the synthetic benchmarks have none).
pub fn map_aig(aig: &Aig, library: &CharacterizedLibrary) -> MappedNetlist {
    let aig = aig.cleanup();
    let free_neg = library.family.free_input_negation();
    let mut table = MatchTable::new(library);
    let cuts = enumerate_cuts(&aig, CutConfig { k: 6, max_cuts: 8 });
    let fanouts = aig.fanouts();

    // Mapping-time load estimate: two average library pins.
    let avg_cap = library.average(|g| g.avg_input_cap().value());
    let load_est = device::Capacitance::new(2.0 * avg_cap);
    let inv_idx = table.inverter();
    let inv_delay = library.gates[inv_idx].delay(load_est).value();
    let inv_area = library.gates[inv_idx].area;

    let n = aig.len();
    let mut arrival = vec![0.0f64; n];
    let mut area_flow = vec![0.0f64; n];
    let mut chosen: Vec<Option<Chosen>> = vec![None; n];

    for idx in 0..n {
        let Node::And(_, _) = aig.node(idx as u32) else {
            continue;
        };
        let mut best: Option<(f64, f64, Chosen)> = None;
        for cut in &cuts[idx] {
            // Skip the trivial self-cut.
            if cut.leaves.len() == 1 && cut.leaves[0] == idx as u32 {
                continue;
            }
            let (fs, kept) = cut.tt.shrink_to_support();
            if kept.is_empty() {
                continue; // constant function; covered by a smaller cut
            }
            for cand in table.matches(fs) {
                let pins: Vec<(u32, bool)> = cand
                    .pins
                    .iter()
                    .map(|&(v, inv)| (cut.leaves[kept[v]], inv))
                    .collect();
                let cell = &library.gates[cand.gate];
                let mut arr_in = 0.0f64;
                let mut inv_area_cost = 0.0;
                for &(leaf, inv) in &pins {
                    let mut a = arrival[leaf as usize];
                    if inv && !free_neg {
                        a += inv_delay;
                        inv_area_cost += inv_area; // shared in practice; upper bound here
                    }
                    arr_in = arr_in.max(a);
                }
                let mut total = arr_in + cell.delay(load_est).value();
                let mut area = cell.area + inv_area_cost;
                if cand.output_inverted {
                    total += inv_delay;
                    area += inv_area;
                }
                let af = area
                    + pins
                        .iter()
                        .map(|&(leaf, _)| {
                            area_flow[leaf as usize] / fanouts[leaf as usize].max(1) as f64
                        })
                        .sum::<f64>();
                let better = match &best {
                    None => true,
                    Some((bd, baf, _)) => {
                        total < bd - 1e-15 || ((total - bd).abs() <= 1e-15 && af < *baf)
                    }
                };
                if better {
                    best = Some((
                        total,
                        af,
                        Chosen {
                            gate: cand.gate,
                            pins,
                            output_inverted: cand.output_inverted,
                        },
                    ));
                }
            }
        }
        let (d, af, c) = best.unwrap_or_else(|| {
            panic!(
                "node {idx} has no library match (cuts: {})",
                cuts[idx].len()
            )
        });
        arrival[idx] = d;
        area_flow[idx] = af;
        chosen[idx] = Some(c);
    }

    extract_cover(&aig, library, &chosen, free_neg, inv_idx)
}

/// Walks the chosen matches from the outputs, emitting instances in
/// topological order with shared inverters.
fn extract_cover(
    aig: &Aig,
    library: &CharacterizedLibrary,
    chosen: &[Option<Chosen>],
    free_neg: bool,
    inv_idx: usize,
) -> MappedNetlist {
    let pi_count = aig.input_count();
    let mut netlist = MappedNetlist {
        family: library.family,
        pi_count,
        instances: Vec::new(),
        outputs: Vec::new(),
    };
    // Positive net of each emitted node.
    let mut node_net: HashMap<u32, usize> = HashMap::new();
    for (ordinal, &node) in aig.input_nodes().iter().enumerate() {
        node_net.insert(node, ordinal);
    }
    // Shared inverter outputs per source net.
    let mut inverted_net: HashMap<usize, usize> = HashMap::new();

    // Recursive post-order emission (context bundled as arguments).
    #[allow(clippy::too_many_arguments)]
    fn emit(
        node: u32,
        chosen: &[Option<Chosen>],
        netlist: &mut MappedNetlist,
        node_net: &mut HashMap<u32, usize>,
        inverted_net: &mut HashMap<usize, usize>,
        free_neg: bool,
        inv_idx: usize,
    ) -> usize {
        if let Some(&net) = node_net.get(&node) {
            return net;
        }
        let c = chosen[node as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("node {node} was never matched"))
            .clone();
        let mut inputs = Vec::with_capacity(c.pins.len());
        for (leaf, inv) in c.pins {
            let leaf_net = emit(
                leaf,
                chosen,
                netlist,
                node_net,
                inverted_net,
                free_neg,
                inv_idx,
            );
            let net_ref = if inv && !free_neg {
                let inv_out = *inverted_net.entry(leaf_net).or_insert_with(|| {
                    netlist.instances.push(Instance {
                        gate: inv_idx,
                        inputs: vec![NetRef::plain(leaf_net)],
                    });
                    netlist.pi_count + netlist.instances.len() - 1
                });
                NetRef::plain(inv_out)
            } else {
                NetRef {
                    net: leaf_net,
                    inverted: inv,
                }
            };
            inputs.push(net_ref);
        }
        netlist.instances.push(Instance {
            gate: c.gate,
            inputs,
        });
        let mut net = netlist.pi_count + netlist.instances.len() - 1;
        if c.output_inverted {
            netlist.instances.push(Instance {
                gate: inv_idx,
                inputs: vec![NetRef::plain(net)],
            });
            net = netlist.pi_count + netlist.instances.len() - 1;
        }
        node_net.insert(node, net);
        net
    }

    let output_lits: Vec<aig::Lit> = aig.output_lits().to_vec();
    for lit in output_lits {
        assert!(
            lit.node() != 0,
            "constant primary outputs are not supported by the mapper"
        );
        let net = emit(
            lit.node(),
            chosen,
            &mut netlist,
            &mut node_net,
            &mut inverted_net,
            free_neg,
            inv_idx,
        );
        let r = if lit.is_complement() {
            if free_neg {
                NetRef {
                    net,
                    inverted: true,
                }
            } else {
                let inv_out = *inverted_net.entry(net).or_insert_with(|| {
                    netlist.instances.push(Instance {
                        gate: inv_idx,
                        inputs: vec![NetRef::plain(net)],
                    });
                    netlist.pi_count + netlist.instances.len() - 1
                });
                NetRef::plain(inv_out)
            }
        } else {
            NetRef::plain(net)
        };
        netlist.outputs.push(r);
    }
    netlist
}

/// Verifies a mapped netlist against its source AIG by simulation
/// (exhaustive for ≤ 16 inputs, random otherwise).
pub fn verify_mapping(
    aig: &Aig,
    netlist: &MappedNetlist,
    library: &CharacterizedLibrary,
    seed: u64,
    rounds: usize,
) -> bool {
    let aig = aig.cleanup();
    let n = aig.input_count();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let total_rounds = if n <= 16 {
        (1usize << n).div_ceil(64)
    } else {
        rounds
    };
    for round in 0..total_rounds {
        let inputs: Vec<u64> = if n <= 16 {
            let base = (round * 64) as u64;
            (0..n)
                .map(|i| {
                    let mut w = 0u64;
                    for k in 0..64u64 {
                        if ((base + k) >> i) & 1 == 1 {
                            w |= 1 << k;
                        }
                    }
                    w
                })
                .collect()
        } else {
            (0..n).map(|_| next()).collect()
        };
        let expected = aig::simulate64(&aig, &inputs);
        let values = netlist.simulate64(library, &inputs);
        let got = netlist.output_words(&values);
        let mask = if n <= 16 {
            let remaining = (1u64 << n).saturating_sub((round * 64) as u64);
            if remaining >= 64 {
                u64::MAX
            } else {
                (1u64 << remaining) - 1
            }
        } else {
            u64::MAX
        };
        for (e, g) in expected.iter().zip(got.iter()) {
            if (e ^ g) & mask != 0 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlib::characterize_library;
    use gate_lib::GateFamily;

    fn small_alu_aig() -> Aig {
        let mut aig = Aig::new();
        let a: Vec<_> = (0..4).map(|_| aig.input()).collect();
        let b: Vec<_> = (0..4).map(|_| aig.input()).collect();
        // 4-bit ripple adder + AND/XOR banks.
        let mut carry = aig::Lit::FALSE;
        for i in 0..4 {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            let c1 = aig.and(a[i], b[i]);
            let c2 = aig.and(axb, carry);
            carry = aig.or(c1, c2);
            aig.output(sum);
        }
        aig.output(carry);
        for i in 0..4 {
            let f = aig.and(a[i], b[i].not());
            aig.output(f);
        }
        aig
    }

    #[test]
    fn maps_and_verifies_all_families() {
        let aig = small_alu_aig();
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            let mapped = map_aig(&aig, &lib);
            assert!(
                verify_mapping(&aig, &mapped, &lib, 0xFEED, 32),
                "{family}: mapped netlist differs from AIG"
            );
            assert!(mapped.gate_count() > 0);
        }
    }

    #[test]
    fn generalized_mapping_is_smaller_on_xor_logic() {
        // A parity-heavy block: the generalized library should need
        // clearly fewer cells than CMOS.
        let mut aig = Aig::new();
        let xs: Vec<_> = (0..8).map(|_| aig.input()).collect();
        for chunk in xs.chunks(4) {
            let p = aig.xor_many(chunk);
            aig.output(p);
        }
        let gen = characterize_library(GateFamily::CntfetGeneralized);
        let cmos = characterize_library(GateFamily::Cmos);
        let m_gen = map_aig(&aig, &gen);
        let m_cmos = map_aig(&aig, &cmos);
        assert!(verify_mapping(&aig, &m_gen, &gen, 1, 8));
        assert!(verify_mapping(&aig, &m_cmos, &cmos, 1, 8));
        assert!(
            m_gen.gate_count() < m_cmos.gate_count(),
            "generalized {} vs CMOS {}",
            m_gen.gate_count(),
            m_cmos.gate_count()
        );
    }

    #[test]
    fn conventional_families_map_identically() {
        // Same cells, same matcher ⇒ same structure; only the technology
        // (delays, caps) differs.
        let aig = small_alu_aig();
        let cnt = characterize_library(GateFamily::CntfetConventional);
        let cmos = characterize_library(GateFamily::Cmos);
        let m_cnt = map_aig(&aig, &cnt);
        let m_cmos = map_aig(&aig, &cmos);
        assert_eq!(m_cnt.gate_count(), m_cmos.gate_count());
    }

    #[test]
    fn inverters_are_shared() {
        // Multiple consumers of the same complemented net must reuse one
        // inverter in conventional mapping.
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let f1 = aig.and(a.not(), b);
        let f2 = aig.and(a.not(), c);
        aig.output(f1);
        aig.output(f2);
        let lib = characterize_library(GateFamily::Cmos);
        let mapped = map_aig(&aig, &lib);
        assert!(verify_mapping(&aig, &mapped, &lib, 3, 8));
        let inv_count = mapped
            .instances
            .iter()
            .filter(|i| lib.gates[i.gate].gate.name == "INV")
            .count();
        // NAND/NOR-class cells can absorb the negations entirely, but if
        // any inverter exists there must be at most one for net `a`.
        assert!(inv_count <= 1, "inverters not shared: {inv_count}");
    }

    #[test]
    fn instances_are_topologically_ordered() {
        let aig = small_alu_aig();
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let mapped = map_aig(&aig, &lib);
        for (i, inst) in mapped.instances.iter().enumerate() {
            for r in &inst.inputs {
                assert!(
                    r.net < mapped.pi_count + i,
                    "instance {i} reads undriven net {}",
                    r.net
                );
            }
        }
    }
}
