//! The staged mapping engine: cut enumeration → NPN matching →
//! objective-driven selection → cover extraction → inverter
//! materialization.
//!
//! Each stage is an explicit function with a narrow interface, so the
//! expensive parts are reusable (the NPN class table is shared across
//! circuits and threads via [`NpnMatchCache`]) and the policy parts are
//! configurable ([`MapConfig`]: objective, cut shape, load model). The
//! whole engine is panic-free — malformed inputs surface as [`MapError`].

use crate::config::{LoadModel, MapConfig, MapError, Objective};
use crate::matching::{Matcher, NpnMatchCache};
use crate::netlist::{Instance, MappedNetlist, NetRef};
use aig::choice::ChoiceAig;
use aig::cuts::{enumerate_cuts_choice, CutConfig, CutDb, CutSource};
use aig::graph::{Aig, Lit, Node};
use charlib::{CharacterizedGate, CharacterizedLibrary};
use device::Capacitance;
use std::collections::HashMap;

/// A resolved match chosen for an AND node.
#[derive(Clone, Debug)]
struct Chosen {
    gate: usize,
    /// `(leaf_node, inverted)` per cell pin.
    pins: Vec<(u32, bool)>,
    output_inverted: bool,
}

/// One matched node of the extracted cover, in emission (topological)
/// order.
struct CoverStep {
    /// The AIG node this step implements.
    node: u32,
    /// The selected match.
    chosen: Chosen,
}

/// Maps an AIG onto a characterized library with a private match cache.
///
/// Builds an [`NpnMatchCache`] for this call only; when mapping many
/// circuits against one library (or one family at several technology
/// points), build the cache once and use [`map_aig_with_cache`] — the
/// experiment engine (`ambipolar::engine::match_cache`) keeps one shared
/// instance per gate family behind a `OnceLock`.
///
/// Input-phase requirements are free for the dual-rail generalized family
/// and materialize shared inverters otherwise; output-phase mismatches
/// cost an inverter in every family.
///
/// # Errors
///
/// See [`MapError`] — unmatched nodes, constant primary outputs, missing
/// inverter cells, and out-of-range cut widths are reported, not panicked.
pub fn map_aig(
    aig: &Aig,
    library: &CharacterizedLibrary,
    config: &MapConfig,
) -> Result<MappedNetlist, MapError> {
    let cache = NpnMatchCache::new(library)?;
    map_aig_with_cache(aig, library, &cache, config)
}

/// Maps an AIG onto a characterized library through a shared, precomputed
/// NPN match cache. See [`map_aig`] for semantics and errors.
pub fn map_aig_with_cache(
    aig: &Aig,
    library: &CharacterizedLibrary,
    cache: &NpnMatchCache,
    config: &MapConfig,
) -> Result<MappedNetlist, MapError> {
    let mut db = CutDb::new(CutConfig {
        k: config.cut_k.clamp(2, 6),
        max_cuts: config.max_cuts,
    });
    map_aig_with_cut_db(aig, library, cache, config, &mut db)
}

/// [`map_aig_with_cache`] against a persistent cut database: phase 1
/// serves every cut set the database already holds and computes only the
/// missing ones, so a caller that maps the same (or an incrementally
/// evolved and [`CutDb::retarget`]ed) network repeatedly — a technology
/// sweep over one synthesized circuit, say — pays for enumeration once.
///
/// `db` must have been created with the same cut shape (`k`, `max_cuts`)
/// as `config` requests, and hold cuts of `aig`'s cleaned form (an empty
/// or size-mismatched database is simply filled from scratch).
///
/// # Errors
///
/// As [`map_aig`], plus [`MapError::InvalidCutK`] when the database's cut
/// shape disagrees with `config`.
pub fn map_aig_with_cut_db(
    aig: &Aig,
    library: &CharacterizedLibrary,
    cache: &NpnMatchCache,
    config: &MapConfig,
    db: &mut CutDb,
) -> Result<MappedNetlist, MapError> {
    if !(2..=6).contains(&config.cut_k) {
        return Err(MapError::InvalidCutK { k: config.cut_k });
    }
    if db.config()
        != (CutConfig {
            k: config.cut_k,
            max_cuts: config.max_cuts,
        })
    {
        return Err(MapError::InvalidCutK { k: db.config().k });
    }
    let aig = aig.cleanup();

    // Phase 1: cut enumeration — incremental against the database.
    {
        let _s = obs::span!("map/cuts");
        db.ensure(&aig);
    }
    let cuts: &CutDb = db;

    // Phase 2: NPN-canonical matching — shared immutable class table plus
    // a per-run canonization memo.
    let mut matcher = {
        let _s = obs::span!("map/match");
        Matcher::new(cache)
    };

    // Phase 3: objective-driven selection — the arrival/flow DP, plus
    // the delay objective's required-time and area-recovery passes.
    let order: Vec<u32> = (0..aig.len() as u32)
        .filter(|&n| matches!(aig.node(n), Node::And(_, _)))
        .collect();
    let selection = {
        let _s = obs::span!("map/select");
        select_matches(
            &aig,
            &order,
            aig.fanout_counts(),
            aig.output_lits(),
            cuts,
            &mut matcher,
            library,
            config,
        )?
    };

    // Phase 4: cover extraction (which matches are actually used, in
    // topological emission order).
    let cover = {
        let _s = obs::span!("map/cover");
        extract_cover(
            aig.len(),
            aig.input_nodes(),
            aig.output_lits(),
            cuts,
            &selection.chosen,
        )?
    };

    // Phase 5: inverter materialization and netlist assembly.
    let _s = obs::span!("map/materialize");
    let mut netlist = materialize(
        library,
        cache.inverter(),
        &cover,
        aig.input_nodes(),
        aig.output_lits(),
    );
    drop(_s);
    netlist.set_predicted_delay_s(selection.predicted);
    Ok(netlist)
}

/// Maps a choice network onto a characterized library with a private
/// match cache. See [`map_choice_aig_with_cache`].
///
/// # Errors
///
/// As [`map_aig`].
pub fn map_choice_aig(
    choice: &ChoiceAig,
    library: &CharacterizedLibrary,
    config: &MapConfig,
) -> Result<MappedNetlist, MapError> {
    let cache = NpnMatchCache::new(library)?;
    map_choice_aig_with_cache(choice, library, &cache, config)
}

/// Maps a [`ChoiceAig`] — the accumulated structural choices of a
/// synthesis flow — onto a characterized library.
///
/// With [`MapConfig::use_choices`] the staged engine runs over the
/// choice network's equivalence classes: cut enumeration walks every
/// choice ring ([`enumerate_cuts_choice`]), so a cut of a class may be
/// rooted in a structure only a losing flow pass produced; the
/// NPN-match cache and the objective-driven selection are reused
/// unchanged (the dynamic program simply iterates classes in
/// [`ChoiceAig::class_order`]); and cover extraction materializes
/// whichever alternative's cut won, because the emitted instances only
/// reference cut leaves — class representatives — never the internal
/// cone of the alternative that shaped the cut.
///
/// Without `use_choices` the rings are ignored: the collapsed
/// (representative-resolved) network is mapped through the plain path.
///
/// # Errors
///
/// As [`map_aig`] — constant primary outputs notably *can* occur here
/// even when the original network had none, because the choice sweep
/// may prove an output constant.
pub fn map_choice_aig_with_cache(
    choice: &ChoiceAig,
    library: &CharacterizedLibrary,
    cache: &NpnMatchCache,
    config: &MapConfig,
) -> Result<MappedNetlist, MapError> {
    if !(2..=6).contains(&config.cut_k) {
        return Err(MapError::InvalidCutK { k: config.cut_k });
    }
    if !config.use_choices {
        return map_aig_with_cache(&choice.collapsed(), library, cache, config);
    }
    let arena = choice.arena();

    // Phase 1: choice-aware cut enumeration (one cut set per class).
    let cuts = {
        let _s = obs::span!("map/cuts");
        enumerate_cuts_choice(
            choice,
            CutConfig {
                k: config.cut_k,
                max_cuts: config.max_cuts,
            },
        )
    };

    // Phase 2: the same shared match cache and per-run memo.
    let mut matcher = {
        let _s = obs::span!("map/match");
        Matcher::new(cache)
    };

    // Phase 3: selection over classes, dependencies first.
    let selection = {
        let _s = obs::span!("map/select");
        let fanouts = choice_fanouts(choice);
        select_matches(
            arena,
            choice.class_order(),
            &fanouts,
            choice.outputs(),
            &cuts,
            &mut matcher,
            library,
            config,
        )?
    };

    // Phases 4 + 5: unchanged — the cover walks cut leaves, which are
    // class representatives, so the machinery never needs to know which
    // ring member shaped a chosen cut.
    let cover = {
        let _s = obs::span!("map/cover");
        extract_cover(
            arena.len(),
            arena.input_nodes(),
            choice.outputs(),
            &cuts,
            &selection.chosen,
        )?
    };
    let _s = obs::span!("map/materialize");
    let mut netlist = materialize(
        library,
        cache.inverter(),
        &cover,
        arena.input_nodes(),
        choice.outputs(),
    );
    drop(_s);
    netlist.set_predicted_delay_s(selection.predicted);
    Ok(netlist)
}

/// Fanout estimate for the flow discount of choice-network selection:
/// reference counts over the collapsed (representative) structure plus
/// the primary outputs — mirroring [`Aig::fanouts`] on the network the
/// cover will actually be extracted from. Classes referenced only inside
/// ring alternatives count zero and fall back to the DP's `max(1)`.
fn choice_fanouts(choice: &ChoiceAig) -> Vec<u32> {
    let arena = choice.arena();
    let mut fan = vec![0u32; arena.len()];
    let mut seen = vec![false; arena.len()];
    let mut stack: Vec<u32> = Vec::new();
    for o in choice.outputs() {
        fan[o.node() as usize] += 1;
        stack.push(o.node());
    }
    while let Some(n) = stack.pop() {
        if seen[n as usize] {
            continue;
        }
        seen[n as usize] = true;
        if let Node::And(a, b) = arena.node(n) {
            fan[a.node() as usize] += 1;
            fan[b.node() as usize] += 1;
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    fan
}

/// Per-cell cost under the selected objective's flow metric: area in
/// square metres, or per-cycle energy in joules (total characterized gate
/// power over the operating frequency).
fn flow_unit(cell: &CharacterizedGate, objective: Objective) -> f64 {
    match objective {
        // Delay uses area flow as its tie-breaker.
        Objective::Delay | Objective::Area => cell.area,
        Objective::Energy => cell.power_summary().total().value() / charlib::OPERATING_FREQUENCY_HZ,
    }
}

/// Fanout buckets for the DP's pin-load estimate: delay tables are
/// precomputed per load point at 1..=`FANOUT_BUCKETS` consumer pins, and
/// a node's estimated fanout indexes the table. The clamp must clear the
/// catalog's worst control nets — C7552's fan out close to a hundred,
/// and clamping at 32 left its predicted/STA ratio near 0.5 — so the
/// table runs to 128 pins (the tables are built once per mapping run;
/// 128 load points per gate is noise next to cut enumeration).
const FANOUT_BUCKETS: usize = 128;

/// Table index for a node's fanout estimate.
fn fanout_bucket(fanout: u32) -> usize {
    (fanout.clamp(1, FANOUT_BUCKETS as u32) - 1) as usize
}

/// Precomputed per-run cost tables shared by the arrival DP, the
/// required-time pass, and the recovery rounds. Per-gate delays exist at
/// `FANOUT_BUCKETS` load points per net kind: for internal nets the
/// [`LoadModel`](crate::LoadModel) per-pin capacitance times the
/// estimated consumer count, and for nets driving primary outputs the
/// same minus the PO tap pin plus the configured output load — so the DP
/// never prices a PO driver into zero extra farads, charges high-fanout
/// nets the pins they actually drive, and agrees with static timing on
/// where load lives. [`LoadModel::Fixed`] opts out of fanout awareness:
/// every bucket carries the caller's explicit estimate.
struct Costs {
    free_neg: bool,
    /// Per-gate delay at 1..=`FANOUT_BUCKETS` estimated consumer pins.
    cell_delay: Vec<[f64; FANOUT_BUCKETS]>,
    /// Per-gate delay with one consumer replaced by the PO load.
    cell_delay_po: Vec<[f64; FANOUT_BUCKETS]>,
    /// Per-gate flow metric (area or per-cycle energy).
    cell_unit: Vec<f64>,
    /// Per-gate area (exact-area recovery always prices in m²).
    cell_area: Vec<f64>,
    /// Library index of the inverter cell (delays via the bucket tables).
    inverter: usize,
    inv_unit: f64,
    inv_area: f64,
}

impl Costs {
    fn new(library: &CharacterizedLibrary, inverter: usize, config: &MapConfig) -> Self {
        let est = config.load.estimate(library).value();
        let output_load = config.output_load_farads(library);
        // Internal-net load at `pins` estimated consumers.
        let internal = |pins: usize| -> f64 {
            match config.load {
                LoadModel::AveragePins(p) if p > 0.0 => est / p * pins as f64,
                LoadModel::AveragePins(_) => 0.0,
                LoadModel::Fixed(_) => est,
            }
        };
        // PO-net load: the tap pin becomes the configured output load.
        let po = |pins: usize| -> f64 {
            match config.load {
                LoadModel::AveragePins(_) => internal(pins - 1) + output_load,
                LoadModel::Fixed(_) => est + output_load,
            }
        };
        // Per-gate costs are fixed for the whole run; compute them once
        // instead of per candidate in the inner loop (the Energy flow
        // unit in particular walks the full power model).
        let cell_delay: Vec<[f64; FANOUT_BUCKETS]> = library
            .gates
            .iter()
            .map(|g| std::array::from_fn(|b| g.delay(Capacitance::new(internal(b + 1))).value()))
            .collect();
        let cell_delay_po: Vec<[f64; FANOUT_BUCKETS]> = library
            .gates
            .iter()
            .map(|g| std::array::from_fn(|b| g.delay(Capacitance::new(po(b + 1))).value()))
            .collect();
        let cell_unit: Vec<f64> = library
            .gates
            .iter()
            .map(|g| flow_unit(g, config.objective))
            .collect();
        let cell_area: Vec<f64> = library.gates.iter().map(|g| g.area).collect();
        Self {
            free_neg: library.family.free_input_negation(),
            inverter,
            inv_unit: cell_unit[inverter],
            inv_area: cell_area[inverter],
            cell_delay,
            cell_delay_po,
            cell_unit,
            cell_area,
        }
    }

    /// Extra arrival a match's pin pays for a complemented leaf (an
    /// explicit inverter unless the family negates for free). The shared
    /// inverter serves every complemented consumer of the leaf, so its
    /// load is estimated from the leaf's fanout bucket `leaf_fb` — an
    /// upper estimate (not all consumers read the complemented phase),
    /// but far closer to static timing on inverter-heavy critical paths
    /// than the old uniform two-pin charge.
    fn pin_delay(&self, inverted: bool, leaf_fb: usize) -> f64 {
        if inverted && !self.free_neg {
            self.cell_delay[self.inverter][leaf_fb]
        } else {
            0.0
        }
    }

    /// Delay from the worst pin arrival to the node's output net under
    /// the node's estimated fanout bucket `fb`: the cell at the right
    /// load point, plus the dedicated output inverter when the match is
    /// phase-flipped — the inverter, not the cell, then carries the
    /// node's net (and the PO load), while the cell drives exactly the
    /// inverter's single pin.
    fn match_delay(&self, po_driver: bool, fb: usize, gate: usize, output_inverted: bool) -> f64 {
        if output_inverted {
            self.cell_delay[gate][0]
                + if po_driver {
                    self.cell_delay_po[self.inverter][fb]
                } else {
                    self.cell_delay[self.inverter][fb]
                }
        } else if po_driver {
            self.cell_delay_po[gate][fb]
        } else {
            self.cell_delay[gate][fb]
        }
    }

    /// Extra delay between a node's positive phase and a primary-output
    /// tap of it: the shared PO inverter for complemented taps in
    /// families without free negation, priced as a pure PO driver.
    fn po_tap_extra(&self, complemented: bool) -> f64 {
        if complemented && !self.free_neg {
            self.cell_delay_po[self.inverter][0]
        } else {
            0.0
        }
    }

    /// The match's own flow/area contribution (cell plus dedicated
    /// output inverter; shared input inverters are priced by the caller,
    /// which knows the fanout discount to apply).
    fn match_unit(&self, gate: usize, output_inverted: bool) -> f64 {
        self.cell_unit[gate] + if output_inverted { self.inv_unit } else { 0.0 }
    }
}

/// Scale-free comparison tolerance: arrival times are order 1e-11 s and
/// flows order 1e-15 m² — an absolute epsilon either never fires or
/// swallows everything, so every tie-break uses this relative form.
fn rel_eps(a: f64, b: f64) -> f64 {
    1e-12 * a.abs().max(b.abs())
}

/// What phase 3 hands to cover extraction: the match per node plus the
/// DP's own critical-path estimate for the selected cover.
struct Selection {
    chosen: Vec<Option<Chosen>>,
    /// Predicted critical path in seconds (max predicted PO arrival).
    predicted: f64,
}

/// The DP's critical-path estimate: worst arrival over the primary
/// outputs, including the shared PO inverter on complemented taps.
fn predicted_critical(arrival: &[f64], outputs: &[Lit], costs: &Costs) -> f64 {
    outputs
        .iter()
        .map(|lit| arrival[lit.node() as usize] + costs.po_tap_extra(lit.is_complement()))
        .fold(0.0f64, f64::max)
}

/// Arrival of one match given current leaf arrivals, under the matched
/// node's estimated fanout bucket `fb` (leaf fanouts price the shared
/// pin inverters).
fn eval_match(
    m: &Chosen,
    arrival: &[f64],
    fanouts: &[u32],
    po_driver: bool,
    fb: usize,
    costs: &Costs,
) -> f64 {
    let mut arr_in = 0.0f64;
    for &(leaf, inv) in &m.pins {
        let leaf_fb = fanout_bucket(fanouts[leaf as usize]);
        arr_in = arr_in.max(arrival[leaf as usize] + costs.pin_delay(inv, leaf_fb));
    }
    arr_in + costs.match_delay(po_driver, fb, m.gate, m.output_inverted)
}

/// Phase 3: objective-driven selection — one match per AND node.
///
/// Every node carries two costs: arrival time under the configured load
/// model (with PO drivers additionally charged
/// [`MapConfig::output_load`](crate::MapConfig::output_load)), and the
/// objective's flow metric (area or energy accumulated over the chosen
/// cover, discounted by fanout). [`Objective::Delay`] minimizes arrival
/// and tie-breaks on flow; [`Objective::Area`] / [`Objective::Energy`]
/// minimize flow and tie-break on arrival.
///
/// For [`Objective::Delay`] the DP is only the first phase: required
/// times are then propagated backward from the primary outputs and
/// [`MapConfig::recovery_rounds`](crate::MapConfig::recovery_rounds)
/// rounds of area recovery re-select matches on nodes with positive
/// slack — minimizing area flow first, exact local area afterwards —
/// subject to `arrival ≤ required`, so the recovered cover keeps the
/// DP's optimal depth while shedding area off the non-critical paths
/// (the classical two-phase mapper of ABC's `&if`).
///
/// `order` lists the AND nodes to process, fanins-first — ascending
/// node index for a plain network, [`ChoiceAig::class_order`] for a
/// choice network (where only class representatives are priced).
///
/// Generic over the cut supply ([`CutSource`]) so the plain path reads
/// straight out of a [`CutDb`] while the choice path keeps its per-class
/// `Vec<Vec<Cut>>`.
#[allow(clippy::too_many_arguments)]
fn select_matches<S: CutSource + ?Sized>(
    aig: &Aig,
    order: &[u32],
    fanouts: &[u32],
    outputs: &[Lit],
    cuts: &S,
    matcher: &mut Matcher<'_>,
    library: &CharacterizedLibrary,
    config: &MapConfig,
) -> Result<Selection, MapError> {
    let costs = Costs::new(library, matcher.inverter(), config);
    let n = aig.len();
    let mut po_driver = vec![false; n];
    for lit in outputs {
        po_driver[lit.node() as usize] = true;
    }

    let mut arrival = vec![0.0f64; n];
    let mut flow = vec![0.0f64; n];
    let mut chosen: Vec<Option<Chosen>> = vec![None; n];

    // Phase 3a: the arrival/flow DP.
    for &node in order {
        let idx = node as usize;
        let po = po_driver[idx];
        let fb = fanout_bucket(fanouts[idx]);
        let mut best: Option<(f64, f64, Chosen)> = None;
        for cut in cuts.cuts_of(node) {
            if cut.is_trivial(node) {
                continue;
            }
            // The shared support projection (`aig::cuts`) both the mapper
            // and the rewriting engine consume: the shrunk function plus
            // the leaf node behind each remaining variable.
            let (fs, leaves) = cut.function_over_support();
            if leaves.is_empty() {
                continue; // constant function; covered by a smaller cut
            }
            for cand in matcher.matches(fs) {
                let pins: Vec<(u32, bool)> =
                    cand.pins.iter().map(|&(v, inv)| (leaves[v], inv)).collect();
                let mut arr_in = 0.0f64;
                let mut inv_flow_cost = 0.0;
                for &(leaf, inv) in &pins {
                    let leaf_fb = fanout_bucket(fanouts[leaf as usize]);
                    arr_in = arr_in.max(arrival[leaf as usize] + costs.pin_delay(inv, leaf_fb));
                    if inv && !costs.free_neg {
                        // One materialized inverter serves every consumer
                        // of the complemented leaf, so its flow cost is
                        // discounted by the leaf's fanout exactly like
                        // the leaf's own flow below.
                        inv_flow_cost += costs.inv_unit / fanouts[leaf as usize].max(1) as f64;
                    }
                }
                let arr = arr_in + costs.match_delay(po, fb, cand.gate, cand.output_inverted);
                let f = costs.match_unit(cand.gate, cand.output_inverted)
                    + inv_flow_cost
                    + pins
                        .iter()
                        .map(|&(leaf, _)| {
                            flow[leaf as usize] / fanouts[leaf as usize].max(1) as f64
                        })
                        .sum::<f64>();
                let better = match (&best, config.objective) {
                    (None, _) => true,
                    (Some((bd, bf, _)), Objective::Delay) => {
                        // Relative epsilon, like the flow branch below:
                        // arrivals are order 1e-11 s, so an absolute
                        // 1e-15 tolerance would never declare a tie and
                        // the area-flow tie-break would never fire.
                        let eps = rel_eps(arr, *bd);
                        arr < bd - eps || ((arr - bd).abs() <= eps && f < *bf)
                    }
                    (Some((bd, bf, _)), Objective::Area | Objective::Energy) => {
                        // Relative epsilon: flow magnitudes differ by
                        // orders between area (m²) and energy (J), and
                        // summation order can perturb equal flows by an
                        // ulp — without the tolerance the arrival
                        // tie-break would never fire.
                        let eps = rel_eps(f, *bf);
                        f < *bf - eps || ((f - bf).abs() <= eps && arr < *bd)
                    }
                };
                if better {
                    best = Some((
                        arr,
                        f,
                        Chosen {
                            gate: cand.gate,
                            pins,
                            output_inverted: cand.output_inverted,
                        },
                    ));
                }
            }
        }
        let (arr, f, c) = best.ok_or(MapError::UnmatchedNode {
            node,
            cuts: cuts.cuts_of(node).len(),
        })?;
        arrival[idx] = arr;
        flow[idx] = f;
        chosen[idx] = Some(c);
    }

    // Phase 3b: required times + area recovery (delay objective only —
    // the other objectives already minimized their flow directly).
    if config.objective == Objective::Delay && config.recovery_rounds > 0 {
        let target = predicted_critical(&arrival, outputs, &costs);
        recover_area(
            RecoverCtx {
                order,
                fanouts,
                outputs,
                po_driver: &po_driver,
                costs: &costs,
                config,
                target,
            },
            cuts,
            matcher,
            &mut chosen,
            &mut arrival,
            &mut flow,
        );
    }

    let predicted = predicted_critical(&arrival, outputs, &costs);
    Ok(Selection { chosen, predicted })
}

/// The read-only state recovery rounds share (bundled so the round loop
/// and its helpers stay within clippy's argument budget).
struct RecoverCtx<'a> {
    order: &'a [u32],
    fanouts: &'a [u32],
    outputs: &'a [Lit],
    po_driver: &'a [bool],
    costs: &'a Costs,
    config: &'a MapConfig,
    /// The DP's optimal critical path — the required time at every PO.
    target: f64,
}

/// Phase 3b: iterated area recovery under required times.
///
/// Each round recomputes the current cover's reference counts and
/// required times, then re-selects every node's match minimizing area
/// flow (round 1) or exact local area (later rounds) subject to
/// `arrival ≤ required` — the node's current match is always feasible,
/// so the cover's predicted critical path never exceeds `target`.
fn recover_area<S: CutSource + ?Sized>(
    ctx: RecoverCtx<'_>,
    cuts: &S,
    matcher: &mut Matcher<'_>,
    chosen: &mut [Option<Chosen>],
    arrival: &mut [f64],
    flow: &mut [f64],
) {
    let costs = ctx.costs;
    for round in 0..ctx.config.recovery_rounds {
        let mut span = obs::span!("map/recover");
        span.record("round", round as u64 + 1);
        let exact = round > 0;
        let (mut refs, mut inv_refs) = cover_refs(chosen, ctx.outputs, costs.free_neg);
        let required = required_times(&ctx, chosen, &refs);
        for &node in ctx.order {
            let idx = node as usize;
            let po = ctx.po_driver[idx];
            let fb = fanout_bucket(ctx.fanouts[idx]);
            let req = required[idx];
            // Tiny relative slack: required times are derived from the
            // same arithmetic, but subtraction re-association can cost
            // an ulp and must not reject the currently chosen match.
            let feasible = req + 1e-9 * req.abs();
            let covered = refs[idx] > 0;
            // Exact-area probing prices a candidate's cone against the
            // cover *without* this node's current match, so sharing with
            // the match being replaced is not double-counted.
            if exact && covered {
                if let Some(c) = &chosen[idx] {
                    deref_match(c, chosen, &mut refs, &mut inv_refs, costs);
                }
            }
            let mut best: Option<(f64, f64, Chosen)> = None;
            for cut in cuts.cuts_of(node) {
                if cut.is_trivial(node) {
                    continue;
                }
                let (fs, leaves) = cut.function_over_support();
                if leaves.is_empty() {
                    continue;
                }
                for cand in matcher.matches(fs) {
                    let pins: Vec<(u32, bool)> =
                        cand.pins.iter().map(|&(v, inv)| (leaves[v], inv)).collect();
                    let m = Chosen {
                        gate: cand.gate,
                        pins,
                        output_inverted: cand.output_inverted,
                    };
                    let arr = eval_match(&m, arrival, ctx.fanouts, po, fb, costs);
                    if arr > feasible {
                        continue;
                    }
                    let cost = if exact {
                        let a = ref_match(&m, chosen, &mut refs, &mut inv_refs, costs);
                        deref_match(&m, chosen, &mut refs, &mut inv_refs, costs);
                        a
                    } else {
                        let mut f = costs.match_unit(m.gate, m.output_inverted);
                        for &(leaf, inv) in &m.pins {
                            let share = refs[leaf as usize].max(1) as f64;
                            f += flow[leaf as usize] / share;
                            if inv && !costs.free_neg {
                                f += costs.inv_unit / share;
                            }
                        }
                        f
                    };
                    let better = match &best {
                        None => true,
                        Some((bc, ba, _)) => {
                            let eps = rel_eps(cost, *bc);
                            cost < bc - eps || ((cost - bc).abs() <= eps && arr < *ba)
                        }
                    };
                    if better {
                        best = Some((cost, arr, m));
                    }
                }
            }
            match best {
                Some((cost, arr, m)) => {
                    if exact && covered {
                        ref_match(&m, chosen, &mut refs, &mut inv_refs, costs);
                    }
                    arrival[idx] = arr;
                    if !exact {
                        flow[idx] = cost;
                    }
                    chosen[idx] = Some(m);
                }
                None => {
                    // Every candidate infeasible (float corner): keep the
                    // current match, refresh its arrival, restore refs.
                    if let Some(c) = chosen[idx].clone() {
                        if exact && covered {
                            ref_match(&c, chosen, &mut refs, &mut inv_refs, costs);
                        }
                        arrival[idx] = eval_match(&c, arrival, ctx.fanouts, po, fb, costs);
                    }
                }
            }
        }
    }
}

/// Reference counts of the current cover: `refs[n]` consumers (covered
/// matches plus PO taps) reading node `n`, `inv_refs[n]` of them through
/// the shared inverter (families without free negation only). The
/// exact-area walks keep both incrementally up to date.
fn cover_refs(chosen: &[Option<Chosen>], outputs: &[Lit], free_neg: bool) -> (Vec<u32>, Vec<u32>) {
    let n = chosen.len();
    let mut refs = vec![0u32; n];
    let mut inv_refs = vec![0u32; n];
    let mut seen = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    for lit in outputs {
        refs[lit.node() as usize] += 1;
        if lit.is_complement() && !free_neg {
            inv_refs[lit.node() as usize] += 1;
        }
        stack.push(lit.node());
    }
    while let Some(node) = stack.pop() {
        let idx = node as usize;
        if seen[idx] {
            continue;
        }
        seen[idx] = true;
        if let Some(c) = &chosen[idx] {
            for &(leaf, inv) in &c.pins {
                refs[leaf as usize] += 1;
                if inv && !free_neg {
                    inv_refs[leaf as usize] += 1;
                }
                stack.push(leaf);
            }
        }
    }
    (refs, inv_refs)
}

/// Backward required-time propagation over the current cover: every PO
/// is required at `target` (the DP's optimal critical path), and each
/// covered match propagates `required − match delay − pin inverter` to
/// its leaves. Uncovered nodes keep `+∞` — they constrain nothing until
/// a later re-selection pulls them in, at which point the consumer's own
/// feasibility check prices their true arrival.
fn required_times(ctx: &RecoverCtx<'_>, chosen: &[Option<Chosen>], refs: &[u32]) -> Vec<f64> {
    let costs = ctx.costs;
    let mut required = vec![f64::INFINITY; chosen.len()];
    for lit in ctx.outputs {
        let idx = lit.node() as usize;
        let r = ctx.target - costs.po_tap_extra(lit.is_complement());
        if r < required[idx] {
            required[idx] = r;
        }
    }
    for &node in ctx.order.iter().rev() {
        let idx = node as usize;
        if refs[idx] == 0 || !required[idx].is_finite() {
            continue;
        }
        let Some(c) = &chosen[idx] else { continue };
        let fb = fanout_bucket(ctx.fanouts[idx]);
        let d = costs.match_delay(ctx.po_driver[idx], fb, c.gate, c.output_inverted);
        for &(leaf, inv) in &c.pins {
            let leaf_fb = fanout_bucket(ctx.fanouts[leaf as usize]);
            let r = required[idx] - d - costs.pin_delay(inv, leaf_fb);
            let l = leaf as usize;
            if r < required[l] {
                required[l] = r;
            }
        }
    }
    required
}

/// Pulls a match into the cover: increments its pin references
/// (recursively re-covering leaves whose count rises from zero) and
/// returns the exact area added — cells, dedicated output inverters, and
/// shared input inverters newly materialized. Iterative so megagate-deep
/// covers cannot overflow the stack.
fn ref_match(
    m: &Chosen,
    chosen: &[Option<Chosen>],
    refs: &mut [u32],
    inv_refs: &mut [u32],
    costs: &Costs,
) -> f64 {
    let mut area = costs.cell_area[m.gate]
        + if m.output_inverted {
            costs.inv_area
        } else {
            0.0
        };
    let mut stack: Vec<(u32, bool)> = m.pins.clone();
    while let Some((leaf, inv)) = stack.pop() {
        let l = leaf as usize;
        if inv && !costs.free_neg {
            inv_refs[l] += 1;
            if inv_refs[l] == 1 {
                area += costs.inv_area;
            }
        }
        refs[l] += 1;
        if refs[l] == 1 {
            if let Some(c) = &chosen[l] {
                area += costs.cell_area[c.gate]
                    + if c.output_inverted {
                        costs.inv_area
                    } else {
                        0.0
                    };
                stack.extend_from_slice(&c.pins);
            }
        }
    }
    area
}

/// Removes a match from the cover — the exact mirror of [`ref_match`]:
/// decrements pin references (recursively un-covering leaves whose count
/// drops to zero) and returns the area freed.
fn deref_match(
    m: &Chosen,
    chosen: &[Option<Chosen>],
    refs: &mut [u32],
    inv_refs: &mut [u32],
    costs: &Costs,
) -> f64 {
    let mut area = costs.cell_area[m.gate]
        + if m.output_inverted {
            costs.inv_area
        } else {
            0.0
        };
    let mut stack: Vec<(u32, bool)> = m.pins.clone();
    while let Some((leaf, inv)) = stack.pop() {
        let l = leaf as usize;
        if inv && !costs.free_neg {
            inv_refs[l] -= 1;
            if inv_refs[l] == 0 {
                area += costs.inv_area;
            }
        }
        refs[l] -= 1;
        if refs[l] == 0 {
            if let Some(c) = &chosen[l] {
                area += costs.cell_area[c.gate]
                    + if c.output_inverted {
                        costs.inv_area
                    } else {
                        0.0
                    };
                stack.extend_from_slice(&c.pins);
            }
        }
    }
    area
}

/// Phase 4: walks the chosen matches from the primary outputs and lists
/// the matches actually used, in post-order (fanins precede consumers).
fn extract_cover<S: CutSource + ?Sized>(
    len: usize,
    input_nodes: &[u32],
    outputs: &[Lit],
    cuts: &S,
    chosen: &[Option<Chosen>],
) -> Result<Vec<CoverStep>, MapError> {
    for (k, lit) in outputs.iter().enumerate() {
        if lit.node() == 0 {
            return Err(MapError::ConstantOutput { output: k });
        }
    }
    let mut emitted = vec![false; len];
    for &node in input_nodes {
        emitted[node as usize] = true;
    }
    let mut steps = Vec::new();
    // Iterative post-order DFS (two-phase stack entries).
    let mut stack: Vec<(u32, bool)> = Vec::new();
    for lit in outputs {
        stack.push((lit.node(), false));
        while let Some((node, expanded)) = stack.pop() {
            if emitted[node as usize] {
                continue;
            }
            // Defensive: selection already matched every reachable AND
            // node, so this only fires for non-logic nodes reachable via
            // a malformed cover (e.g. the constant node as a pin leaf).
            let c = chosen[node as usize]
                .as_ref()
                .ok_or(MapError::UnmatchedNode {
                    node,
                    cuts: cuts.cuts_of(node).len(),
                })?;
            if expanded {
                emitted[node as usize] = true;
                steps.push(CoverStep {
                    node,
                    chosen: c.clone(),
                });
            } else {
                stack.push((node, true));
                // Push leaves in reverse so they materialize in pin order.
                for &(leaf, _) in c.pins.iter().rev() {
                    if !emitted[leaf as usize] {
                        stack.push((leaf, false));
                    }
                }
            }
        }
    }
    Ok(steps)
}

/// Phase 5: turns the cover into cell instances, materializing shared
/// inverters where the family's signal convention requires them, and
/// assembles the final netlist.
fn materialize(
    library: &CharacterizedLibrary,
    inv_idx: usize,
    cover: &[CoverStep],
    input_nodes: &[u32],
    outputs: &[Lit],
) -> MappedNetlist {
    let free_neg = library.family.free_input_negation();
    let pi_count = input_nodes.len();
    let mut instances: Vec<Instance> = Vec::with_capacity(cover.len());
    // Positive net of each emitted node.
    let mut node_net: HashMap<u32, usize> = HashMap::new();
    for (ordinal, &node) in input_nodes.iter().enumerate() {
        node_net.insert(node, ordinal);
    }
    // Shared inverter outputs per source net.
    let mut inverted_net: HashMap<usize, usize> = HashMap::new();
    let shared_inverter =
        |net: usize, instances: &mut Vec<Instance>, inverted_net: &mut HashMap<usize, usize>| {
            *inverted_net.entry(net).or_insert_with(|| {
                instances.push(Instance {
                    gate: inv_idx,
                    inputs: vec![NetRef::plain(net)],
                });
                pi_count + instances.len() - 1
            })
        };

    for step in cover {
        let mut inputs = Vec::with_capacity(step.chosen.pins.len());
        for &(leaf, inv) in &step.chosen.pins {
            let leaf_net = node_net[&leaf];
            let net_ref = if inv && !free_neg {
                NetRef::plain(shared_inverter(leaf_net, &mut instances, &mut inverted_net))
            } else {
                NetRef {
                    net: leaf_net,
                    inverted: inv,
                }
            };
            inputs.push(net_ref);
        }
        instances.push(Instance {
            gate: step.chosen.gate,
            inputs,
        });
        let mut net = pi_count + instances.len() - 1;
        if step.chosen.output_inverted {
            instances.push(Instance {
                gate: inv_idx,
                inputs: vec![NetRef::plain(net)],
            });
            net = pi_count + instances.len() - 1;
        }
        node_net.insert(step.node, net);
    }

    let mut out_refs = Vec::with_capacity(outputs.len());
    for lit in outputs {
        let net = node_net[&lit.node()];
        let r = if lit.is_complement() {
            if free_neg {
                NetRef {
                    net,
                    inverted: true,
                }
            } else {
                NetRef::plain(shared_inverter(net, &mut instances, &mut inverted_net))
            }
        } else {
            NetRef::plain(net)
        };
        out_refs.push(r);
    }
    MappedNetlist::new(library.family, pi_count, instances, out_refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LoadModel;
    use crate::verify::verify_mapping;
    use charlib::characterize_library;
    use gate_lib::GateFamily;

    fn map_default(aig: &Aig, library: &CharacterizedLibrary) -> MappedNetlist {
        map_aig(aig, library, &MapConfig::default()).expect("default mapping succeeds")
    }

    fn small_alu_aig() -> Aig {
        let mut aig = Aig::new();
        let a: Vec<_> = (0..4).map(|_| aig.input()).collect();
        let b: Vec<_> = (0..4).map(|_| aig.input()).collect();
        // 4-bit ripple adder + AND/XOR banks.
        let mut carry = aig::Lit::FALSE;
        for i in 0..4 {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            let c1 = aig.and(a[i], b[i]);
            let c2 = aig.and(axb, carry);
            carry = aig.or(c1, c2);
            aig.output(sum);
        }
        aig.output(carry);
        for i in 0..4 {
            let f = aig.and(a[i], b[i].not());
            aig.output(f);
        }
        aig
    }

    #[test]
    fn maps_and_verifies_all_families() {
        let aig = small_alu_aig();
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            let mapped = map_default(&aig, &lib);
            assert!(
                verify_mapping(&aig, &mapped, &lib).is_ok(),
                "{family}: mapped netlist differs from AIG"
            );
            assert!(mapped.gate_count() > 0);
        }
    }

    #[test]
    fn all_objectives_verify_and_order_sensibly() {
        let aig = small_alu_aig();
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            let mut areas = Vec::new();
            for objective in Objective::ALL {
                let mapped = map_aig(&aig, &lib, &MapConfig::for_objective(objective))
                    .expect("mapping succeeds");
                assert!(
                    verify_mapping(&aig, &mapped, &lib).is_ok(),
                    "{family}/{objective}: mapped netlist differs from AIG"
                );
                areas.push(mapped.area(&lib));
            }
            // Area mapping must not occupy more silicon than pure
            // depth-greedy delay mapping (the metric it actually
            // minimizes; gate counts can legitimately order either way
            // since cells differ in size). Compare against the
            // un-recovered mapper: with recovery enabled the delay
            // objective's exact-local-area rounds can beat single-pass
            // area flow outright.
            let greedy_delay = map_aig(
                &aig,
                &lib,
                &MapConfig {
                    recovery_rounds: 0,
                    ..MapConfig::default()
                },
            )
            .expect("mapping succeeds")
            .area(&lib);
            assert!(
                areas[1] <= greedy_delay * (1.0 + 1e-9),
                "{family}: area-objective {} m² vs greedy delay {greedy_delay} m²",
                areas[1]
            );
        }
    }

    #[test]
    fn shared_cache_matches_private_cache() {
        let aig = small_alu_aig();
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let cache = NpnMatchCache::new(&lib).expect("INV present");
        let config = MapConfig::default();
        let private = map_aig(&aig, &lib, &config).expect("maps");
        let shared = map_aig_with_cache(&aig, &lib, &cache, &config).expect("maps");
        assert_eq!(private.instances, shared.instances);
        assert_eq!(private.outputs(), shared.outputs());
    }

    #[test]
    fn custom_cut_width_still_verifies() {
        let aig = small_alu_aig();
        let lib = characterize_library(GateFamily::Cmos);
        for k in [2usize, 4] {
            let config = MapConfig {
                cut_k: k,
                ..MapConfig::default()
            };
            let mapped = map_aig(&aig, &lib, &config).expect("mapping succeeds");
            assert!(verify_mapping(&aig, &mapped, &lib).is_ok(), "k = {k}");
        }
    }

    #[test]
    fn invalid_cut_width_is_an_error() {
        let aig = small_alu_aig();
        let lib = characterize_library(GateFamily::Cmos);
        for k in [0usize, 1, 7] {
            let config = MapConfig {
                cut_k: k,
                ..MapConfig::default()
            };
            assert_eq!(
                map_aig(&aig, &lib, &config).err(),
                Some(MapError::InvalidCutK { k })
            );
        }
    }

    #[test]
    fn cut_db_mapping_matches_and_reuses() {
        // Mapping through a persistent CutDb is identical to the one-shot
        // path, and a second run over the same network recomputes nothing.
        let aig = small_alu_aig();
        let lib = characterize_library(GateFamily::Cmos);
        let cache = NpnMatchCache::new(&lib).expect("cache builds");
        let config = MapConfig::default();
        let one_shot = map_aig_with_cache(&aig, &lib, &cache, &config).expect("maps");
        let mut db = CutDb::new(CutConfig {
            k: config.cut_k,
            max_cuts: config.max_cuts,
        });
        let first = map_aig_with_cut_db(&aig, &lib, &cache, &config, &mut db).expect("maps");
        assert_eq!(first.instances, one_shot.instances);
        let computed_once = db.computed();
        assert!(computed_once > 0);
        let second = map_aig_with_cut_db(&aig, &lib, &cache, &config, &mut db).expect("maps");
        assert_eq!(second.instances, one_shot.instances);
        assert_eq!(
            db.computed(),
            computed_once,
            "a warm database must serve every cut set"
        );
        assert!(db.reused() > 0);
    }

    #[test]
    fn cut_db_shape_mismatch_is_an_error() {
        let aig = small_alu_aig();
        let lib = characterize_library(GateFamily::Cmos);
        let cache = NpnMatchCache::new(&lib).expect("cache builds");
        let config = MapConfig::default();
        let mut db = CutDb::new(CutConfig { k: 4, max_cuts: 4 });
        assert_eq!(
            map_aig_with_cut_db(&aig, &lib, &cache, &config, &mut db).err(),
            Some(MapError::InvalidCutK { k: 4 })
        );
    }

    #[test]
    fn constant_output_is_an_error_not_a_panic() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let f = aig.and(a, b);
        aig.output(f);
        aig.output(aig::Lit::TRUE);
        let lib = characterize_library(GateFamily::Cmos);
        assert_eq!(
            map_aig(&aig, &lib, &MapConfig::default()).err(),
            Some(MapError::ConstantOutput { output: 1 })
        );
    }

    #[test]
    fn fixed_load_model_maps() {
        let aig = small_alu_aig();
        let lib = characterize_library(GateFamily::Cmos);
        let config = MapConfig {
            load: LoadModel::Fixed(1e-16),
            ..MapConfig::default()
        };
        let mapped = map_aig(&aig, &lib, &config).expect("mapping succeeds");
        assert!(verify_mapping(&aig, &mapped, &lib).is_ok());
    }

    #[test]
    fn generalized_mapping_is_smaller_on_xor_logic() {
        // A parity-heavy block: the generalized library should need
        // clearly fewer cells than CMOS.
        let mut aig = Aig::new();
        let xs: Vec<_> = (0..8).map(|_| aig.input()).collect();
        for chunk in xs.chunks(4) {
            let p = aig.xor_many(chunk);
            aig.output(p);
        }
        let gen = characterize_library(GateFamily::CntfetGeneralized);
        let cmos = characterize_library(GateFamily::Cmos);
        let m_gen = map_default(&aig, &gen);
        let m_cmos = map_default(&aig, &cmos);
        assert!(verify_mapping(&aig, &m_gen, &gen).is_ok());
        assert!(verify_mapping(&aig, &m_cmos, &cmos).is_ok());
        assert!(
            m_gen.gate_count() < m_cmos.gate_count(),
            "generalized {} vs CMOS {}",
            m_gen.gate_count(),
            m_cmos.gate_count()
        );
    }

    #[test]
    fn conventional_families_map_identically() {
        // Same cells, same matcher ⇒ same structure; only the technology
        // (delays, caps) differs.
        let aig = small_alu_aig();
        let cnt = characterize_library(GateFamily::CntfetConventional);
        let cmos = characterize_library(GateFamily::Cmos);
        let m_cnt = map_default(&aig, &cnt);
        let m_cmos = map_default(&aig, &cmos);
        assert_eq!(m_cnt.gate_count(), m_cmos.gate_count());
    }

    #[test]
    fn inverters_are_shared() {
        // Multiple consumers of the same complemented net must reuse one
        // inverter in conventional mapping.
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let f1 = aig.and(a.not(), b);
        let f2 = aig.and(a.not(), c);
        aig.output(f1);
        aig.output(f2);
        let lib = characterize_library(GateFamily::Cmos);
        let mapped = map_default(&aig, &lib);
        assert!(verify_mapping(&aig, &mapped, &lib).is_ok());
        let inv_count = mapped
            .instances
            .iter()
            .filter(|i| lib.gates[i.gate].gate.name == "INV")
            .count();
        // NAND/NOR-class cells can absorb the negations entirely, but if
        // any inverter exists there must be at most one for net `a`.
        assert!(inv_count <= 1, "inverters not shared: {inv_count}");
    }

    /// A flow with a `dch` step over the small ALU: the choice network
    /// plus the plain synthesized network for comparison.
    fn alu_choices() -> (Aig, aig::ChoiceAig) {
        let aig = small_alu_aig();
        let flow = aig::Flow::parse("b; rw; rf; dch").expect("parses");
        let (synthesized, choices, _) = flow.run_with_choices(&aig);
        (synthesized, choices.expect("dch returns choices"))
    }

    #[test]
    fn choice_mapping_verifies_in_all_families() {
        let original = small_alu_aig();
        let (_, choices) = alu_choices();
        let config = MapConfig {
            use_choices: true,
            ..MapConfig::default()
        };
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            let mapped = map_choice_aig(&choices, &lib, &config).expect("choice mapping succeeds");
            assert!(
                verify_mapping(&original, &mapped, &lib).is_ok(),
                "{family}: choice-mapped netlist differs from the original AIG"
            );
            assert!(mapped.gate_count() > 0);
        }
    }

    #[test]
    fn choice_mapping_without_use_choices_is_the_collapsed_plain_mapping() {
        let (_, choices) = alu_choices();
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let config = MapConfig::default();
        assert!(!config.use_choices);
        let via_choice_entry =
            map_choice_aig(&choices, &lib, &config).expect("collapsed mapping succeeds");
        let plain = map_aig(&choices.collapsed(), &lib, &config).expect("plain mapping succeeds");
        assert_eq!(via_choice_entry.instances, plain.instances);
        assert_eq!(via_choice_entry.outputs(), plain.outputs());
    }

    #[test]
    fn choice_mapping_verifies_across_objectives() {
        let original = small_alu_aig();
        let (_, choices) = alu_choices();
        let lib = characterize_library(GateFamily::Cmos);
        for objective in Objective::ALL {
            let config = MapConfig {
                use_choices: true,
                ..MapConfig::for_objective(objective)
            };
            let mapped = map_choice_aig(&choices, &lib, &config).expect("maps");
            assert!(
                verify_mapping(&original, &mapped, &lib).is_ok(),
                "{objective}: choice-mapped netlist differs"
            );
        }
    }

    #[test]
    fn choice_mapping_rejects_bad_cut_width() {
        let (_, choices) = alu_choices();
        let lib = characterize_library(GateFamily::Cmos);
        let config = MapConfig {
            cut_k: 9,
            use_choices: true,
            ..MapConfig::default()
        };
        assert_eq!(
            map_choice_aig(&choices, &lib, &config).err(),
            Some(MapError::InvalidCutK { k: 9 })
        );
    }

    #[test]
    fn instances_are_topologically_ordered() {
        let aig = small_alu_aig();
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let mapped = map_default(&aig, &lib);
        for (i, inst) in mapped.instances.iter().enumerate() {
            for r in &inst.inputs {
                assert!(
                    r.net < mapped.pi_count + i,
                    "instance {i} reads undriven net {}",
                    r.net
                );
            }
        }
    }
}
