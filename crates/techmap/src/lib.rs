//! Cut-based technology mapping with NPN Boolean matching — the "ABC
//! `map` + genlib" substitute of the paper's §4 flow, structured as a
//! staged, reusable engine.
//!
//! [`map_aig`] covers a synthesized [`aig::Aig`] with cells from a
//! [`charlib::CharacterizedLibrary`] in five explicit phases:
//!
//! 1. **cut enumeration** — k-feasible priority cuts per node
//!    ([`aig::cuts`]; `k` and the per-node cut cap come from
//!    [`MapConfig`]);
//! 2. **NPN-canonical matching** — cut functions are canonized and looked
//!    up in an immutable, precomputed [`NpnMatchCache`] (one per library;
//!    shareable across circuits and threads) through a per-run
//!    [`Matcher`] memo; input-phase requirements are *free* for the
//!    dual-rail generalized ambipolar family and cost explicit shared
//!    inverters for the conventional families — the structural mechanism
//!    behind the paper's expressive-power advantage;
//! 3. **objective-driven selection** — a dynamic program minimizing the
//!    configured [`Objective`] (`Delay`, `Area`, or `Energy`) under a
//!    configurable [`LoadModel`] (primary-output drivers additionally
//!    charged [`MapConfig::output_load`]); the delay objective then runs
//!    the classical two-phase refinement — required times propagated
//!    backward from the outputs, followed by
//!    [`MapConfig::recovery_rounds`] rounds of area-flow and
//!    exact-local-area recovery on positive-slack nodes, which shed area
//!    without touching the DP-optimal critical path;
//! 4. **cover extraction** — the chosen matches actually reachable from
//!    the primary outputs, in topological emission order;
//! 5. **inverter materialization** — shared inverters for input/output
//!    phase repairs, per the family's signal convention.
//!
//! The engine is panic-free: every failure mode (unmatched node, constant
//! primary output, missing INV cell, bad cut width) is a [`MapError`].
//! Load-dependent static timing ([`sta`]) reports the mapped critical
//! path.
//!
//! [`map_choice_aig`] runs the same staged engine over an
//! [`aig::ChoiceAig`] — the structural choices a synthesis flow
//! accumulated via its `dch` step: cut enumeration walks the choice
//! rings (a class's cut may be rooted in any member's cone), selection
//! iterates the classes in dependency order, and the cover materializes
//! whichever alternative won, all behind [`MapConfig::use_choices`].
//!
//! Every mapping is *checkable*: [`MappedNetlist::to_aig`] rebuilds the
//! netlist as an AIG and [`verify_mapping`] SAT-proves it equivalent to
//! the source network (a failed proof carries a concrete [`CexReport`]
//! input pattern). The cheaper simulation mode and the off switch hang
//! off the [`Verify`] knob that the pipeline and bench binaries expose as
//! `--verify off|sim|sat`.
//!
//! # Example
//!
//! ```
//! use aig::Aig;
//! use charlib::characterize_library;
//! use gate_lib::GateFamily;
//! use techmap::{map_aig, MapConfig};
//!
//! let mut aig = Aig::new();
//! let a = aig.input();
//! let b = aig.input();
//! let c = aig.input();
//! let x = aig.xor(a, b);
//! let f = aig.and(x, c);
//! aig.output(f);
//! let lib = characterize_library(GateFamily::CntfetGeneralized);
//! let mapped = map_aig(&aig, &lib, &MapConfig::default()).expect("mapping succeeds");
//! // The generalized library absorbs the XOR into one cell.
//! assert!(mapped.instances.len() <= 2);
//! ```

pub mod config;
pub mod export;
pub mod mapper;
pub mod matching;
pub mod netlist;
pub mod sta;
pub mod verify;

pub use config::{default_output_load, LoadModel, MapConfig, MapError, Objective};
pub use export::{cell_histogram, to_structural_verilog};
pub use mapper::{
    map_aig, map_aig_with_cache, map_aig_with_cut_db, map_choice_aig, map_choice_aig_with_cache,
};
pub use matching::{MatchCandidate, Matcher, NpnMatchCache};
pub use netlist::{Instance, MappedNetlist, NetRef};
pub use sta::{critical_path, critical_path_with_load, StaReport};
pub use verify::{
    verify_mapping, verify_mapping_sim, verify_mapping_with, CexReport, Verify, VerifyError,
};
