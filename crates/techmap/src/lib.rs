//! Cut-based technology mapping with NPN Boolean matching — the "ABC
//! `map` + genlib" substitute of the paper's §4 flow.
//!
//! The mapper covers a synthesized [`aig::Aig`] with cells from a
//! [`charlib::CharacterizedLibrary`]:
//!
//! * 6-feasible priority cuts are enumerated per node ([`aig::cuts`]);
//! * every cut function is NPN-canonized and matched against the library
//!   ([`matching`]); input-phase requirements are *free* for the dual-rail
//!   generalized ambipolar family and cost explicit shared inverters for
//!   the conventional families — the structural mechanism behind the
//!   paper's expressive-power advantage;
//! * a delay-oriented dynamic program with area-flow tie-breaking selects
//!   matches ([`mapper`]), and load-dependent static timing ([`sta`])
//!   reports the mapped critical path.
//!
//! # Example
//!
//! ```
//! use aig::Aig;
//! use charlib::characterize_library;
//! use gate_lib::GateFamily;
//! use techmap::map_aig;
//!
//! let mut aig = Aig::new();
//! let a = aig.input();
//! let b = aig.input();
//! let c = aig.input();
//! let x = aig.xor(a, b);
//! let f = aig.and(x, c);
//! aig.output(f);
//! let lib = characterize_library(GateFamily::CntfetGeneralized);
//! let mapped = map_aig(&aig, &lib);
//! // The generalized library absorbs the XOR into one cell.
//! assert!(mapped.instances.len() <= 2);
//! ```

pub mod export;
pub mod mapper;
pub mod matching;
pub mod netlist;
pub mod sta;

pub use export::{cell_histogram, to_structural_verilog};
pub use mapper::{map_aig, verify_mapping};
pub use matching::MatchTable;
pub use netlist::{Instance, MappedNetlist, NetRef};
pub use sta::{critical_path, StaReport};
