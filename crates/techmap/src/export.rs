//! Structural netlist export: mapped netlists as Verilog-style text.
//!
//! Downstream users (and humans debugging the mapper) get the classic
//! gate-level view ABC would have emitted:
//!
//! ```verilog
//! module c1355 (pi0, pi1, ..., po0, ...);
//!   GNAND2 g12 (.a(n5), .b(n7), .c(pi3), .d(n2), .y(n13));
//! ```
//!
//! Dual-rail complement taps of the generalized family are rendered as
//! `~net` on the pin (legal as an expression in most structural dialects,
//! and unambiguous for human readers).

use crate::netlist::{MappedNetlist, NetRef};
use charlib::CharacterizedLibrary;
use std::fmt::Write as _;

/// Renders a mapped netlist as structural Verilog-style text.
pub fn to_structural_verilog(
    netlist: &MappedNetlist,
    library: &CharacterizedLibrary,
    module_name: &str,
) -> String {
    let mut out = String::new();
    let pi_names: Vec<String> = (0..netlist.pi_count).map(|i| format!("pi{i}")).collect();
    let po_names: Vec<String> = (0..netlist.outputs().len())
        .map(|i| format!("po{i}"))
        .collect();
    let net_name = |r: &NetRef| -> String {
        let base = if r.net < netlist.pi_count {
            pi_names[r.net].clone()
        } else {
            format!("n{}", r.net)
        };
        if r.inverted {
            format!("~{base}")
        } else {
            base
        }
    };

    let _ = writeln!(
        out,
        "module {module_name} ({}, {});",
        pi_names.join(", "),
        po_names.join(", ")
    );
    for name in &pi_names {
        let _ = writeln!(out, "  input {name};");
    }
    for name in &po_names {
        let _ = writeln!(out, "  output {name};");
    }
    for i in 0..netlist.instances.len() {
        let _ = writeln!(out, "  wire n{};", netlist.instance_output_net(i));
    }
    for (i, inst) in netlist.instances.iter().enumerate() {
        let cell = &library.gates[inst.gate];
        let pins: Vec<String> = inst
            .inputs
            .iter()
            .enumerate()
            .map(|(k, r)| format!(".{}({})", (b'a' + k as u8) as char, net_name(r)))
            .collect();
        let _ = writeln!(
            out,
            "  {} g{i} ({}, .y(n{}));",
            cell.gate.name,
            pins.join(", "),
            netlist.instance_output_net(i)
        );
    }
    for (k, r) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(out, "  assign {} = {};", po_names[k], net_name(r));
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Summary statistics line (gate histogram), handy for diffing mappings.
pub fn cell_histogram(
    netlist: &MappedNetlist,
    library: &CharacterizedLibrary,
) -> Vec<(String, usize)> {
    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for inst in &netlist.instances {
        *counts
            .entry(&library.gates[inst.gate].gate.name)
            .or_insert(0) += 1;
    }
    let mut v: Vec<(String, usize)> = counts.into_iter().map(|(k, c)| (k.to_owned(), c)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MapConfig;
    use crate::mapper::map_aig;
    use aig::Aig;
    use charlib::characterize_library;
    use gate_lib::GateFamily;

    fn small_netlist(family: GateFamily) -> (MappedNetlist, CharacterizedLibrary) {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let x = aig.xor(a, b);
        let f = aig.and(x, c.not());
        aig.output(f);
        aig.output(x.not());
        let lib = characterize_library(family);
        let mapped = map_aig(&aig, &lib, &MapConfig::default()).expect("mapping succeeds");
        (mapped, lib)
    }

    #[test]
    fn verilog_has_module_structure() {
        let (netlist, lib) = small_netlist(GateFamily::Cmos);
        let text = to_structural_verilog(&netlist, &lib, "tiny");
        assert!(text.starts_with("module tiny ("));
        assert!(text.trim_end().ends_with("endmodule"));
        assert_eq!(text.matches("input ").count(), 3);
        assert_eq!(text.matches("output ").count(), 2);
        // One instance line per mapped gate.
        assert_eq!(text.matches("  assign ").count(), 2);
        for (i, _) in netlist.instances.iter().enumerate() {
            assert!(text.contains(&format!(" g{i} (")), "instance g{i} missing");
        }
    }

    #[test]
    fn generalized_netlist_renders_complement_taps() {
        let (netlist, lib) = small_netlist(GateFamily::CntfetGeneralized);
        let text = to_structural_verilog(&netlist, &lib, "tiny");
        // The dual-rail family uses complemented pins or outputs somewhere
        // in this circuit (the AND of an inverted input guarantees it).
        assert!(text.contains('~'), "expected a complement tap:\n{text}");
    }

    #[test]
    fn histogram_counts_instances() {
        let (netlist, lib) = small_netlist(GateFamily::Cmos);
        let hist = cell_histogram(&netlist, &lib);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, netlist.gate_count());
        assert!(!hist.is_empty());
    }
}
