//! Mapped netlists: cell instances wired by nets.

use charlib::CharacterizedLibrary;
use gate_lib::GateFamily;

/// A reference to a net with an optional (dual-rail) complement flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NetRef {
    /// Net id: `0..pi_count` are primary inputs, `pi_count + i` is the
    /// output of instance `i`.
    pub net: usize,
    /// Whether the complemented rail is referenced. Only the generalized
    /// family leaves this set on instance pins; conventional families
    /// materialize inverters instead.
    pub inverted: bool,
}

impl NetRef {
    /// A plain (non-inverted) reference.
    pub fn plain(net: usize) -> Self {
        Self {
            net,
            inverted: false,
        }
    }
}

/// One mapped cell instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Index into the characterized library's gate list.
    pub gate: usize,
    /// Input connections, one per cell pin.
    pub inputs: Vec<NetRef>,
}

/// A technology-mapped netlist.
///
/// Built once by [`MappedNetlist::new`] and immutable afterwards; the
/// constructor precomputes the output-net index that the word-level
/// readers ([`MappedNetlist::output_words`] and friends) use, so per-word
/// hot loops never re-resolve [`NetRef`]s.
#[derive(Clone, Debug)]
pub struct MappedNetlist {
    /// The family this netlist was mapped onto.
    pub family: GateFamily,
    /// Number of primary inputs.
    pub pi_count: usize,
    /// Instances in topological order (fanins precede consumers).
    pub instances: Vec<Instance>,
    /// Primary outputs. Private so it cannot drift out of sync with the
    /// precomputed `output_index`; read through
    /// [`MappedNetlist::outputs`].
    outputs: Vec<NetRef>,
    /// Precomputed output-net index: `(net, complement mask)` per primary
    /// output. The mask is `u64::MAX` for inverted taps so a word read is
    /// one branch-free `values[net] ^ mask`.
    output_index: Vec<(usize, u64)>,
    /// The mapper's own critical-path estimate in seconds (the selection
    /// DP's arrival bookkeeping for the emitted cover); `None` for
    /// hand-built netlists.
    predicted_delay_s: Option<f64>,
}

impl MappedNetlist {
    /// Assembles a netlist and precomputes its output-net index.
    ///
    /// Instances must be in topological order (every input net of instance
    /// `i` below `pi_count + i`) and outputs must reference existing nets;
    /// both are debug-asserted.
    pub fn new(
        family: GateFamily,
        pi_count: usize,
        instances: Vec<Instance>,
        outputs: Vec<NetRef>,
    ) -> Self {
        debug_assert!(instances
            .iter()
            .enumerate()
            .all(|(i, inst)| inst.inputs.iter().all(|r| r.net < pi_count + i)));
        debug_assert!(outputs.iter().all(|r| r.net < pi_count + instances.len()));
        let output_index = outputs
            .iter()
            .map(|r| (r.net, if r.inverted { u64::MAX } else { 0 }))
            .collect();
        Self {
            family,
            pi_count,
            instances,
            outputs,
            output_index,
            predicted_delay_s: None,
        }
    }

    /// The primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NetRef] {
        &self.outputs
    }

    /// The mapper's own critical-path estimate in seconds — the arrival
    /// the selection DP predicted for this cover under its
    /// [`LoadModel`](crate::LoadModel) and output-load estimates. `None`
    /// for netlists not produced by the mapper. Compare against
    /// [`critical_path`](crate::sta::critical_path) to gauge how closely
    /// the mapping-time timing model tracks the exact per-net loads.
    pub fn predicted_delay_s(&self) -> Option<f64> {
        self.predicted_delay_s
    }

    /// Records the mapper's critical-path estimate (mapper-internal).
    pub(crate) fn set_predicted_delay_s(&mut self, seconds: f64) {
        self.predicted_delay_s = Some(seconds);
    }

    /// Total number of nets (PIs + instance outputs).
    pub fn net_count(&self) -> usize {
        self.pi_count + self.instances.len()
    }

    /// The net driven by instance `i`.
    pub fn instance_output_net(&self, i: usize) -> usize {
        self.pi_count + i
    }

    /// Mapped gate count (the paper's "No." column — includes inverters).
    pub fn gate_count(&self) -> usize {
        self.instances.len()
    }

    /// Total cell area in square metres.
    pub fn area(&self, library: &CharacterizedLibrary) -> f64 {
        self.instances
            .iter()
            .map(|inst| library.gates[inst.gate].area)
            .sum()
    }

    /// Total transistor count.
    pub fn transistor_count(&self, library: &CharacterizedLibrary) -> usize {
        self.instances
            .iter()
            .map(|inst| library.gates[inst.gate].gate.transistor_count())
            .sum()
    }

    /// Simulates the netlist on 64 parallel patterns per word.
    ///
    /// `pi_words[i]` carries the values of primary input `i`. Returns the
    /// word of every net (indexable by net id), with outputs read via
    /// [`MappedNetlist::output_words`].
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != pi_count`.
    pub fn simulate64(&self, library: &CharacterizedLibrary, pi_words: &[u64]) -> Vec<u64> {
        let mut values = Vec::new();
        self.simulate64_into(library, pi_words, &mut values);
        values
    }

    /// Like [`MappedNetlist::simulate64`] but reusing a caller-provided
    /// buffer — the allocation-free form the per-word power-simulation
    /// loop runs on. Pin words live in a fixed stack array (cells have at
    /// most [`logic::MAX_VARS`] pins), so a simulated word allocates
    /// nothing beyond the one `values` growth on first use.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != pi_count`.
    pub fn simulate64_into(
        &self,
        library: &CharacterizedLibrary,
        pi_words: &[u64],
        values: &mut Vec<u64>,
    ) {
        assert_eq!(pi_words.len(), self.pi_count, "primary input word count");
        values.clear();
        values.resize(self.net_count(), 0);
        values[..self.pi_count].copy_from_slice(pi_words);
        let mut pins = [0u64; logic::MAX_VARS];
        for (i, inst) in self.instances.iter().enumerate() {
            let f = library.gates[inst.gate].gate.function;
            for (k, r) in inst.inputs.iter().enumerate() {
                let w = values[r.net];
                pins[k] = if r.inverted { !w } else { w };
            }
            values[self.pi_count + i] = f.eval_words(&pins[..inst.inputs.len()]);
        }
    }

    /// Rebuilds the netlist as an [`Aig`](aig::Aig) — the back-conversion
    /// that makes mapped results checkable against their source network.
    ///
    /// Each cell instance becomes the ISOP cover of its library function
    /// over the instance's pin literals (dual-rail `inverted` references
    /// become complemented edges), so the result computes exactly what
    /// [`MappedNetlist::simulate64`] computes. Feed it to
    /// [`aig::check_equivalence`] — or use
    /// [`verify_mapping`](crate::verify::verify_mapping), which does — to
    /// *prove* the mapping correct.
    pub fn to_aig(&self, library: &CharacterizedLibrary) -> aig::Aig {
        let mut out = aig::Aig::new();
        let mut nets: Vec<aig::Lit> = (0..self.pi_count).map(|_| out.input()).collect();
        for inst in &self.instances {
            let pins: Vec<aig::Lit> = inst
                .inputs
                .iter()
                .map(|r| apply_phase(nets[r.net], r.inverted))
                .collect();
            let f = tt_to_aig(&mut out, library.gates[inst.gate].gate.function, &pins);
            nets.push(f);
        }
        for r in self.outputs() {
            out.output(apply_phase(nets[r.net], r.inverted));
        }
        out
    }

    /// Reads the primary-output words from a simulated value vector via
    /// the precomputed output-net index.
    pub fn output_words(&self, values: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        self.output_words_into(values, &mut out);
        out
    }

    /// Like [`MappedNetlist::output_words`] but reusing a caller-provided
    /// buffer.
    pub fn output_words_into(&self, values: &[u64], out: &mut Vec<u64>) {
        out.clear();
        out.extend(
            self.output_index
                .iter()
                .map(|&(net, mask)| values[net] ^ mask),
        );
    }
}

fn apply_phase(l: aig::Lit, inverted: bool) -> aig::Lit {
    if inverted {
        l.not()
    } else {
        l
    }
}

/// Builds a cell function as the OR of its ISOP cubes over pin literals.
fn tt_to_aig(out: &mut aig::Aig, tt: logic::TruthTable, pins: &[aig::Lit]) -> aig::Lit {
    // Same contract as `TruthTable::eval_words`: one pin per variable. A
    // mismatch must fail loudly here too — silently dropping cube
    // literals would make the back-conversion (and thus the SAT "proof"
    // built on it) model a different function than the netlist computes.
    assert_eq!(pins.len(), tt.n_vars(), "pin count vs cell function arity");
    if tt.is_zero() {
        return aig::Lit::FALSE;
    }
    if tt.is_one() {
        return aig::Lit::TRUE;
    }
    let terms: Vec<aig::Lit> = logic::isop(tt)
        .iter()
        .map(|cube| {
            let lits: Vec<aig::Lit> = (0..tt.n_vars())
                .filter(|&v| (cube.care >> v) & 1 == 1)
                .map(|v| apply_phase(pins[v], (cube.polarity >> v) & 1 == 0))
                .collect();
            out.and_many(&lits)
        })
        .collect();
    out.or_many(&terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlib::characterize_library;

    #[test]
    fn to_aig_matches_word_simulation() {
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        // XNOR2 cell driven with one inverted pin, plus an inverted
        // output tap: the back-conversion must reproduce both phases.
        let xor_idx = lib
            .gates
            .iter()
            .position(|g| g.gate.name == "XNOR2")
            .expect("generalized family has an XNOR2 cell");
        let netlist = MappedNetlist::new(
            GateFamily::CntfetGeneralized,
            2,
            vec![Instance {
                gate: xor_idx,
                inputs: vec![
                    NetRef {
                        net: 0,
                        inverted: true,
                    },
                    NetRef::plain(1),
                ],
            }],
            vec![
                NetRef::plain(2),
                NetRef {
                    net: 2,
                    inverted: true,
                },
            ],
        );
        let rebuilt = netlist.to_aig(&lib);
        assert_eq!(rebuilt.input_count(), 2);
        assert_eq!(rebuilt.output_count(), 2);
        let words = [0b0101u64, 0b0011];
        let values = netlist.simulate64(&lib, &words);
        let expect = netlist.output_words(&values);
        let got = aig::simulate64(&rebuilt, &words);
        for (e, g) in expect.iter().zip(got.iter()) {
            assert_eq!(e & 0xF, g & 0xF);
        }
    }

    #[test]
    fn hand_built_netlist_simulates() {
        // NAND2 feeding INV = AND2.
        let lib = characterize_library(GateFamily::Cmos);
        let nand_idx = lib
            .gates
            .iter()
            .position(|g| g.gate.name == "NAND2")
            .expect("NAND2");
        let inv_idx = lib
            .gates
            .iter()
            .position(|g| g.gate.name == "INV")
            .expect("INV");
        let netlist = MappedNetlist::new(
            GateFamily::Cmos,
            2,
            vec![
                Instance {
                    gate: nand_idx,
                    inputs: vec![NetRef::plain(0), NetRef::plain(1)],
                },
                Instance {
                    gate: inv_idx,
                    inputs: vec![NetRef::plain(2)],
                },
            ],
            vec![NetRef::plain(3)],
        );
        let values = netlist.simulate64(&lib, &[0b0101, 0b0011]);
        let out = netlist.output_words(&values);
        assert_eq!(out[0] & 0xF, 0b0001, "AND of the two inputs");
        assert_eq!(netlist.gate_count(), 2);
        assert!(netlist.area(&lib) > 0.0);
        assert_eq!(netlist.transistor_count(&lib), 4 + 2);
    }

    #[test]
    fn inverted_netref_reads_complement_rail() {
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let inv_idx = lib
            .gates
            .iter()
            .position(|g| g.gate.name == "INV")
            .expect("INV");
        let netlist = MappedNetlist::new(
            GateFamily::CntfetGeneralized,
            1,
            vec![Instance {
                gate: inv_idx,
                inputs: vec![NetRef {
                    net: 0,
                    inverted: true,
                }],
            }],
            vec![NetRef::plain(1)],
        );
        let values = netlist.simulate64(&lib, &[0b01]);
        // INV of inverted input = identity.
        assert_eq!(netlist.output_words(&values)[0] & 0b11, 0b01);
    }

    #[test]
    fn output_index_resolves_inverted_taps() {
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let inv_idx = lib
            .gates
            .iter()
            .position(|g| g.gate.name == "INV")
            .expect("INV");
        let netlist = MappedNetlist::new(
            GateFamily::CntfetGeneralized,
            1,
            vec![Instance {
                gate: inv_idx,
                inputs: vec![NetRef::plain(0)],
            }],
            vec![
                NetRef::plain(1),
                NetRef {
                    net: 1,
                    inverted: true,
                },
            ],
        );
        let mut values = Vec::new();
        netlist.simulate64_into(&lib, &[0b0011], &mut values);
        let mut out = Vec::new();
        netlist.output_words_into(&values, &mut out);
        // Output 0 is INV(a); output 1 is its complement rail, i.e. a.
        assert_eq!(out[0] & 0xF, !0b0011u64 & 0xF);
        assert_eq!(out[1] & 0xF, 0b0011);
        // Buffers are reusable without stale state.
        netlist.simulate64_into(&lib, &[0b0101], &mut values);
        netlist.output_words_into(&values, &mut out);
        assert_eq!(out[1] & 0xF, 0b0101);
    }
}
