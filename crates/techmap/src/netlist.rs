//! Mapped netlists: cell instances wired by nets.

use charlib::CharacterizedLibrary;
use gate_lib::GateFamily;

/// A reference to a net with an optional (dual-rail) complement flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NetRef {
    /// Net id: `0..pi_count` are primary inputs, `pi_count + i` is the
    /// output of instance `i`.
    pub net: usize,
    /// Whether the complemented rail is referenced. Only the generalized
    /// family leaves this set on instance pins; conventional families
    /// materialize inverters instead.
    pub inverted: bool,
}

impl NetRef {
    /// A plain (non-inverted) reference.
    pub fn plain(net: usize) -> Self {
        Self {
            net,
            inverted: false,
        }
    }
}

/// One mapped cell instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Index into the characterized library's gate list.
    pub gate: usize,
    /// Input connections, one per cell pin.
    pub inputs: Vec<NetRef>,
}

/// A technology-mapped netlist.
#[derive(Clone, Debug)]
pub struct MappedNetlist {
    /// The family this netlist was mapped onto.
    pub family: GateFamily,
    /// Number of primary inputs.
    pub pi_count: usize,
    /// Instances in topological order (fanins precede consumers).
    pub instances: Vec<Instance>,
    /// Primary outputs.
    pub outputs: Vec<NetRef>,
}

impl MappedNetlist {
    /// Total number of nets (PIs + instance outputs).
    pub fn net_count(&self) -> usize {
        self.pi_count + self.instances.len()
    }

    /// The net driven by instance `i`.
    pub fn instance_output_net(&self, i: usize) -> usize {
        self.pi_count + i
    }

    /// Mapped gate count (the paper's "No." column — includes inverters).
    pub fn gate_count(&self) -> usize {
        self.instances.len()
    }

    /// Total cell area in square metres.
    pub fn area(&self, library: &CharacterizedLibrary) -> f64 {
        self.instances
            .iter()
            .map(|inst| library.gates[inst.gate].area)
            .sum()
    }

    /// Total transistor count.
    pub fn transistor_count(&self, library: &CharacterizedLibrary) -> usize {
        self.instances
            .iter()
            .map(|inst| library.gates[inst.gate].gate.transistor_count())
            .sum()
    }

    /// Simulates the netlist on 64 parallel patterns per word.
    ///
    /// `pi_words[i]` carries the values of primary input `i`. Returns the
    /// word of every net (indexable by net id), with outputs read via
    /// [`MappedNetlist::outputs`].
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != pi_count`.
    pub fn simulate64(&self, library: &CharacterizedLibrary, pi_words: &[u64]) -> Vec<u64> {
        assert_eq!(pi_words.len(), self.pi_count, "primary input word count");
        let mut values = vec![0u64; self.net_count()];
        values[..self.pi_count].copy_from_slice(pi_words);
        for (i, inst) in self.instances.iter().enumerate() {
            let cell = &library.gates[inst.gate];
            let f = cell.gate.function;
            let pin_words: Vec<u64> = inst
                .inputs
                .iter()
                .map(|r| {
                    let w = values[r.net];
                    if r.inverted {
                        !w
                    } else {
                        w
                    }
                })
                .collect();
            values[self.pi_count + i] = eval_tt_words(f, &pin_words);
        }
        values
    }

    /// Reads the primary-output words from a simulated value vector.
    pub fn output_words(&self, values: &[u64]) -> Vec<u64> {
        self.outputs
            .iter()
            .map(|r| {
                let w = values[r.net];
                if r.inverted {
                    !w
                } else {
                    w
                }
            })
            .collect()
    }
}

/// Bitwise word evaluation of a truth table over input words.
pub fn eval_tt_words(f: logic::TruthTable, pins: &[u64]) -> u64 {
    debug_assert_eq!(pins.len(), f.n_vars());
    let mut out = 0u64;
    for m in 0..(1usize << f.n_vars()) {
        if !f.eval_index(m) {
            continue;
        }
        let mut term = u64::MAX;
        for (i, &w) in pins.iter().enumerate() {
            term &= if (m >> i) & 1 == 1 { w } else { !w };
        }
        out |= term;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlib::characterize_library;
    use logic::TruthTable;

    #[test]
    fn eval_tt_words_matches_scalar() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let f = (a & b) | (!a & c);
        // 8 patterns in one word.
        let wa = 0b10101010u64;
        let wb = 0b11001100u64;
        let wc = 0b11110000u64;
        let out = eval_tt_words(f, &[wa, wb, wc]);
        for k in 0..8 {
            let bits = [(wa >> k) & 1 == 1, (wb >> k) & 1 == 1, (wc >> k) & 1 == 1];
            assert_eq!((out >> k) & 1 == 1, f.eval(&bits), "pattern {k}");
        }
    }

    #[test]
    fn hand_built_netlist_simulates() {
        // NAND2 feeding INV = AND2.
        let lib = characterize_library(GateFamily::Cmos);
        let nand_idx = lib
            .gates
            .iter()
            .position(|g| g.gate.name == "NAND2")
            .expect("NAND2");
        let inv_idx = lib
            .gates
            .iter()
            .position(|g| g.gate.name == "INV")
            .expect("INV");
        let netlist = MappedNetlist {
            family: GateFamily::Cmos,
            pi_count: 2,
            instances: vec![
                Instance {
                    gate: nand_idx,
                    inputs: vec![NetRef::plain(0), NetRef::plain(1)],
                },
                Instance {
                    gate: inv_idx,
                    inputs: vec![NetRef::plain(2)],
                },
            ],
            outputs: vec![NetRef::plain(3)],
        };
        let values = netlist.simulate64(&lib, &[0b0101, 0b0011]);
        let out = netlist.output_words(&values);
        assert_eq!(out[0] & 0xF, 0b0001, "AND of the two inputs");
        assert_eq!(netlist.gate_count(), 2);
        assert!(netlist.area(&lib) > 0.0);
        assert_eq!(netlist.transistor_count(&lib), 4 + 2);
    }

    #[test]
    fn inverted_netref_reads_complement_rail() {
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let inv_idx = lib
            .gates
            .iter()
            .position(|g| g.gate.name == "INV")
            .expect("INV");
        let netlist = MappedNetlist {
            family: GateFamily::CntfetGeneralized,
            pi_count: 1,
            instances: vec![Instance {
                gate: inv_idx,
                inputs: vec![NetRef {
                    net: 0,
                    inverted: true,
                }],
            }],
            outputs: vec![NetRef::plain(1)],
        };
        let values = netlist.simulate64(&lib, &[0b01]);
        // INV of inverted input = identity.
        assert_eq!(netlist.output_words(&values)[0] & 0b11, 0b01);
    }
}
