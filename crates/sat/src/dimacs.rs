//! DIMACS CNF parsing — the bridge for replaying exported queries
//! ([`Solver::to_dimacs`]) and for the solver's fixture-based self-tests.

use crate::solver::{Lit, Solver, Var};

/// Error produced when a DIMACS CNF file fails to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimacsError {
    message: String,
    line: usize,
}

impl DimacsError {
    fn new(message: impl Into<String>, line: usize) -> Self {
        Self {
            message: message.into(),
            line,
        }
    }
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at line {}", self.message, self.line)
    }
}

impl std::error::Error for DimacsError {}

/// Parses a DIMACS CNF file into a ready-to-solve [`Solver`].
///
/// Comment lines (`c …`) are skipped; the `p cnf VARS CLAUSES` header
/// sizes the variable pool; every clause must be terminated by `0`.
/// Variables beyond the declared count are rejected.
///
/// # Errors
///
/// Returns [`DimacsError`] for a missing/malformed header, an unterminated
/// clause, or an out-of-range variable.
pub fn parse_dimacs(text: &str) -> Result<Solver, DimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut solver = Solver::new();
    let mut clause: Vec<Lit> = Vec::new();
    let mut open = false;
    let mut last_line = 0;
    for (line_no, line) in text.lines().enumerate() {
        let line_no = line_no + 1;
        last_line = line_no;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            if num_vars.is_some() {
                return Err(DimacsError::new("duplicate header", line_no));
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 || fields[0] != "p" || fields[1] != "cnf" {
                return Err(DimacsError::new("expected `p cnf VARS CLAUSES`", line_no));
            }
            let vars: usize = fields[2]
                .parse()
                .map_err(|_| DimacsError::new("bad variable count", line_no))?;
            let _clauses: usize = fields[3]
                .parse()
                .map_err(|_| DimacsError::new("bad clause count", line_no))?;
            for _ in 0..vars {
                solver.new_var();
            }
            num_vars = Some(vars);
            continue;
        }
        let Some(vars) = num_vars else {
            return Err(DimacsError::new("clause before header", line_no));
        };
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| DimacsError::new(format!("bad literal `{tok}`"), line_no))?;
            if v == 0 {
                solver.add_clause(&clause);
                clause.clear();
                open = false;
            } else {
                let var = v.unsigned_abs() - 1;
                if var >= vars as u64 {
                    return Err(DimacsError::new(
                        format!("variable {} out of range", v.unsigned_abs()),
                        line_no,
                    ));
                }
                clause.push(Lit::new(var as Var, v < 0));
                open = true;
            }
        }
    }
    if open {
        return Err(DimacsError::new("unterminated clause", last_line));
    }
    if num_vars.is_none() {
        return Err(DimacsError::new("missing `p cnf` header", last_line));
    }
    Ok(solver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn parses_with_comments_and_blank_lines() {
        let text = "c a comment\n\np cnf 2 2\n1 -2 0\nc mid comment\n2 0\n";
        let mut s = parse_dimacs(text).expect("parses");
        assert_eq!(s.num_vars(), 2);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(1), Some(true));
        assert_eq!(s.model_value(0), Some(true));
    }

    #[test]
    fn clause_may_span_lines() {
        let text = "p cnf 3 1\n1\n2\n3 0\n";
        let mut s = parse_dimacs(text).expect("parses");
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_dimacs("").is_err());
        assert!(parse_dimacs("1 2 0\n").is_err(), "clause before header");
        assert!(parse_dimacs("p cnf x 1\n").is_err());
        assert!(parse_dimacs("p cnf 2 1\n1 2\n").is_err(), "unterminated");
        assert!(parse_dimacs("p cnf 2 1\n3 0\n").is_err(), "out of range");
        assert!(
            parse_dimacs("p cnf 1 0\np cnf 1 0\n").is_err(),
            "dup header"
        );
    }
}
