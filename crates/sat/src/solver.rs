//! The CDCL core: literals, clauses, watched-literal propagation,
//! first-UIP learning, VSIDS branching, Luby restarts, clause reduction.

/// A propositional variable (0-based).
pub type Var = u32;

/// A literal: a variable with a sign, packed as `var << 1 | negated`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Self {
        Lit(var << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Self {
        Lit(var << 1 | 1)
    }

    /// Builds a literal from a variable and a sign.
    pub fn new(var: Var, negated: bool) -> Self {
        Lit(var << 1 | u32::from(negated))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// Whether the literal is negated.
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index for watch lists (`2 * var + negated`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_negated() {
            write!(f, "-{}", self.var() + 1)
        } else {
            write!(f, "{}", self.var() + 1)
        }
    }
}

/// Outcome of a (completed) solve call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions, if any) has no model.
    Unsat,
}

const NO_REASON: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Clone, Copy)]
struct Watcher {
    clause: u32,
    /// Any other literal of the clause; if it is already true the clause
    /// is satisfied and the watch scan can skip it.
    blocker: Lit,
}

/// Max-heap over variables ordered by VSIDS activity.
#[derive(Default)]
struct VarOrder {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, `usize::MAX` when absent.
    pos: Vec<usize>,
}

impl VarOrder {
    fn grow(&mut self) {
        self.pos.push(usize::MAX);
    }

    fn contains(&self, v: Var) -> bool {
        self.pos[v as usize] != usize::MAX
    }

    fn push(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            self.sift_up(self.pos[v as usize], act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i;
        self.pos[self.heap[j] as usize] = j;
    }
}

/// A CDCL SAT solver over an incrementally growing clause set.
///
/// Clauses may be added between solve calls; learnt clauses persist, so a
/// sequence of [`Solver::solve_assuming`] queries shares work (the
/// SAT-sweeping usage pattern of `aig::check`).
#[derive(Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Indices of learnt clauses (for reduction).
    learnts: Vec<u32>,
    watches: Vec<Vec<Watcher>>,
    /// Assignment per variable: 0 unassigned, 1 true, -1 false.
    assigns: Vec<i8>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Clause that implied each variable (`NO_REASON` for decisions).
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarOrder,
    /// Saved phase per variable for polarity selection.
    phase: Vec<bool>,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// False once an unconditional contradiction was derived.
    ok: bool,
    model: Vec<bool>,
    conflicts: u64,
    /// Units derived/added at level 0 (kept for DIMACS export).
    unit_clauses: Vec<Lit>,
}

impl Solver {
    /// An empty solver (no variables, no clauses).
    pub fn new() -> Self {
        Self {
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            ..Self::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.assigns.len() as Var;
        self.assigns.push(0);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow();
        self.order.push(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of original (problem) clauses, counting level-0 units.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
            + self.unit_clauses.len()
    }

    /// Total conflicts encountered so far (a work measure).
    pub fn conflict_count(&self) -> u64 {
        self.conflicts
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        match self.assigns[l.var() as usize] {
            0 => None,
            a => Some((a > 0) != l.is_negated()),
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause (disjunction of `lits`).
    ///
    /// Returns `false` if the clause set is now known unsatisfiable (an
    /// empty clause, or a level-0 unit contradiction); the solver stays
    /// in that state and every later solve call answers
    /// [`SolveResult::Unsat`].
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        // Normalize: sort/dedupe, drop false literals, detect tautologies
        // and already-satisfied clauses (all with respect to level 0).
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!((l.var() as usize) < self.num_vars(), "unknown variable");
            match self.lit_value(l) {
                Some(true) => return true,
                Some(false) => continue,
                None => c.push(l),
            }
        }
        c.sort_unstable();
        c.dedup();
        if c.windows(2).any(|w| w[0] == !w[1]) {
            return true; // tautology
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unit_clauses.push(c[0]);
                self.unchecked_enqueue(c[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.attach(idx, c[0], c[1]);
                self.clauses.push(Clause {
                    lits: c,
                    learnt: false,
                    deleted: false,
                    activity: 0.0,
                });
                true
            }
        }
    }

    fn attach(&mut self, idx: u32, l0: Lit, l1: Lit) {
        self.watches[(!l0).index()].push(Watcher {
            clause: idx,
            blocker: l1,
        });
        self.watches[(!l1).index()].push(Watcher {
            clause: idx,
            blocker: l0,
        });
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var() as usize;
        debug_assert_eq!(self.assigns[v], 0);
        self.assigns[v] = if l.is_negated() { -1 } else { 1 };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.phase[v] = !l.is_negated();
        self.trail.push(l);
    }

    /// Propagates all enqueued facts; returns the conflicting clause
    /// index on conflict.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let mut i = 0;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == Some(true) {
                    i += 1;
                    continue;
                }
                let cref = w.clause as usize;
                if self.clauses[cref].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Make sure the false literal (!p) is at position 1.
                let false_lit = !p;
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.lit_value(first) == Some(true) {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clauses[cref].lits.len() {
                    let l = self.clauses[cref].lits[k];
                    if self.lit_value(l) != Some(false) {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!l).index()].push(Watcher {
                            clause: w.clause,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // Unit or conflict.
                if self.lit_value(first) == Some(false) {
                    conflict = Some(w.clause);
                    self.qhead = self.trail.len();
                    break;
                }
                self.unchecked_enqueue(first, w.clause);
                i += 1;
            }
            // Merge back any watchers pushed onto the (emptied) list
            // while this scan was enqueueing.
            let pushed = std::mem::replace(&mut self.watches[p.index()], ws);
            self.watches[p.index()].extend(pushed);
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn cancel_until(&mut self, target: u32) {
        while self.decision_level() > target {
            let lim = self.trail_lim.pop().expect("level > 0");
            for &l in &self.trail[lim..] {
                let v = l.var() as usize;
                self.assigns[v] = 0;
                self.reason[v] = NO_REASON;
                self.order.push(l.var(), &self.activity);
            }
            self.trail.truncate(lim);
        }
        self.qhead = self.qhead.min(self.trail.len());
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, idx: u32) {
        let c = &mut self.clauses[idx as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for &li in &self.learnts {
                self.clauses[li as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(0)]; // placeholder
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        let mut cref = confl;
        loop {
            self.bump_clause(cref);
            let start = usize::from(p.is_some());
            for k in start..self.clauses[cref as usize].lits.len() {
                let q = self.clauses[cref as usize].lits[k];
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal of the current level to resolve on.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var() as usize] {
                    break;
                }
            }
            let lit = self.trail[idx];
            self.seen[lit.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            p = Some(lit);
            cref = self.reason[lit.var() as usize];
            debug_assert_ne!(cref, NO_REASON);
        }
        // Backtrack level: highest level among the non-asserting literals.
        let mut bt = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = k;
                }
            }
            learnt.swap(1, max_i);
            bt = self.level[learnt[1].var() as usize];
        }
        for &l in &learnt {
            self.seen[l.var() as usize] = false;
        }
        (learnt, bt)
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        if learnt.len() == 1 {
            self.unchecked_enqueue(learnt[0], NO_REASON);
            return;
        }
        let idx = self.clauses.len() as u32;
        self.attach(idx, learnt[0], learnt[1]);
        let first = learnt[0];
        self.clauses.push(Clause {
            lits: learnt,
            learnt: true,
            deleted: false,
            activity: self.cla_inc,
        });
        self.learnts.push(idx);
        self.unchecked_enqueue(first, idx);
    }

    /// Drops the less active half of the learnt clauses (keeping reasons
    /// and binary clauses). Watch lists are cleaned lazily.
    fn reduce_db(&mut self) {
        let mut cands: Vec<u32> = self
            .learnts
            .iter()
            .copied()
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                !c.deleted && c.lits.len() > 2 && !self.is_reason(i)
            })
            .collect();
        cands.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .total_cmp(&self.clauses[b as usize].activity)
        });
        for &i in &cands[..cands.len() / 2] {
            self.clauses[i as usize].deleted = true;
            self.clauses[i as usize].lits = Vec::new();
        }
        self.learnts.retain(|&i| !self.clauses[i as usize].deleted);
    }

    fn is_reason(&self, idx: u32) -> bool {
        let c = &self.clauses[idx as usize];
        let v = c.lits[0].var() as usize;
        self.assigns[v] != 0 && self.reason[v] == idx
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v as usize] == 0 {
                return Some(Lit::new(v, !self.phase[v as usize]));
            }
        }
        None
    }

    /// Solves the current formula.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_assuming(&[])
    }

    /// Solves under assumptions: the formula plus the given literals as
    /// temporary facts. Learnt clauses persist across calls, so repeated
    /// queries over a growing CNF share work.
    pub fn solve_assuming(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, u64::MAX)
            .expect("unlimited solve always completes")
    }

    /// Like [`Solver::solve_assuming`] but gives up after `max_conflicts`
    /// conflicts, returning `None` (the formula state is unchanged; only
    /// learnt clauses accumulated).
    pub fn solve_limited(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> Option<SolveResult> {
        self.cancel_until(0);
        if !self.ok || self.propagate().is_some() {
            self.ok = false;
            return Some(SolveResult::Unsat);
        }
        let mut budget_used = 0u64;
        let mut restart = 0u64;
        let mut conflicts_since_restart = 0u64;
        let mut restart_budget = 128 * luby(restart);
        let mut max_learnts = (self.clauses.len() as u64 / 3).max(4000);
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                budget_used += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                self.record_learnt(learnt);
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
            } else {
                if budget_used >= max_conflicts {
                    self.cancel_until(0);
                    return None;
                }
                if conflicts_since_restart >= restart_budget {
                    restart += 1;
                    conflicts_since_restart = 0;
                    restart_budget = 128 * luby(restart);
                    self.cancel_until(0);
                    continue;
                }
                if self.learnts.len() as u64 >= max_learnts {
                    self.reduce_db();
                    max_learnts = max_learnts + max_learnts / 2;
                }
                // Apply pending assumptions one decision level at a time.
                if (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        Some(true) => {
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            self.cancel_until(0);
                            return Some(SolveResult::Unsat);
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, NO_REASON);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => {
                        self.model = self.assigns.iter().map(|&a| a > 0).collect();
                        self.cancel_until(0);
                        return Some(SolveResult::Sat);
                    }
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, NO_REASON);
                    }
                }
            }
        }
    }

    /// The value of `var` in the most recent satisfying model, if any
    /// solve call has returned [`SolveResult::Sat`].
    pub fn model_value(&self, var: Var) -> Option<bool> {
        self.model.get(var as usize).copied()
    }

    /// The most recent satisfying model (one bool per variable).
    pub fn model(&self) -> &[bool] {
        &self.model
    }

    /// Exports the original clause set (not learnt clauses) in DIMACS CNF
    /// format — the debugging hook for replaying a query in an external
    /// solver.
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // A derived contradiction exports as an explicit empty clause so
        // the file stays equisatisfiable (the falsified original clause
        // was simplified away when it was added).
        let contradiction = usize::from(!self.ok);
        let _ = writeln!(
            out,
            "p cnf {} {}",
            self.num_vars(),
            self.num_clauses() + contradiction
        );
        if contradiction == 1 {
            let _ = writeln!(out, "0");
        }
        for &u in &self.unit_clauses {
            let _ = writeln!(out, "{u} 0");
        }
        for c in &self.clauses {
            if c.learnt || c.deleted {
                continue;
            }
            for &l in &c.lits {
                let _ = write!(out, "{l} ");
            }
            let _ = writeln!(out, "0");
        }
        out
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …).
fn luby(x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    let mut x = x;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32) -> Lit {
        Lit::new((i.unsigned_abs() - 1) as Var, i < 0)
    }

    /// Solver with `n` fresh variables.
    fn with_vars(n: usize) -> Solver {
        let mut s = Solver::new();
        for _ in 0..n {
            s.new_var();
        }
        s
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = with_vars(1);
        assert!(s.add_clause(&[lit(1)]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(0), Some(true));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = with_vars(1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn contradicting_units_are_unsat() {
        let mut s = with_vars(1);
        assert!(s.add_clause(&[lit(1)]));
        assert!(!s.add_clause(&[lit(-1)]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_and_duplicates_are_harmless() {
        let mut s = with_vars(2);
        assert!(s.add_clause(&[lit(1), lit(-1)]));
        assert!(s.add_clause(&[lit(2), lit(2), lit(2)]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(1), Some(true));
    }

    #[test]
    fn xor_chain_is_sat_with_consistent_model() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x3 ^ x1 = 0.
        let mut s = with_vars(3);
        for (a, b) in [(1, 2), (2, 3)] {
            s.add_clause(&[lit(a), lit(b)]);
            s.add_clause(&[lit(-a), lit(-b)]);
        }
        s.add_clause(&[lit(3), lit(-1)]);
        s.add_clause(&[lit(-3), lit(1)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let m1 = s.model_value(0).unwrap();
        let m2 = s.model_value(1).unwrap();
        let m3 = s.model_value(2).unwrap();
        assert_ne!(m1, m2);
        assert_ne!(m2, m3);
        assert_eq!(m3, m1);
    }

    #[test]
    fn odd_xor_cycle_is_unsat() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x3 ^ x1 = 1 (odd cycle).
        let mut s = with_vars(3);
        for (a, b) in [(1, 2), (2, 3), (3, 1)] {
            s.add_clause(&[lit(a), lit(b)]);
            s.add_clause(&[lit(-a), lit(-b)]);
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_flip_outcomes_and_are_temporary() {
        let mut s = with_vars(2);
        s.add_clause(&[lit(1), lit(2)]);
        assert_eq!(
            s.solve_assuming(&[lit(-1), lit(-2)]),
            SolveResult::Unsat,
            "both false contradicts the clause"
        );
        assert_eq!(s.solve_assuming(&[lit(-1)]), SolveResult::Sat);
        assert_eq!(s.model_value(1), Some(true));
        assert_eq!(s.solve(), SolveResult::Sat, "assumptions do not persist");
    }

    #[test]
    fn conflict_budget_gives_up_cleanly() {
        // PHP-5 is UNSAT but needs search; a one-conflict budget cannot
        // finish, and an unlimited call afterwards still answers.
        let mut s = php(5);
        assert_eq!(s.solve_limited(&[], 1), None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// Pigeonhole principle: n+1 pigeons, n holes.
    fn php(holes: usize) -> Solver {
        let pigeons = holes + 1;
        let mut s = with_vars(pigeons * holes);
        let v = |p: usize, h: usize| Lit::positive((p * holes + h) as Var);
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| v(p, h)).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause(&[!v(p1, h), !v(p2, h)]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_php4_is_unsat() {
        let mut s = php(4);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.conflict_count() > 0, "PHP-4 requires actual search");
    }

    #[test]
    fn pigeonhole_with_a_spare_hole_is_sat() {
        // n+1 pigeons, n+1 holes: drop the "pigeon n in hole n" ban.
        let holes = 5;
        let pigeons = 5;
        let mut s = with_vars(pigeons * holes);
        let v = |p: usize, h: usize| Lit::positive((p * holes + h) as Var);
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| v(p, h)).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause(&[!v(p1, h), !v(p2, h)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        // Model is a valid assignment: one hole per pigeon, no sharing.
        let hole_of: Vec<usize> = (0..pigeons)
            .map(|p| {
                (0..holes)
                    .find(|&h| s.model_value(v(p, h).var()) == Some(true))
                    .expect("every pigeon placed")
            })
            .collect();
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                assert_ne!(hole_of[p1], hole_of[p2]);
            }
        }
    }

    #[test]
    fn dimacs_export_round_trips() {
        let mut s = with_vars(3);
        s.add_clause(&[lit(1), lit(-2)]);
        s.add_clause(&[lit(2), lit(3)]);
        s.add_clause(&[lit(-3)]);
        let text = s.to_dimacs();
        assert!(text.starts_with("p cnf 3 3"));
        let mut re = crate::parse_dimacs(&text).expect("own export parses");
        assert_eq!(s.solve(), re.solve());
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expect.len() as u64).map(luby).collect();
        assert_eq!(got, expect);
    }
}
