//! A self-contained CDCL SAT solver.
//!
//! Built for the combinational-equivalence-checking subsystem: the `aig`
//! crate Tseitin-encodes miters into a [`Solver`] and closes every
//! synthesis/mapping check with an UNSAT proof (or a concrete
//! counterexample model). The solver is deliberately classical —
//! MiniSat-style two-watched-literal propagation, first-UIP clause
//! learning, VSIDS branching with phase saving, Luby restarts, and
//! activity-based learnt-clause reduction — with two additions the CEC
//! workload needs:
//!
//! * **incremental solving under assumptions**
//!   ([`Solver::solve_assuming`]) so one solver instance can answer many
//!   equivalence queries over a growing CNF (the SAT-sweeping pattern);
//! * **conflict budgets** ([`Solver::solve_limited`]) so speculative
//!   equivalence candidates can be abandoned cheaply.
//!
//! For debugging, any solver's original clause set exports as DIMACS
//! ([`Solver::to_dimacs`]) and DIMACS files parse back in
//! ([`parse_dimacs`]).
//!
//! # Example
//!
//! ```
//! use sat::{Lit, SolveResult, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b)  →  a = b = true.
//! s.add_clause(&[Lit::positive(a), Lit::positive(b)]);
//! s.add_clause(&[Lit::negative(a), Lit::positive(b)]);
//! s.add_clause(&[Lit::positive(a), Lit::negative(b)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.model_value(a), Some(true));
//! assert_eq!(s.model_value(b), Some(true));
//! // Adding (¬a ∨ ¬b) makes it unsatisfiable.
//! s.add_clause(&[Lit::negative(a), Lit::negative(b)]);
//! assert_eq!(s.solve(), SolveResult::Unsat);
//! ```

pub mod dimacs;
pub mod solver;

pub use dimacs::{parse_dimacs, DimacsError};
pub use solver::{Lit, SolveResult, Solver, Var};
