//! Property-based self-tests: the solver against brute force, and solver
//! models against the formulas that produced them.

use proptest::prelude::*;
use sat::{Lit, SolveResult, Solver, Var};

/// A random CNF as (variable count, clauses of DIMACS-style literals).
fn cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = (usize, Vec<Vec<i32>>)> {
    (2usize..=max_vars).prop_perturb(move |n, mut rng| {
        let n_clauses = 1 + rng.next_u32() as usize % max_clauses;
        let clauses = (0..n_clauses)
            .map(|_| {
                let len = 1 + rng.next_u32() as usize % 4;
                (0..len)
                    .map(|_| {
                        let v = 1 + (rng.next_u32() as usize % n) as i32;
                        if rng.next_u32() & 1 == 1 {
                            -v
                        } else {
                            v
                        }
                    })
                    .collect()
            })
            .collect();
        (n, clauses)
    })
}

fn build(n: usize, clauses: &[Vec<i32>]) -> Solver {
    let mut s = Solver::new();
    for _ in 0..n {
        s.new_var();
    }
    for c in clauses {
        let lits: Vec<Lit> = c
            .iter()
            .map(|&v| Lit::new((v.unsigned_abs() - 1) as Var, v < 0))
            .collect();
        s.add_clause(&lits);
    }
    s
}

fn clause_satisfied(clause: &[i32], model: impl Fn(usize) -> bool) -> bool {
    clause
        .iter()
        .any(|&v| model(v.unsigned_abs() as usize - 1) != (v < 0))
}

/// Exhaustive satisfiability for small variable counts.
fn brute_force_sat(n: usize, clauses: &[Vec<i32>]) -> bool {
    (0u64..1 << n).any(|bits| {
        clauses
            .iter()
            .all(|c| clause_satisfied(c, |v| (bits >> v) & 1 == 1))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn models_satisfy_the_formula((n, clauses) in cnf(12, 40)) {
        let mut s = build(n, &clauses);
        if s.solve() == SolveResult::Sat {
            for c in &clauses {
                prop_assert!(
                    clause_satisfied(c, |v| s.model_value(v as Var) == Some(true)),
                    "model violates clause {c:?}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_brute_force((n, clauses) in cnf(10, 30)) {
        let mut s = build(n, &clauses);
        let expected = if brute_force_sat(n, &clauses) {
            SolveResult::Sat
        } else {
            SolveResult::Unsat
        };
        prop_assert_eq!(s.solve(), expected);
    }

    #[test]
    fn incremental_assumptions_agree_with_rebuilt_solver((n, clauses) in cnf(8, 20)) {
        // Query the same formula under each single-literal assumption,
        // incrementally; every answer must match a from-scratch solve of
        // the formula plus that unit.
        let mut s = build(n, &clauses);
        for v in 0..n {
            for neg in [false, true] {
                let a = Lit::new(v as Var, neg);
                let incremental = s.solve_assuming(&[a]);
                let mut clauses_with_unit = clauses.clone();
                clauses_with_unit.push(vec![if neg { -(v as i32 + 1) } else { v as i32 + 1 }]);
                let expected = if brute_force_sat(n, &clauses_with_unit) {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                };
                prop_assert_eq!(incremental, expected, "assumption {}", a);
            }
        }
    }

    #[test]
    fn dimacs_round_trip_preserves_satisfiability((n, clauses) in cnf(10, 30)) {
        let mut s = build(n, &clauses);
        let mut reparsed = sat::parse_dimacs(&s.to_dimacs()).expect("own export parses");
        prop_assert_eq!(s.solve(), reparsed.solve());
    }
}

#[test]
fn known_unsat_dimacs_fixture() {
    // R(3,3) lower-bound style fixture: complete graph K6 two-colored
    // without monochromatic triangles is impossible. Variables = edges.
    let mut edges = std::collections::HashMap::new();
    let mut next = 0i32;
    for i in 0..6u32 {
        for j in i + 1..6 {
            next += 1;
            edges.insert((i, j), next);
        }
    }
    let mut text = format!("c K6 triangle-free 2-coloring\np cnf {next} 40\n");
    for i in 0..6u32 {
        for j in i + 1..6 {
            for k in j + 1..6 {
                let (a, b, c) = (edges[&(i, j)], edges[&(j, k)], edges[&(i, k)]);
                text.push_str(&format!("{a} {b} {c} 0\n"));
                text.push_str(&format!("{} {} {} 0\n", -a, -b, -c));
            }
        }
    }
    let mut s = sat::parse_dimacs(&text).expect("fixture parses");
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn known_sat_dimacs_fixture() {
    // Same construction on K5 is satisfiable (C5 + its complement).
    let mut edges = std::collections::HashMap::new();
    let mut next = 0i32;
    for i in 0..5u32 {
        for j in i + 1..5 {
            next += 1;
            edges.insert((i, j), next);
        }
    }
    let mut text = format!("p cnf {next} 20\n");
    let mut clauses: Vec<Vec<i32>> = Vec::new();
    for i in 0..5u32 {
        for j in i + 1..5 {
            for k in j + 1..5 {
                let (a, b, c) = (edges[&(i, j)], edges[&(j, k)], edges[&(i, k)]);
                clauses.push(vec![a, b, c]);
                clauses.push(vec![-a, -b, -c]);
            }
        }
    }
    for c in &clauses {
        text.push_str(&format!("{} {} {} 0\n", c[0], c[1], c[2]));
    }
    let mut s = sat::parse_dimacs(&text).expect("fixture parses");
    assert_eq!(s.solve(), SolveResult::Sat);
    for c in &clauses {
        assert!(
            c.iter()
                .any(|&v| s.model_value(v.unsigned_abs() - 1) == Some(v > 0)),
            "model violates {c:?}"
        );
    }
}
