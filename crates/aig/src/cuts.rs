//! K-feasible priority-cut enumeration with cut truth tables.
//!
//! Both the technology mapper (k = 6) and the refactoring pass (k = 4)
//! enumerate cuts with this module. Each cut carries the function of the
//! node's positive output over the cut leaves.
//!
//! [`CutDb`] is the persistent form: a flat cut arena keyed to one
//! network, filled level-by-level by [`CutDb::ensure`] and carried
//! *across* optimization passes by [`CutDb::retarget`], which translates
//! the cut sets of structurally unchanged cones through a pass's
//! old-node → new-literal map and invalidates only the dirty remainder.
//! Pass 2..n of a multi-pass flow therefore recomputes cuts for a small
//! fraction of the network instead of all of it; the reuse is counted in
//! [`crate::profile`].
//!
//! [`enumerate_cuts_choice`] is the choice-aware variant: cuts of a
//! class representative may be rooted in any ring member's cone, so the
//! mapper sees every accumulated structure of the function.

use crate::choice::ChoiceAig;
use crate::graph::{Aig, Lit, Node};
use crate::profile;
use logic::TruthTable;
use rayon::prelude::*;

/// A cut: sorted leaf nodes plus the root function over them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cut {
    /// Sorted node indices of the leaves.
    pub leaves: Vec<u32>,
    /// Function of the root's positive output over the leaves (variable
    /// `i` = leaf `i`).
    pub tt: TruthTable,
}

impl Cut {
    /// The trivial cut of a node: the node itself.
    pub fn trivial(node: u32) -> Self {
        Cut {
            leaves: vec![node],
            tt: TruthTable::var(1, 0),
        }
    }

    /// Whether this is the trivial self-cut of `root` (the cut every AND
    /// node carries in addition to its merged cuts). Both the technology
    /// mapper and the rewriting engine skip it — a node cannot cover or
    /// rewrite itself.
    pub fn is_trivial(&self, root: u32) -> bool {
        self.leaves.len() == 1 && self.leaves[0] == root
    }

    /// The cut function restricted to its true support: the
    /// support-shrunk truth table plus, per remaining variable, the leaf
    /// *node* it reads. This is the one shared derivation both consumers
    /// of cut enumeration build on — the mapper matches the shrunk
    /// function against library cells and wires cell pins to the
    /// returned leaves; the rewriting engine NPN-canonizes it and wires
    /// the class subgraph to the same leaves.
    pub fn function_over_support(&self) -> (TruthTable, Vec<u32>) {
        let (tt, kept) = self.tt.shrink_to_support();
        let leaves = kept.iter().map(|&k| self.leaves[k]).collect();
        (tt, leaves)
    }

    /// Whether this cut's leaves are a subset of another's (dominance).
    pub fn dominates(&self, other: &Cut) -> bool {
        self.leaves.len() <= other.leaves.len()
            && self
                .leaves
                .iter()
                .all(|l| other.leaves.binary_search(l).is_ok())
    }
}

/// Cut enumeration parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutConfig {
    /// Maximum leaves per cut (≤ 6).
    pub k: usize,
    /// Maximum stored cuts per node (priority cap; the trivial cut is
    /// always kept in addition).
    pub max_cuts: usize,
}

impl Default for CutConfig {
    fn default() -> Self {
        Self { k: 6, max_cuts: 8 }
    }
}

/// Minimum AND nodes on one level before the level is even considered
/// for fan-out across worker threads.
const PAR_LEVEL_THRESHOLD: usize = 16;

/// Width-aware parallel dispatch floor: a level narrower than ~4 tasks
/// per worker loses more to dispatch overhead than it gains, so such
/// levels stay serial regardless of the static threshold.
fn par_level_floor() -> usize {
    PAR_LEVEL_THRESHOLD.max(4 * rayon::current_num_threads())
}

/// Read access to per-node cut sets. Implemented by the plain
/// `Vec<Vec<Cut>>` layout [`enumerate_cuts`] returns and by [`CutDb`],
/// so downstream consumers (the technology mapper's selection phase)
/// accept either source.
pub trait CutSource: Sync {
    /// The stored cuts of `node` (empty for the constant, for nodes
    /// without computed cuts, and for out-of-range indices).
    fn cuts_of(&self, node: u32) -> &[Cut];
}

impl CutSource for [Vec<Cut>] {
    fn cuts_of(&self, node: u32) -> &[Cut] {
        self.get(node as usize).map_or(&[], Vec::as_slice)
    }
}

impl CutSource for Vec<Vec<Cut>> {
    fn cuts_of(&self, node: u32) -> &[Cut] {
        self.as_slice().cuts_of(node)
    }
}

impl CutSource for CutDb {
    fn cuts_of(&self, node: u32) -> &[Cut] {
        self.cuts(node)
    }
}

/// Enumerates cuts for every node. Index = node index; constant and input
/// nodes get only their trivial cut (inputs) or nothing (constant).
///
/// This is the one-shot convenience wrapper around [`CutDb`]: it fills a
/// fresh database and unpacks it into the per-node vector layout. Flows
/// that run several passes over the same network should hold a [`CutDb`]
/// instead and let [`CutDb::retarget`] carry cuts across passes.
pub fn enumerate_cuts(aig: &Aig, config: CutConfig) -> Vec<Vec<Cut>> {
    let mut db = CutDb::new(config);
    db.ensure(aig);
    db.into_per_node()
}

/// A persistent, incrementally maintained cut database.
///
/// The cuts live in one flat arena (`store`) with a `(start, end)` span
/// per node — the serial fill path appends pruned cuts straight into the
/// arena, so no per-node `Vec` allocation survives ([`enumerate_cuts`]
/// only pays for the per-node layout when explicitly unpacking).
///
/// Lifecycle: [`CutDb::ensure`] computes the cut sets of every node that
/// has none, one topological level at a time (wide levels fan out over
/// the worker pool, committed serially in node order — bit-identical to
/// the serial walk at any thread count). After a pass transforms the
/// network, [`CutDb::retarget`] re-keys the database to the new network:
/// cones the pass left structurally intact (same AND shape over the
/// translated fanins, same operand order, clean all the way down) keep
/// their cuts — leaves renamed through the map, truth tables permuted to
/// the re-sorted leaf order — while every other node is marked dirty and
/// recomputed by the next `ensure`. [`CutDb::reset`] drops everything
/// (used after passes that cannot produce a node map).
#[derive(Clone, Debug)]
pub struct CutDb {
    config: CutConfig,
    /// Flat cut arena; a node's cuts are `store[span[n].0..span[n].1]`.
    store: Vec<Cut>,
    /// Per-node spans into `store`; `None` = dirty (not computed).
    span: Vec<Option<(u32, u32)>>,
    /// Cut sets served from the database without recompute.
    reused: u64,
    /// Cut sets enumerated from fanin cut sets.
    computed: u64,
}

impl CutDb {
    /// Creates an empty database for the given enumeration parameters.
    pub fn new(config: CutConfig) -> Self {
        assert!(config.k >= 2 && config.k <= 6, "cut width must be in 2..=6");
        Self {
            config,
            store: Vec::new(),
            span: Vec::new(),
            reused: 0,
            computed: 0,
        }
    }

    /// The enumeration parameters this database was built with.
    pub fn config(&self) -> CutConfig {
        self.config
    }

    /// The stored cuts of `node` (empty while the node is dirty).
    pub fn cuts(&self, node: u32) -> &[Cut] {
        match self.span.get(node as usize).copied().flatten() {
            Some((s, e)) => &self.store[s as usize..e as usize],
            None => &[],
        }
    }

    /// Whether `node` has a computed (non-dirty) cut set.
    pub fn is_valid(&self, node: u32) -> bool {
        self.span
            .get(node as usize)
            .is_some_and(|span| span.is_some())
    }

    /// Cut sets served without recompute so far (monotone).
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Cut sets enumerated so far (monotone).
    pub fn computed(&self) -> u64 {
        self.computed
    }

    /// Drops every stored cut; the next [`CutDb::ensure`] recomputes
    /// from scratch. Used after a pass that cannot report a node map.
    pub fn reset(&mut self) {
        self.store.clear();
        self.span.clear();
    }

    /// Computes the cut sets of every dirty node of `aig`, level by
    /// level. The database must be keyed to `aig` (freshly created,
    /// [`CutDb::reset`], or [`CutDb::retarget`]ed through the map of the
    /// pass that produced `aig`); a node-count mismatch falls back to a
    /// full recompute.
    pub fn ensure(&mut self, aig: &Aig) {
        if self.span.len() != aig.len() {
            self.reset();
            self.span.resize(aig.len(), None);
        }
        if self.span[0].is_none() {
            self.span[0] = Some((0, 0));
        }
        for &i in aig.input_nodes() {
            if self.span[i as usize].is_none() {
                let s = self.store.len() as u32;
                self.store.push(Cut::trivial(i));
                self.span[i as usize] = Some((s, s + 1));
            }
        }
        let parallel = rayon::current_num_threads() > 1;
        let floor = par_level_floor();
        let mut scratch: Vec<Cut> = Vec::new();
        let (mut reused, mut computed) = (0u64, 0u64);
        for level in aig.and_level_groups() {
            let dirty: Vec<u32> = level
                .iter()
                .copied()
                .filter(|&i| self.span[i as usize].is_none())
                .collect();
            reused += (level.len() - dirty.len()) as u64;
            computed += dirty.len() as u64;
            if dirty.is_empty() {
                continue;
            }
            if parallel && dirty.len() >= floor {
                profile::add_par_tasks(dirty.len() as u64);
                let done: Vec<Vec<Cut>> = {
                    let db: &CutDb = &*self;
                    dirty
                        .par_iter()
                        .map(|&idx| {
                            let mut local: Vec<Cut> = Vec::new();
                            node_cuts(aig, idx, db, db.config, &mut local)
                        })
                        .collect()
                };
                for (&idx, cuts) in dirty.iter().zip(done) {
                    let s = self.store.len() as u32;
                    self.store.extend(cuts);
                    self.span[idx as usize] = Some((s, self.store.len() as u32));
                }
            } else {
                for &idx in &dirty {
                    let Node::And(a, b) = aig.node(idx) else {
                        unreachable!("only AND nodes are grouped by level");
                    };
                    scratch.clear();
                    merge_fanin_cuts(a, b, self, self.config, &mut scratch);
                    prune(&mut scratch, self.config.max_cuts);
                    let s = self.store.len() as u32;
                    self.store.append(&mut scratch);
                    self.store.push(Cut::trivial(idx));
                    self.span[idx as usize] = Some((s, self.store.len() as u32));
                }
            }
        }
        self.reused += reused;
        self.computed += computed;
        profile::add_cuts_reused(reused);
        profile::add_cuts_computed(computed);
    }

    /// Re-keys the database from `old` to `new` through a pass's
    /// old-node → new-literal map (`None` = the pass dropped the node).
    ///
    /// A node is *clean* when its new counterpart is the same AND over
    /// the translated fanin literals — positive mapping, operand order
    /// preserved by the renaming — and both fanin cones are recursively
    /// clean. For a clean node, elementwise translation of its stored
    /// cuts (rename leaves, re-sort, permute the truth table) is
    /// *identical* to from-scratch enumeration on `new`: the fanin cut
    /// sets agree in content and order by induction, merge order and the
    /// priority prune are invariant under the injective leaf renaming
    /// (the length sort is stable), and the edge complements are
    /// unchanged. Everything else is marked dirty for the next
    /// [`CutDb::ensure`]. An operand-order swap is treated as dirty
    /// because it transposes the merge-pair enumeration, which can
    /// change which cuts survive the prune.
    pub fn retarget(&mut self, old: &Aig, new: &Aig, map: &[Option<Lit>]) {
        if self.span.len() != old.len() || map.len() != old.len() {
            // Not keyed to `old`: drop everything and key to `new`.
            self.reset();
            self.span.resize(new.len(), None);
            return;
        }
        let mut store: Vec<Cut> = Vec::new();
        let mut span: Vec<Option<(u32, u32)>> = vec![None; new.len()];
        span[0] = Some((0, 0));
        for &i in new.input_nodes() {
            let s = store.len() as u32;
            store.push(Cut::trivial(i));
            span[i as usize] = Some((s, s + 1));
        }
        let mut clean = vec![false; old.len()];
        clean[0] = map[0] == Some(Lit::FALSE);
        for (ord, &i) in old.input_nodes().iter().enumerate() {
            clean[i as usize] = match map[i as usize] {
                Some(l) if !l.is_complement() => new.input_nodes().get(ord) == Some(&l.node()),
                _ => false,
            };
        }
        'nodes: for idx in 0..old.len() {
            let Node::And(a, b) = old.node(idx as u32) else {
                continue;
            };
            let Some(l) = map[idx] else { continue };
            if l.is_complement() {
                continue;
            }
            if !clean[a.node() as usize] || !clean[b.node() as usize] {
                continue;
            }
            let (Some(la), Some(lb)) = (map[a.node() as usize], map[b.node() as usize]) else {
                continue;
            };
            let ta = if a.is_complement() { la.not() } else { la };
            let tb = if b.is_complement() { lb.not() } else { lb };
            if ta.0 > tb.0 {
                // The renaming swapped the operand order.
                continue;
            }
            if new.node(l.node()) != Node::And(ta, tb) {
                continue;
            }
            clean[idx] = true;
            let Some((s, e)) = self.span[idx] else {
                continue;
            };
            let nidx = l.node() as usize;
            if span[nidx].is_some() {
                continue;
            }
            let start = store.len();
            for cut in &self.store[s as usize..e as usize] {
                match translate_cut(cut, map) {
                    Some(c) => store.push(c),
                    None => {
                        // Defensive: a clean cone's cut leaves are always
                        // mapped positively, but never translate halfway.
                        store.truncate(start);
                        continue 'nodes;
                    }
                }
            }
            span[nidx] = Some((start as u32, store.len() as u32));
        }
        self.store = store;
        self.span = span;
    }

    /// Unpacks into the per-node vector layout (cloning the cuts of
    /// valid nodes; dirty nodes come out empty).
    pub fn into_per_node(self) -> Vec<Vec<Cut>> {
        (0..self.span.len())
            .map(|i| self.cuts(i as u32).to_vec())
            .collect()
    }
}

/// Translates one cut through an old-node → new-literal map: leaves are
/// renamed (must map to positive literals, injectively), re-sorted, and
/// the truth table permuted to the new leaf order. `None` when any leaf
/// is dropped, complemented, or collides after renaming.
fn translate_cut(cut: &Cut, map: &[Option<Lit>]) -> Option<Cut> {
    let k = cut.leaves.len();
    debug_assert!(k <= 6);
    let mut renamed = [(0u32, 0usize); 6];
    for (i, &leaf) in cut.leaves.iter().enumerate() {
        let l = (*map.get(leaf as usize)?)?;
        if l.is_complement() {
            return None;
        }
        renamed[i] = (l.node(), i);
    }
    let renamed = &mut renamed[..k];
    renamed.sort_unstable();
    if renamed.windows(2).any(|w| w[0].0 == w[1].0) {
        return None;
    }
    let leaves: Vec<u32> = renamed.iter().map(|&(n, _)| n).collect();
    let identity = renamed.iter().enumerate().all(|(pos, &(_, i))| pos == i);
    let tt = if identity {
        cut.tt
    } else {
        let perm: Vec<usize> = renamed.iter().map(|&(_, i)| i).collect();
        cut.tt.permute(&perm)
    };
    Some(Cut { leaves, tt })
}

/// The stored cut set of one AND node as an owned vector: fanin cut sets
/// merged into `scratch` (cleared, capacity reused), pruned in place,
/// plus the trivial cut. Used by the parallel fill path, which needs an
/// owned result per task; the serial path appends into the database's
/// flat arena directly.
fn node_cuts<S: CutSource + ?Sized>(
    aig: &Aig,
    idx: u32,
    all: &S,
    config: CutConfig,
    scratch: &mut Vec<Cut>,
) -> Vec<Cut> {
    let Node::And(a, b) = aig.node(idx) else {
        unreachable!("only AND nodes are grouped by level");
    };
    scratch.clear();
    merge_fanin_cuts(a, b, all, config, scratch);
    prune(scratch, config.max_cuts);
    let mut kept = Vec::with_capacity(scratch.len() + 1);
    kept.append(scratch);
    kept.push(Cut::trivial(idx));
    kept
}

/// Enumerates cuts over a choice network: one cut set per equivalence
/// class (indexed by the class representative's arena node), where a
/// class's cuts are the merged union over *every* alternative
/// decomposition in its choice ring — a cut of the representative may
/// therefore be rooted in a structure only a losing flow pass produced.
///
/// Cut truth tables always describe the representative's positive
/// output: a ring member stored with inverted phase contributes its cuts
/// complemented. Leaves are class representatives (or primary inputs),
/// so cuts compose across classes exactly as plain cuts compose across
/// nodes. Classes are processed in [`ChoiceAig::class_order`], which
/// guarantees every leaf class is enumerated before its consumers; arena
/// nodes outside that order (unreachable classes, unlinked members) get
/// empty cut sets.
pub fn enumerate_cuts_choice(choice: &ChoiceAig, config: CutConfig) -> Vec<Vec<Cut>> {
    assert!(config.k >= 2 && config.k <= 6, "cut width must be in 2..=6");
    let arena = choice.arena();
    let mut all: Vec<Vec<Cut>> = vec![Vec::new(); arena.len()];
    for &i in arena.input_nodes() {
        all[i as usize] = vec![Cut::trivial(i)];
    }
    for &rep in choice.class_order() {
        let mut acc: Vec<Cut> = Vec::new();
        for (member, phase) in choice.alternatives(rep) {
            let Node::And(a, b) = arena.node(member) else {
                unreachable!("alternatives are AND nodes");
            };
            let mut mine = Vec::new();
            merge_fanin_cuts(a, b, all.as_slice(), config, &mut mine);
            for mut cut in mine {
                if phase {
                    cut.tt = !cut.tt;
                }
                if !acc.contains(&cut) {
                    acc.push(cut);
                }
            }
        }
        prune(&mut acc, config.max_cuts);
        acc.push(Cut::trivial(rep));
        all[rep as usize] = acc;
    }
    all
}

/// Merges the fanin cut sets of an AND node. Rejected merges (leaf union
/// over `k`, duplicate of an already-merged cut) never allocate: the
/// union is built on the stack and compared against the accumulator
/// before an owned cut is materialized.
fn merge_fanin_cuts<S: CutSource + ?Sized>(
    a: Lit,
    b: Lit,
    all: &S,
    config: CutConfig,
    out: &mut Vec<Cut>,
) {
    let ca = all.cuts_of(a.node());
    let cb = all.cuts_of(b.node());
    for cut_a in ca {
        for cut_b in cb {
            let Some((union, n)) = merge_leaves(cut_a, cut_b, config.k) else {
                continue;
            };
            let leaves = &union[..n];
            let ta = expand(cut_a.tt, &cut_a.leaves, leaves);
            let tb = expand(cut_b.tt, &cut_b.leaves, leaves);
            let fa = if a.is_complement() { !ta } else { ta };
            let fb = if b.is_complement() { !tb } else { tb };
            let tt = fa & fb;
            if !out.iter().any(|c| c.tt == tt && c.leaves == leaves) {
                out.push(Cut {
                    leaves: leaves.to_vec(),
                    tt,
                });
            }
        }
    }
}

/// Union of two sorted leaf lists on the stack, or `None` if it exceeds
/// `k` leaves.
fn merge_leaves(cut_a: &Cut, cut_b: &Cut, k: usize) -> Option<([u32; 6], usize)> {
    debug_assert!(k <= 6);
    let la = &cut_a.leaves;
    let lb = &cut_b.leaves;
    let mut union = [0u32; 6];
    let mut n = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < la.len() || j < lb.len() {
        let next = match (la.get(i), lb.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        if n == k {
            return None;
        }
        union[n] = next;
        n += 1;
    }
    Some((union, n))
}

/// Re-expresses `tt` (over the sorted `from` leaves) over the sorted
/// `to` leaf superset, entirely with word-level bit operations: each
/// `to` position missing from `from` inserts a don't-care variable by
/// duplicating the truth-table blocks below it.
fn expand(tt: TruthTable, from: &[u32], to: &[u32]) -> TruthTable {
    let n = to.len();
    if from.len() == n {
        debug_assert_eq!(from, to);
        return tt;
    }
    let mut bits = tt.bits();
    let mut cur = from.len();
    let mut fi = 0;
    for (j, &leaf) in to.iter().enumerate() {
        if fi < from.len() && from[fi] == leaf {
            fi += 1;
            continue;
        }
        bits = insert_var(bits, cur, j);
        cur += 1;
    }
    debug_assert_eq!(fi, from.len(), "every source leaf is in the merged set");
    debug_assert_eq!(cur, n);
    TruthTable::from_bits(n, bits)
}

/// Inserts a don't-care variable at position `at` into a function over
/// `vars` variables: every block of `2^at` bits is duplicated.
fn insert_var(bits: u64, vars: usize, at: usize) -> u64 {
    debug_assert!(at <= vars && vars < 6);
    let block = 1usize << at;
    let total = 1usize << vars;
    let mask = if block == 64 { !0 } else { (1u64 << block) - 1 };
    let mut out = 0u64;
    let mut src = 0usize;
    let mut dst = 0usize;
    while src < total {
        let chunk = (bits >> src) & mask;
        out |= chunk << dst;
        out |= chunk << (dst + block);
        src += block;
        dst += 2 * block;
    }
    out
}

/// Keeps at most `max` cuts in place, preferring small leaf counts and
/// dropping dominated cuts; kept cuts stay in (stable) sorted order and
/// the vector's capacity is retained for reuse.
fn prune(cuts: &mut Vec<Cut>, max: usize) {
    cuts.sort_by_key(|c| c.leaves.len());
    let mut kept = 0usize;
    let mut i = 0usize;
    while i < cuts.len() && kept < max {
        let (head, tail) = cuts.split_at(kept);
        let dominated = head.iter().any(|k| k.dominates(&tail[i - kept]));
        if !dominated {
            cuts.swap(kept, i);
            kept += 1;
        }
        i += 1;
    }
    cuts.truncate(kept);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_functions_match_simulation() {
        // f = (a & b) ^ c: check every non-trivial cut's truth table by
        // evaluating the AIG directly.
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let ab = aig.and(a, b);
        let f = aig.xor(ab, c);
        aig.output(f);
        let cuts = enumerate_cuts(&aig, CutConfig { k: 4, max_cuts: 8 });
        let root = f.node() as usize;
        assert!(!cuts[root].is_empty());
        for cut in &cuts[root] {
            for m in 0..(1usize << cut.leaves.len()) {
                // Build a full input assignment consistent with leaf values.
                // Leaves here are always PIs or internal nodes; we only
                // check cuts whose leaves are all PIs.
                if !cut
                    .leaves
                    .iter()
                    .all(|&l| matches!(aig.node(l), crate::graph::Node::Input(_)))
                {
                    continue;
                }
                let mut inputs = vec![false; 3];
                for (i, &leaf) in cut.leaves.iter().enumerate() {
                    if let crate::graph::Node::Input(k) = aig.node(leaf) {
                        inputs[k as usize] = (m >> i) & 1 == 1;
                    }
                }
                // The cut's tt describes the node's *positive* output; the
                // registered output literal may be complemented.
                let expected = crate::sim::evaluate(&aig, &inputs)[0] ^ f.is_complement();
                // Only full-support cuts determine the output uniquely.
                if cut.leaves.len() == 3 {
                    assert_eq!(
                        cut.tt.eval_index(m),
                        expected,
                        "cut {:?} minterm {m}",
                        cut.leaves
                    );
                }
            }
        }
    }

    #[test]
    fn finds_the_global_cut() {
        // A 4-input function must have a cut whose leaves are the 4 PIs.
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..4).map(|_| aig.input()).collect();
        let l = aig.and(xs[0], xs[1]);
        let r = aig.and(xs[2], xs[3]);
        let f = aig.or(l, r);
        aig.output(f);
        let cuts = enumerate_cuts(&aig, CutConfig { k: 4, max_cuts: 8 });
        let root_cuts = &cuts[f.node() as usize];
        let pi_nodes: Vec<u32> = aig.input_nodes().to_vec();
        let global = root_cuts
            .iter()
            .find(|c| c.leaves == pi_nodes)
            .expect("global cut should exist");
        // f = (x0&x1) | (x2&x3); `or` returns a complemented literal, so
        // the node's positive function is the complement.
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 2);
        let d = TruthTable::var(4, 3);
        let expected = (a & b) | (c & d);
        let node_fn = if f.is_complement() {
            !expected
        } else {
            expected
        };
        assert_eq!(global.tt, node_fn);
    }

    #[test]
    fn respects_k_limit() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..8).map(|_| aig.input()).collect();
        let f = aig.and_many(&xs);
        aig.output(f);
        let cuts = enumerate_cuts(&aig, CutConfig { k: 4, max_cuts: 8 });
        for node_cuts in &cuts {
            for cut in node_cuts {
                assert!(cut.leaves.len() <= 4);
            }
        }
    }

    #[test]
    fn trivial_cut_detection_and_support_projection() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let f = aig.and(a, b);
        aig.output(f);
        let cuts = enumerate_cuts(&aig, CutConfig::default());
        let root = f.node();
        let trivial = cuts[root as usize]
            .iter()
            .find(|c| c.is_trivial(root))
            .expect("every AND node keeps its trivial cut");
        assert_eq!(trivial.leaves, vec![root]);
        let full = cuts[root as usize]
            .iter()
            .find(|c| c.leaves.len() == 2)
            .expect("2-leaf cut");
        let (tt, leaves) = full.function_over_support();
        assert_eq!(tt.n_vars(), 2);
        assert_eq!(leaves, vec![a.node(), b.node()]);
    }

    #[test]
    fn function_over_support_drops_irrelevant_leaves() {
        // A cut whose function ignores one leaf must project it away.
        let cut = Cut {
            leaves: vec![3, 5, 9],
            tt: TruthTable::var(3, 0) & TruthTable::var(3, 2),
        };
        let (tt, leaves) = cut.function_over_support();
        assert_eq!(tt.n_vars(), 2);
        assert_eq!(leaves, vec![3, 9]);
        assert_eq!(tt, TruthTable::var(2, 0) & TruthTable::var(2, 1));
    }

    #[test]
    fn bitwise_expand_matches_pointwise_evaluation() {
        // expand() must behave exactly like re-evaluating the function
        // with the source leaves wired to their positions in the target.
        let from = [3u32, 7, 12];
        let to = [1u32, 3, 7, 9, 12];
        for seed in [0u64, 0xAC, 0b1010_1010, 0xDEAD_BEEF, 0xFF] {
            let tt = TruthTable::from_bits(from.len(), seed);
            let got = expand(tt, &from, &to);
            let positions: Vec<usize> = from
                .iter()
                .map(|l| to.binary_search(l).expect("from ⊆ to"))
                .collect();
            let want = TruthTable::from_fn(to.len(), |assignment| {
                let local: Vec<bool> = positions.iter().map(|&p| assignment[p]).collect();
                tt.eval(&local)
            });
            assert_eq!(got, want, "seed {seed:#x}");
        }
    }

    #[test]
    fn choice_cuts_cover_both_structures() {
        // f = a ^ b built two ways across two snapshots: the class of f
        // must carry cuts whose functions agree with XOR over the PI
        // leaves, merged from either member's cone.
        let build = |mux_form: bool| {
            let mut aig = Aig::new();
            let a = aig.input();
            let b = aig.input();
            let f = if mux_form {
                aig.mux(a, b.not(), b)
            } else {
                aig.xor(a, b)
            };
            let g = aig.and(f, a);
            aig.output(f);
            aig.output(g);
            aig
        };
        let choice =
            crate::choice::ChoiceAig::build(&[build(false), build(true)]).expect("same interface");
        let cuts = enumerate_cuts_choice(&choice, CutConfig { k: 4, max_cuts: 8 });
        // Every class in order got cuts; leaves are inputs or classes in
        // earlier positions; the trivial cut is present.
        let position: std::collections::HashMap<u32, usize> = choice
            .class_order()
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        for (i, &rep) in choice.class_order().iter().enumerate() {
            let class_cuts = &cuts[rep as usize];
            assert!(class_cuts.iter().any(|c| c.is_trivial(rep)));
            assert!(
                class_cuts.iter().any(|c| !c.is_trivial(rep)),
                "class {rep} needs a non-trivial cut"
            );
            for cut in class_cuts {
                if cut.is_trivial(rep) {
                    continue;
                }
                for &leaf in &cut.leaves {
                    match choice.arena().node(leaf) {
                        crate::graph::Node::Input(_) => {}
                        crate::graph::Node::And(_, _) => {
                            assert!(position[&leaf] < i, "leaf {leaf} must precede class {rep}")
                        }
                        crate::graph::Node::Const => panic!("constant cannot be a cut leaf"),
                    }
                }
            }
        }
        // The output class of f has a 2-leaf PI cut computing XOR (up to
        // the output literal's phase).
        let f_lit = choice.outputs()[0];
        let f_cuts = &cuts[f_lit.node() as usize];
        let pi: Vec<u32> = choice.arena().input_nodes().to_vec();
        let xor = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
        let found = f_cuts
            .iter()
            .any(|c| c.leaves == pi && (c.tt == xor || c.tt == !xor));
        assert!(found, "the XOR cut over the PIs must exist: {f_cuts:?}");
    }

    #[test]
    fn dominance_pruning() {
        let a = Cut {
            leaves: vec![1, 2],
            tt: TruthTable::var(2, 0),
        };
        let b = Cut {
            leaves: vec![1, 2, 3],
            tt: TruthTable::var(3, 0),
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn complemented_edges_fold_into_cut_tt() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let f = aig.and(a.not(), b);
        aig.output(f);
        let cuts = enumerate_cuts(&aig, CutConfig::default());
        let root = &cuts[f.node() as usize];
        let pi_cut = root
            .iter()
            .find(|c| c.leaves.len() == 2)
            .expect("2-leaf cut");
        let ta = TruthTable::var(2, 0);
        let tb = TruthTable::var(2, 1);
        assert_eq!(pi_cut.tt, !ta & tb);
    }

    /// A small but non-trivial network with sharing, complemented edges
    /// and XOR cones.
    fn sample_network() -> Aig {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..6).map(|_| aig.input()).collect();
        let s = aig.and(xs[0], xs[1]);
        let t = aig.xor(s, xs[2]);
        let u = aig.mux(xs[3], t, s.not());
        let v = aig.or(u, xs[4]);
        let w = aig.and(v, xs[5].not());
        let z = aig.xor(w, t);
        aig.output(w);
        aig.output(z);
        aig
    }

    #[test]
    fn cutdb_matches_one_shot_enumeration() {
        let aig = sample_network();
        let config = CutConfig { k: 4, max_cuts: 6 };
        let mut db = CutDb::new(config);
        db.ensure(&aig);
        let per_node = enumerate_cuts(&aig, config);
        for idx in 0..aig.len() as u32 {
            assert_eq!(db.cuts(idx), &per_node[idx as usize][..], "node {idx}");
        }
        assert!(db.computed() > 0);
        assert_eq!(db.reused(), 0, "first fill computes everything");
        // A second ensure on the same network is pure reuse.
        let computed_before = db.computed();
        db.ensure(&aig);
        assert_eq!(db.computed(), computed_before);
        assert!(db.reused() > 0);
    }

    #[test]
    fn cutdb_retarget_through_identity_cleanup_keeps_everything() {
        let aig = sample_network();
        let config = CutConfig { k: 4, max_cuts: 8 };
        let mut db = CutDb::new(config);
        db.ensure(&aig);
        let computed = db.computed();
        let (clean, map) = aig.cleanup_with_map();
        assert!(aig.same_structure(&clean), "network was already compact");
        db.retarget(&aig, &clean, &map);
        db.ensure(&clean);
        assert_eq!(
            db.computed(),
            computed,
            "identity retarget recomputes nothing"
        );
        let fresh = enumerate_cuts(&clean, config);
        for idx in 0..clean.len() as u32 {
            assert_eq!(db.cuts(idx), &fresh[idx as usize][..], "node {idx}");
        }
    }

    #[test]
    fn cutdb_retarget_after_dropping_a_cone_matches_fresh_enumeration() {
        // Build a network with a dangling cone, enumerate, then cleanup:
        // surviving cones must keep their cuts (renamed), and the result
        // must equal from-scratch enumeration on the cleaned network.
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..5).map(|_| aig.input()).collect();
        let keep1 = aig.and(xs[0], xs[1]);
        let dead = aig.xor(xs[1], xs[2]); // becomes dangling
        let _dead2 = aig.and(dead, xs[3]);
        let keep2 = aig.and(keep1, xs[4].not());
        let keep3 = aig.xor(keep2, xs[3]);
        aig.output(keep3);
        let config = CutConfig { k: 4, max_cuts: 6 };
        let mut db = CutDb::new(config);
        db.ensure(&aig);
        let computed = db.computed();
        let (clean, map) = aig.cleanup_with_map();
        assert!(clean.and_count() < aig.and_count());
        db.retarget(&aig, &clean, &map);
        db.ensure(&clean);
        // The surviving cone is structurally untouched, only renamed —
        // nothing to recompute.
        assert_eq!(db.computed(), computed);
        let fresh = enumerate_cuts(&clean, config);
        for idx in 0..clean.len() as u32 {
            assert_eq!(db.cuts(idx), &fresh[idx as usize][..], "node {idx}");
        }
    }

    #[test]
    fn cutdb_reset_forgets_and_recomputes() {
        let aig = sample_network();
        let mut db = CutDb::new(CutConfig { k: 4, max_cuts: 8 });
        db.ensure(&aig);
        let computed = db.computed();
        db.reset();
        assert!(db.cuts(aig.len() as u32 - 1).is_empty());
        db.ensure(&aig);
        assert_eq!(db.computed(), 2 * computed);
    }

    #[test]
    fn translate_cut_permutes_the_truth_table() {
        // Leaves 2,5 renamed to 9,4: the sorted order flips, so variable
        // 0 and 1 must swap in the truth table.
        let cut = Cut {
            leaves: vec![2, 5],
            tt: TruthTable::var(2, 0) & !TruthTable::var(2, 1),
        };
        let mut map: Vec<Option<Lit>> = vec![None; 6];
        map[2] = Some(Lit::new(9, false));
        map[5] = Some(Lit::new(4, false));
        let t = translate_cut(&cut, &map).expect("translates");
        assert_eq!(t.leaves, vec![4, 9]);
        assert_eq!(t.tt, !TruthTable::var(2, 0) & TruthTable::var(2, 1));
        // A complemented mapping refuses to translate.
        map[5] = Some(Lit::new(4, true));
        assert!(translate_cut(&cut, &map).is_none());
        // A collision refuses to translate.
        map[5] = Some(Lit::new(9, false));
        assert!(translate_cut(&cut, &map).is_none());
    }
}
