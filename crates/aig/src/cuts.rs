//! K-feasible priority-cut enumeration with cut truth tables.
//!
//! Both the technology mapper (k = 6) and the refactoring pass (k = 4)
//! enumerate cuts with this module. Each cut carries the function of the
//! node's positive output over the cut leaves.
//!
//! [`enumerate_cuts_choice`] is the choice-aware variant: cuts of a
//! class representative may be rooted in any ring member's cone, so the
//! mapper sees every accumulated structure of the function.

use crate::choice::ChoiceAig;
use crate::graph::{Aig, Lit, Node};
use logic::TruthTable;
use rayon::prelude::*;

/// A cut: sorted leaf nodes plus the root function over them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cut {
    /// Sorted node indices of the leaves.
    pub leaves: Vec<u32>,
    /// Function of the root's positive output over the leaves (variable
    /// `i` = leaf `i`).
    pub tt: TruthTable,
}

impl Cut {
    /// The trivial cut of a node: the node itself.
    pub fn trivial(node: u32) -> Self {
        Cut {
            leaves: vec![node],
            tt: TruthTable::var(1, 0),
        }
    }

    /// Whether this is the trivial self-cut of `root` (the cut every AND
    /// node carries in addition to its merged cuts). Both the technology
    /// mapper and the rewriting engine skip it — a node cannot cover or
    /// rewrite itself.
    pub fn is_trivial(&self, root: u32) -> bool {
        self.leaves.len() == 1 && self.leaves[0] == root
    }

    /// The cut function restricted to its true support: the
    /// support-shrunk truth table plus, per remaining variable, the leaf
    /// *node* it reads. This is the one shared derivation both consumers
    /// of cut enumeration build on — the mapper matches the shrunk
    /// function against library cells and wires cell pins to the
    /// returned leaves; the rewriting engine NPN-canonizes it and wires
    /// the class subgraph to the same leaves.
    pub fn function_over_support(&self) -> (TruthTable, Vec<u32>) {
        let (tt, kept) = self.tt.shrink_to_support();
        let leaves = kept.iter().map(|&k| self.leaves[k]).collect();
        (tt, leaves)
    }

    /// Whether this cut's leaves are a subset of another's (dominance).
    pub fn dominates(&self, other: &Cut) -> bool {
        self.leaves.len() <= other.leaves.len()
            && self
                .leaves
                .iter()
                .all(|l| other.leaves.binary_search(l).is_ok())
    }
}

/// Cut enumeration parameters.
#[derive(Clone, Copy, Debug)]
pub struct CutConfig {
    /// Maximum leaves per cut (≤ 6).
    pub k: usize,
    /// Maximum stored cuts per node (priority cap; the trivial cut is
    /// always kept in addition).
    pub max_cuts: usize,
}

impl Default for CutConfig {
    fn default() -> Self {
        Self { k: 6, max_cuts: 8 }
    }
}

/// Minimum AND nodes on one level before the level is fanned out across
/// worker threads; below this the per-task overhead outweighs the merge
/// work.
const PAR_LEVEL_THRESHOLD: usize = 16;

/// Enumerates cuts for every node. Index = node index; constant and input
/// nodes get only their trivial cut (inputs) or nothing (constant).
///
/// AND nodes are processed one topological level at a time: a node's cut
/// set is a pure function of its fanins' cut sets, and fanins sit on
/// strictly lower levels, so every node of a level can be computed
/// independently. Wide levels fan out over the worker pool
/// (order-preserving `par_iter`) and are committed serially in node
/// order — the result is bit-identical to the serial walk at any thread
/// count. The serial path reuses one scratch merge buffer across the
/// whole traversal instead of allocating a fresh accumulator per node.
pub fn enumerate_cuts(aig: &Aig, config: CutConfig) -> Vec<Vec<Cut>> {
    assert!(config.k >= 2 && config.k <= 6, "cut width must be in 2..=6");
    let mut all: Vec<Vec<Cut>> = vec![Vec::new(); aig.len()];
    for &i in aig.input_nodes() {
        all[i as usize] = vec![Cut::trivial(i)];
    }
    let parallel = rayon::current_num_threads() > 1;
    let mut scratch: Vec<Cut> = Vec::new();
    for level in aig.and_level_groups() {
        if parallel && level.len() >= PAR_LEVEL_THRESHOLD {
            let computed: Vec<Vec<Cut>> = level
                .par_iter()
                .map(|&idx| {
                    let mut local: Vec<Cut> = Vec::new();
                    node_cuts(aig, idx, &all, config, &mut local)
                })
                .collect();
            for (&idx, cuts) in level.iter().zip(computed) {
                all[idx as usize] = cuts;
            }
        } else {
            for &idx in &level {
                let cuts = node_cuts(aig, idx, &all, config, &mut scratch);
                all[idx as usize] = cuts;
            }
        }
    }
    all
}

/// The stored cut set of one AND node: fanin cut sets merged into
/// `scratch` (cleared, capacity reused), pruned, plus the trivial cut.
fn node_cuts(
    aig: &Aig,
    idx: u32,
    all: &[Vec<Cut>],
    config: CutConfig,
    scratch: &mut Vec<Cut>,
) -> Vec<Cut> {
    let Node::And(a, b) = aig.node(idx) else {
        unreachable!("only AND nodes are grouped by level");
    };
    scratch.clear();
    merge_fanin_cuts(a, b, all, config, scratch);
    let mut kept = prune_into(scratch, config.max_cuts);
    kept.push(Cut::trivial(idx));
    kept
}

/// Enumerates cuts over a choice network: one cut set per equivalence
/// class (indexed by the class representative's arena node), where a
/// class's cuts are the merged union over *every* alternative
/// decomposition in its choice ring — a cut of the representative may
/// therefore be rooted in a structure only a losing flow pass produced.
///
/// Cut truth tables always describe the representative's positive
/// output: a ring member stored with inverted phase contributes its cuts
/// complemented. Leaves are class representatives (or primary inputs),
/// so cuts compose across classes exactly as plain cuts compose across
/// nodes. Classes are processed in [`ChoiceAig::class_order`], which
/// guarantees every leaf class is enumerated before its consumers; arena
/// nodes outside that order (unreachable classes, unlinked members) get
/// empty cut sets.
pub fn enumerate_cuts_choice(choice: &ChoiceAig, config: CutConfig) -> Vec<Vec<Cut>> {
    assert!(config.k >= 2 && config.k <= 6, "cut width must be in 2..=6");
    let arena = choice.arena();
    let mut all: Vec<Vec<Cut>> = vec![Vec::new(); arena.len()];
    for &i in arena.input_nodes() {
        all[i as usize] = vec![Cut::trivial(i)];
    }
    for &rep in choice.class_order() {
        let mut acc: Vec<Cut> = Vec::new();
        for (member, phase) in choice.alternatives(rep) {
            let Node::And(a, b) = arena.node(member) else {
                unreachable!("alternatives are AND nodes");
            };
            let mut mine = Vec::new();
            merge_fanin_cuts(a, b, &all, config, &mut mine);
            for mut cut in mine {
                if phase {
                    cut.tt = !cut.tt;
                }
                if !acc.contains(&cut) {
                    acc.push(cut);
                }
            }
        }
        prune(&mut acc, config.max_cuts);
        acc.push(Cut::trivial(rep));
        all[rep as usize] = acc;
    }
    all
}

/// Merges the fanin cut sets of an AND node.
fn merge_fanin_cuts(a: Lit, b: Lit, all: &[Vec<Cut>], config: CutConfig, out: &mut Vec<Cut>) {
    let ca = &all[a.node() as usize];
    let cb = &all[b.node() as usize];
    for cut_a in ca {
        for cut_b in cb {
            if let Some(cut) = merge(a, cut_a, b, cut_b, config.k) {
                if !out.iter().any(|c| c == &cut) {
                    out.push(cut);
                }
            }
        }
    }
}

/// Merges two fanin cuts into a cut of the AND node, or `None` if the
/// union exceeds `k` leaves.
fn merge(a: Lit, cut_a: &Cut, b: Lit, cut_b: &Cut, k: usize) -> Option<Cut> {
    // Union of sorted leaf lists.
    let mut leaves = Vec::with_capacity(cut_a.leaves.len() + cut_b.leaves.len());
    let (mut i, mut j) = (0, 0);
    while i < cut_a.leaves.len() || j < cut_b.leaves.len() {
        let next = match (cut_a.leaves.get(i), cut_b.leaves.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        leaves.push(next);
        if leaves.len() > k {
            return None;
        }
    }
    let n = leaves.len();
    let ta = expand(cut_a.tt, &cut_a.leaves, &leaves, n);
    let tb = expand(cut_b.tt, &cut_b.leaves, &leaves, n);
    let fa = if a.is_complement() { !ta } else { ta };
    let fb = if b.is_complement() { !tb } else { tb };
    Some(Cut {
        leaves,
        tt: fa & fb,
    })
}

/// Re-expresses `tt` (over `from` leaves) over the `to` leaf superset.
fn expand(tt: TruthTable, from: &[u32], to: &[u32], n: usize) -> TruthTable {
    let mut positions = [0usize; 6];
    for (i, leaf) in from.iter().enumerate() {
        positions[i] = to
            .binary_search(leaf)
            .expect("every source leaf is in the merged set");
    }
    TruthTable::from_fn(n, |assignment| {
        let mut local = [false; 6];
        for (i, &p) in positions.iter().enumerate().take(from.len()) {
            local[i] = assignment[p];
        }
        tt.eval(&local[..from.len()])
    })
}

/// Keeps at most `max` cuts, preferring small leaf counts and dropping
/// dominated cuts.
fn prune(cuts: &mut Vec<Cut>, max: usize) {
    let kept = prune_into(cuts, max);
    *cuts = kept;
}

/// Drains `cuts` (leaving its capacity for reuse) into a fresh vector of
/// at most `max` kept cuts, preferring small leaf counts and dropping
/// dominated cuts.
fn prune_into(cuts: &mut Vec<Cut>, max: usize) -> Vec<Cut> {
    cuts.sort_by_key(|c| c.leaves.len());
    let mut kept: Vec<Cut> = Vec::with_capacity(max + 1);
    for cut in cuts.drain(..) {
        if kept.len() >= max {
            break;
        }
        if kept.iter().any(|k| k.dominates(&cut)) {
            continue;
        }
        kept.push(cut);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_functions_match_simulation() {
        // f = (a & b) ^ c: check every non-trivial cut's truth table by
        // evaluating the AIG directly.
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let ab = aig.and(a, b);
        let f = aig.xor(ab, c);
        aig.output(f);
        let cuts = enumerate_cuts(&aig, CutConfig { k: 4, max_cuts: 8 });
        let root = f.node() as usize;
        assert!(!cuts[root].is_empty());
        for cut in &cuts[root] {
            for m in 0..(1usize << cut.leaves.len()) {
                // Build a full input assignment consistent with leaf values.
                // Leaves here are always PIs or internal nodes; we only
                // check cuts whose leaves are all PIs.
                if !cut
                    .leaves
                    .iter()
                    .all(|&l| matches!(aig.node(l), crate::graph::Node::Input(_)))
                {
                    continue;
                }
                let mut inputs = vec![false; 3];
                for (i, &leaf) in cut.leaves.iter().enumerate() {
                    if let crate::graph::Node::Input(k) = aig.node(leaf) {
                        inputs[k as usize] = (m >> i) & 1 == 1;
                    }
                }
                // The cut's tt describes the node's *positive* output; the
                // registered output literal may be complemented.
                let expected = crate::sim::evaluate(&aig, &inputs)[0] ^ f.is_complement();
                // Only full-support cuts determine the output uniquely.
                if cut.leaves.len() == 3 {
                    assert_eq!(
                        cut.tt.eval_index(m),
                        expected,
                        "cut {:?} minterm {m}",
                        cut.leaves
                    );
                }
            }
        }
    }

    #[test]
    fn finds_the_global_cut() {
        // A 4-input function must have a cut whose leaves are the 4 PIs.
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..4).map(|_| aig.input()).collect();
        let l = aig.and(xs[0], xs[1]);
        let r = aig.and(xs[2], xs[3]);
        let f = aig.or(l, r);
        aig.output(f);
        let cuts = enumerate_cuts(&aig, CutConfig { k: 4, max_cuts: 8 });
        let root_cuts = &cuts[f.node() as usize];
        let pi_nodes: Vec<u32> = aig.input_nodes().to_vec();
        let global = root_cuts
            .iter()
            .find(|c| c.leaves == pi_nodes)
            .expect("global cut should exist");
        // f = (x0&x1) | (x2&x3); `or` returns a complemented literal, so
        // the node's positive function is the complement.
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 2);
        let d = TruthTable::var(4, 3);
        let expected = (a & b) | (c & d);
        let node_fn = if f.is_complement() {
            !expected
        } else {
            expected
        };
        assert_eq!(global.tt, node_fn);
    }

    #[test]
    fn respects_k_limit() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..8).map(|_| aig.input()).collect();
        let f = aig.and_many(&xs);
        aig.output(f);
        let cuts = enumerate_cuts(&aig, CutConfig { k: 4, max_cuts: 8 });
        for node_cuts in &cuts {
            for cut in node_cuts {
                assert!(cut.leaves.len() <= 4);
            }
        }
    }

    #[test]
    fn trivial_cut_detection_and_support_projection() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let f = aig.and(a, b);
        aig.output(f);
        let cuts = enumerate_cuts(&aig, CutConfig::default());
        let root = f.node();
        let trivial = cuts[root as usize]
            .iter()
            .find(|c| c.is_trivial(root))
            .expect("every AND node keeps its trivial cut");
        assert_eq!(trivial.leaves, vec![root]);
        let full = cuts[root as usize]
            .iter()
            .find(|c| c.leaves.len() == 2)
            .expect("2-leaf cut");
        let (tt, leaves) = full.function_over_support();
        assert_eq!(tt.n_vars(), 2);
        assert_eq!(leaves, vec![a.node(), b.node()]);
    }

    #[test]
    fn function_over_support_drops_irrelevant_leaves() {
        // A cut whose function ignores one leaf must project it away.
        let cut = Cut {
            leaves: vec![3, 5, 9],
            tt: TruthTable::var(3, 0) & TruthTable::var(3, 2),
        };
        let (tt, leaves) = cut.function_over_support();
        assert_eq!(tt.n_vars(), 2);
        assert_eq!(leaves, vec![3, 9]);
        assert_eq!(tt, TruthTable::var(2, 0) & TruthTable::var(2, 1));
    }

    #[test]
    fn choice_cuts_cover_both_structures() {
        // f = a ^ b built two ways across two snapshots: the class of f
        // must carry cuts whose functions agree with XOR over the PI
        // leaves, merged from either member's cone.
        let build = |mux_form: bool| {
            let mut aig = Aig::new();
            let a = aig.input();
            let b = aig.input();
            let f = if mux_form {
                aig.mux(a, b.not(), b)
            } else {
                aig.xor(a, b)
            };
            let g = aig.and(f, a);
            aig.output(f);
            aig.output(g);
            aig
        };
        let choice =
            crate::choice::ChoiceAig::build(&[build(false), build(true)]).expect("same interface");
        let cuts = enumerate_cuts_choice(&choice, CutConfig { k: 4, max_cuts: 8 });
        // Every class in order got cuts; leaves are inputs or classes in
        // earlier positions; the trivial cut is present.
        let position: std::collections::HashMap<u32, usize> = choice
            .class_order()
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        for (i, &rep) in choice.class_order().iter().enumerate() {
            let class_cuts = &cuts[rep as usize];
            assert!(class_cuts.iter().any(|c| c.is_trivial(rep)));
            assert!(
                class_cuts.iter().any(|c| !c.is_trivial(rep)),
                "class {rep} needs a non-trivial cut"
            );
            for cut in class_cuts {
                if cut.is_trivial(rep) {
                    continue;
                }
                for &leaf in &cut.leaves {
                    match choice.arena().node(leaf) {
                        crate::graph::Node::Input(_) => {}
                        crate::graph::Node::And(_, _) => {
                            assert!(position[&leaf] < i, "leaf {leaf} must precede class {rep}")
                        }
                        crate::graph::Node::Const => panic!("constant cannot be a cut leaf"),
                    }
                }
            }
        }
        // The output class of f has a 2-leaf PI cut computing XOR (up to
        // the output literal's phase).
        let f_lit = choice.outputs()[0];
        let f_cuts = &cuts[f_lit.node() as usize];
        let pi: Vec<u32> = choice.arena().input_nodes().to_vec();
        let xor = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
        let found = f_cuts
            .iter()
            .any(|c| c.leaves == pi && (c.tt == xor || c.tt == !xor));
        assert!(found, "the XOR cut over the PIs must exist: {f_cuts:?}");
    }

    #[test]
    fn dominance_pruning() {
        let a = Cut {
            leaves: vec![1, 2],
            tt: TruthTable::var(2, 0),
        };
        let b = Cut {
            leaves: vec![1, 2, 3],
            tt: TruthTable::var(3, 0),
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn complemented_edges_fold_into_cut_tt() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let f = aig.and(a.not(), b);
        aig.output(f);
        let cuts = enumerate_cuts(&aig, CutConfig::default());
        let root = &cuts[f.node() as usize];
        let pi_cut = root
            .iter()
            .find(|c| c.leaves.len() == 2)
            .expect("2-leaf cut");
        let ta = TruthTable::var(2, 0);
        let tb = TruthTable::var(2, 1);
        assert_eq!(pi_cut.tt, !ta & tb);
    }
}
