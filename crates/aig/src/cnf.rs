//! Tseitin CNF encoding of AIGs into a [`sat::Solver`].
//!
//! Every AND node `v = a ∧ b` becomes the three clauses
//! `(¬v ∨ a) (¬v ∨ b) (v ∨ ¬a ∨ ¬b)`; complemented edges fold into the
//! literal signs, so the encoding is linear in the cone size. Combined
//! with [`miter`](crate::check::miter) this is the standard CEC
//! construction: the miter output is satisfiable iff the two circuits
//! differ.
//!
//! # Example
//!
//! ```
//! use aig::{Aig, cnf};
//! use sat::{SolveResult, Solver};
//!
//! // XOR two ways; the miter of the two must be UNSAT.
//! let mut x1 = Aig::new();
//! let (a, b) = (x1.input(), x1.input());
//! let f = x1.xor(a, b);
//! x1.output(f);
//!
//! let mut x2 = Aig::new();
//! let (a, b) = (x2.input(), x2.input());
//! let t1 = x2.and(a, b.not());
//! let t2 = x2.and(a.not(), b);
//! let g = x2.or(t1, t2);
//! x2.output(g);
//!
//! let miter = aig::check::miter(&x1, &x2).expect("same shape");
//! let mut solver = Solver::new();
//! let enc = cnf::encode(&miter, &mut solver);
//! solver.add_clause(&[enc.outputs[0]]); // assert "the circuits differ"
//! assert_eq!(solver.solve(), SolveResult::Unsat);
//! // solver.to_dimacs() would export the query for external debugging.
//! ```

use crate::graph::{Aig, Lit, Node};
use sat::{Solver, Var};

/// Lazily encodes AIG cones into a solver, one node at a time.
///
/// The encoder memoizes the solver variable of every encoded node, so
/// repeated [`CnfEncoder::sat_lit`] calls over overlapping cones add each
/// node's clauses exactly once. The AIG may grow between calls
/// (the SAT-sweeping usage); shrinking or mutating already-encoded nodes
/// is not supported.
#[derive(Default)]
pub struct CnfEncoder {
    var_of: Vec<Option<Var>>,
}

impl CnfEncoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The solver literal for an AIG literal, Tseitin-encoding its cone
    /// into `solver` on first use.
    pub fn sat_lit(&mut self, aig: &Aig, solver: &mut Solver, lit: Lit) -> sat::Lit {
        if self.var_of.len() < aig.len() {
            self.var_of.resize(aig.len(), None);
        }
        let mut stack = vec![lit.node()];
        while let Some(&n) = stack.last() {
            if self.var_of[n as usize].is_some() {
                stack.pop();
                continue;
            }
            match aig.node(n) {
                Node::Const => {
                    let v = solver.new_var();
                    solver.add_clause(&[sat::Lit::negative(v)]);
                    self.var_of[n as usize] = Some(v);
                }
                Node::Input(_) => {
                    self.var_of[n as usize] = Some(solver.new_var());
                }
                Node::And(a, b) => {
                    let (fa, fb) = (a.node() as usize, b.node() as usize);
                    if self.var_of[fa].is_none() || self.var_of[fb].is_none() {
                        stack.push(a.node());
                        stack.push(b.node());
                        continue;
                    }
                    let v = solver.new_var();
                    let la = sat::Lit::new(self.var_of[fa].expect("encoded"), a.is_complement());
                    let lb = sat::Lit::new(self.var_of[fb].expect("encoded"), b.is_complement());
                    let lv = sat::Lit::positive(v);
                    solver.add_clause(&[!lv, la]);
                    solver.add_clause(&[!lv, lb]);
                    solver.add_clause(&[lv, !la, !lb]);
                    self.var_of[n as usize] = Some(v);
                }
            }
        }
        let v = self.var_of[lit.node() as usize].expect("cone encoded");
        sat::Lit::new(v, lit.is_complement())
    }

    /// The solver variable already assigned to `node`, if its cone has
    /// been encoded.
    pub fn var_of(&self, node: u32) -> Option<Var> {
        self.var_of.get(node as usize).copied().flatten()
    }
}

/// A fully encoded AIG: one solver variable per primary input, one solver
/// literal per primary output.
pub struct EncodedAig {
    /// Solver variable of each primary input, in input order.
    pub inputs: Vec<Var>,
    /// Solver literal of each primary output, in output order.
    pub outputs: Vec<sat::Lit>,
}

/// Encodes the full AIG (cones of every output) into `solver`.
pub fn encode(aig: &Aig, solver: &mut Solver) -> EncodedAig {
    let mut enc = CnfEncoder::new();
    // Inputs first so they get stable variables even if dangling.
    let inputs: Vec<Var> = aig
        .input_nodes()
        .iter()
        .map(|&n| enc.sat_lit(aig, solver, Lit::new(n, false)).var())
        .collect();
    let outputs: Vec<sat::Lit> = aig
        .output_lits()
        .iter()
        .map(|&l| enc.sat_lit(aig, solver, l))
        .collect();
    EncodedAig { inputs, outputs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::SolveResult;

    #[test]
    fn and_gate_encodes_its_truth_table() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let f = aig.and(a, b);
        aig.output(f);
        for pattern in 0..4u32 {
            let mut solver = Solver::new();
            let enc = encode(&aig, &mut solver);
            solver.add_clause(&[sat::Lit::new(enc.inputs[0], pattern & 1 == 0)]);
            solver.add_clause(&[sat::Lit::new(enc.inputs[1], pattern & 2 == 0)]);
            assert_eq!(solver.solve(), SolveResult::Sat);
            let expect = pattern == 3;
            let out = enc.outputs[0];
            assert_eq!(
                solver.model_value(out.var()).map(|v| v != out.is_negated()),
                Some(expect),
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn constant_and_complemented_outputs_encode() {
        let mut aig = Aig::new();
        let a = aig.input();
        aig.output(Lit::TRUE);
        aig.output(a.not());
        let mut solver = Solver::new();
        let enc = encode(&aig, &mut solver);
        // Constant-true output must be implied outright.
        solver.add_clause(&[!enc.outputs[0]]);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn shared_cones_encode_once() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.and(a, b);
        let y = aig.and(x, a.not());
        aig.output(x);
        aig.output(y);
        let mut solver = Solver::new();
        let _ = encode(&aig, &mut solver);
        // 2 inputs + 2 ANDs = 4 variables; the shared cone of `x` must
        // not be duplicated for the second output.
        assert_eq!(solver.num_vars(), 4);
    }
}
