//! Delay-oriented AND-tree balancing (ABC's `balance`).
//!
//! Maximal single-fanout AND trees are collected and rebuilt as
//! minimum-depth trees, combining the earliest-arriving operands first
//! (Huffman-style on levels).

use crate::graph::{Aig, Lit, Node};
use std::collections::HashMap;

/// Rebalances the AIG for depth; the function of every output is
/// preserved (checked by the `check` module in tests).
pub fn balance(aig: &Aig) -> Aig {
    balance_core(aig).0
}

/// [`balance`] that also reports the old-node → new-literal map (`None`
/// for nodes that were absorbed into a collapsed AND tree and have no
/// counterpart). The incremental cut database uses the map to keep the
/// cuts of cones the balancing left structurally intact.
pub(crate) fn balance_core(aig: &Aig) -> (Aig, Vec<Option<Lit>>) {
    let fanouts = aig.fanout_counts();
    let mut out = Aig::new();
    let mut levels: Vec<u32> = vec![0];
    // Map from old node index to new positive literal.
    let mut map: HashMap<u32, Lit> = HashMap::new();
    map.insert(0, Lit::FALSE);
    for &i in aig.input_nodes() {
        let lit = out.input();
        map.insert(i, lit);
        levels.push(0);
    }
    let mut result = Aig::new();
    std::mem::swap(&mut result, &mut out);
    let mut ctx = Ctx {
        aig,
        fanouts,
        out: result,
        levels,
        map,
    };
    let output_lits: Vec<Lit> = aig
        .output_lits()
        .iter()
        .map(|l| {
            let new = ctx.build(l.node());
            if l.is_complement() {
                new.not()
            } else {
                new
            }
        })
        .collect();
    for l in output_lits {
        ctx.out.output(l);
    }
    let mut node_map: Vec<Option<Lit>> = vec![None; aig.len()];
    for (old, lit) in ctx.map {
        node_map[old as usize] = Some(lit);
    }
    (ctx.out, node_map)
}

struct Ctx<'a> {
    aig: &'a Aig,
    fanouts: &'a [u32],
    out: Aig,
    levels: Vec<u32>,
    map: HashMap<u32, Lit>,
}

impl Ctx<'_> {
    /// Level of a new-AIG literal.
    fn level(&self, lit: Lit) -> u32 {
        self.levels[lit.node() as usize]
    }

    /// ANDs two new literals, tracking levels.
    fn and_tracked(&mut self, a: Lit, b: Lit) -> Lit {
        let before = self.out.len();
        let r = self.out.and(a, b);
        if self.out.len() > before {
            debug_assert_eq!(r.node() as usize, self.out.len() - 1);
            self.levels.push(1 + self.level(a).max(self.level(b)));
        }
        r
    }

    /// Builds (memoized) the balanced version of an old node, returning
    /// its positive literal in the new AIG.
    fn build(&mut self, old: u32) -> Lit {
        if let Some(&l) = self.map.get(&old) {
            return l;
        }
        let Node::And(_, _) = self.aig.node(old) else {
            unreachable!("inputs and constant are pre-mapped");
        };
        // Collect the maximal AND-tree: expand through positive edges to
        // single-fanout AND children.
        let mut operands: Vec<Lit> = Vec::new();
        let mut stack = vec![Lit::new(old, false)];
        let mut first = true;
        while let Some(edge) = stack.pop() {
            let node = edge.node();
            let expandable = !edge.is_complement()
                && matches!(self.aig.node(node), Node::And(_, _))
                && (first || self.fanouts[node as usize] == 1);
            if expandable {
                let Node::And(a, b) = self.aig.node(node) else {
                    unreachable!()
                };
                stack.push(a);
                stack.push(b);
            } else {
                operands.push(edge);
            }
            first = false;
        }
        // Map operands into the new AIG.
        let mut mapped: Vec<Lit> = operands
            .iter()
            .map(|e| {
                let l = self.build_leaf(e.node());
                if e.is_complement() {
                    l.not()
                } else {
                    l
                }
            })
            .collect();
        // Combine lowest-level operands first.
        mapped.sort_by_key(|l| std::cmp::Reverse(self.level(*l)));
        while mapped.len() > 1 {
            let a = mapped.pop().expect("len > 1");
            let b = mapped.pop().expect("len > 1");
            let r = self.and_tracked(a, b);
            // Insert keeping the reverse-level ordering.
            let pos = mapped
                .binary_search_by_key(&std::cmp::Reverse(self.level(r)), |l| {
                    std::cmp::Reverse(self.level(*l))
                })
                .unwrap_or_else(|p| p);
            mapped.insert(pos, r);
        }
        let result = mapped.pop().unwrap_or(Lit::TRUE);
        self.map.insert(old, result);
        result
    }

    /// Maps a tree leaf (input, constant, shared or complemented node).
    fn build_leaf(&mut self, old: u32) -> Lit {
        if let Some(&l) = self.map.get(&old) {
            return l;
        }
        self.build(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::equivalent;

    #[test]
    fn chain_becomes_tree() {
        // a & b & c & d & e & f & g & h as a linear chain: depth 7.
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..8).map(|_| aig.input()).collect();
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.and(acc, x);
        }
        aig.output(acc);
        assert_eq!(aig.depth(), 7);
        let bal = balance(&aig);
        assert_eq!(bal.depth(), 3, "8-way AND balances to depth 3");
        assert!(equivalent(&aig, &bal, 0x1234, 64));
    }

    #[test]
    fn respects_shared_nodes() {
        // A shared subtree must not be duplicated blindly; function must
        // hold either way.
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let shared = aig.and(a, b);
        let x = aig.and(shared, c);
        let y = aig.and(shared, c.not());
        aig.output(x);
        aig.output(y);
        let bal = balance(&aig);
        assert!(equivalent(&aig, &bal, 0xBEEF, 64));
    }

    #[test]
    fn handles_complemented_structures() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let nand = aig.and(a, b).not();
        let f = aig.and(nand, c);
        let g = aig.xor(f, a);
        aig.output(g);
        let bal = balance(&aig);
        assert!(equivalent(&aig, &bal, 0xCAFE, 128));
    }

    #[test]
    fn unbalanced_sum_of_products() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..6).map(|_| aig.input()).collect();
        let t1 = aig.and(xs[0], xs[1]);
        let t2 = aig.and(xs[2], xs[3]);
        let t3 = aig.and(xs[4], xs[5]);
        let o1 = aig.or(t1, t2);
        let o = aig.or(o1, t3);
        aig.output(o);
        let bal = balance(&aig);
        assert!(bal.depth() <= aig.depth());
        assert!(equivalent(&aig, &bal, 7, 64));
    }

    #[test]
    fn idempotent_on_balanced_input() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..4).map(|_| aig.input()).collect();
        let f = aig.and_many(&xs);
        aig.output(f);
        let once = balance(&aig);
        let twice = balance(&once);
        assert_eq!(once.depth(), twice.depth());
        assert_eq!(once.and_count(), twice.and_count());
    }
}
