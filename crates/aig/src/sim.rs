//! 64-way bit-parallel simulation of AIGs.

use crate::graph::{Aig, Lit, Node};

/// Simulates the AIG on 64 parallel input patterns.
///
/// `inputs[i]` carries 64 values of primary input `i` (bit k = pattern k).
/// Returns one word per primary output.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the AIG's input count.
pub fn simulate64(aig: &Aig, inputs: &[u64]) -> Vec<u64> {
    let values = node_values64(aig, inputs);
    aig.output_lits()
        .iter()
        .map(|l| lit_word(*l, &values))
        .collect()
}

/// Simulates and returns the value word of *every node* (for cut truth
/// tables, activity extraction, etc.).
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the AIG's input count.
pub fn node_values64(aig: &Aig, inputs: &[u64]) -> Vec<u64> {
    assert_eq!(inputs.len(), aig.input_count(), "input word count mismatch");
    let mut values = vec![0u64; aig.len()];
    for (i, node) in aig.nodes().enumerate() {
        values[i] = match node {
            Node::Const => 0,
            Node::Input(k) => inputs[k as usize],
            Node::And(a, b) => lit_word(a, &values) & lit_word(b, &values),
        };
    }
    values
}

/// Reads a literal's word from node values.
pub fn lit_word(lit: Lit, values: &[u64]) -> u64 {
    let v = values[lit.node() as usize];
    if lit.is_complement() {
        !v
    } else {
        v
    }
}

/// Words per [`WideWord`] — one cache line of simulation state per node,
/// 256 patterns per network pass.
pub const WIDE_WORDS: usize = 4;

/// A cache-line block of 4 × 64 = 256 simulation patterns.
pub type WideWord = [u64; WIDE_WORDS];

/// Simulates the AIG on 256 parallel input patterns — the widened twin of
/// [`simulate64`], amortizing every node visit (fanin loads, complement
/// masks, bounds checks) over a full cache line of patterns.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the AIG's input count.
pub fn simulate_wide(aig: &Aig, inputs: &[WideWord]) -> Vec<WideWord> {
    let values = node_values_wide(aig, inputs);
    aig.output_lits()
        .iter()
        .map(|l| lit_wide(*l, &values))
        .collect()
}

/// Widened twin of [`node_values64`]: the value block of every node.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the AIG's input count.
pub fn node_values_wide(aig: &Aig, inputs: &[WideWord]) -> Vec<WideWord> {
    assert_eq!(inputs.len(), aig.input_count(), "input word count mismatch");
    let mut values = vec![[0u64; WIDE_WORDS]; aig.len()];
    for (i, node) in aig.nodes().enumerate() {
        values[i] = match node {
            Node::Const => [0; WIDE_WORDS],
            Node::Input(k) => inputs[k as usize],
            Node::And(a, b) => {
                let wa = lit_wide(a, &values);
                let wb = lit_wide(b, &values);
                std::array::from_fn(|w| wa[w] & wb[w])
            }
        };
    }
    crate::profile::add_sim_words((aig.len() * WIDE_WORDS) as u64);
    values
}

/// Reads a literal's value block from wide node values.
pub fn lit_wide(lit: Lit, values: &[WideWord]) -> WideWord {
    let v = values[lit.node() as usize];
    if lit.is_complement() {
        std::array::from_fn(|w| !v[w])
    } else {
        v
    }
}

/// The xorshift64* pattern generator shared by every simulation-based
/// checker in the workspace (the equivalence sweeper's signature words,
/// `techmap`'s simulation verifier): one algorithm, one seeding rule, so
/// fixed-seed runs stay reproducible across call sites.
#[derive(Clone, Copy, Debug)]
pub struct PatternRng {
    state: u64,
}

impl PatternRng {
    /// A generator seeded with `seed` (zero is mapped to a nonzero state).
    pub fn new(seed: u64) -> Self {
        Self { state: seed | 1 }
    }

    /// The next 64-pattern random word.
    pub fn next_word(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next 256-pattern block — exactly [`WIDE_WORDS`] consecutive
    /// [`PatternRng::next_word`] draws, so mixing wide and narrow
    /// consumers keeps one reproducible stream.
    pub fn next_wide(&mut self) -> WideWord {
        std::array::from_fn(|_| self.next_word())
    }
}

/// Evaluates the AIG on a single assignment (convenience for tests).
pub fn evaluate(aig: &Aig, inputs: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = inputs
        .iter()
        .map(|&b| if b { u64::MAX } else { 0 })
        .collect();
    simulate64(aig, &words)
        .iter()
        .map(|&w| w & 1 == 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_truth_by_simulation() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.xor(a, b);
        aig.output(x);
        // Pattern k: a = bit0 of k, b = bit1 of k (4 patterns).
        let out = simulate64(&aig, &[0b0101, 0b0011]);
        assert_eq!(out[0] & 0xF, 0b0110);
    }

    #[test]
    fn evaluate_full_adder() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let cin = aig.input();
        let ab = aig.xor(a, b);
        let sum = aig.xor(ab, cin);
        let c1 = aig.and(a, b);
        let c2 = aig.and(ab, cin);
        let cout = aig.or(c1, c2);
        aig.output(sum);
        aig.output(cout);
        for i in 0..8u32 {
            let bits = [(i & 1) == 1, (i >> 1) & 1 == 1, (i >> 2) & 1 == 1];
            let expect_sum = (bits[0] as u32 + bits[1] as u32 + bits[2] as u32) & 1 == 1;
            let expect_cout = (bits[0] as u32 + bits[1] as u32 + bits[2] as u32) >= 2;
            let out = evaluate(&aig, &bits);
            assert_eq!(out[0], expect_sum, "sum at {bits:?}");
            assert_eq!(out[1], expect_cout, "cout at {bits:?}");
        }
    }

    #[test]
    fn wide_kernel_matches_four_narrow_passes() {
        // simulate_wide lane w must equal simulate64 on lane w's words.
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..6).map(|_| aig.input()).collect();
        let s = aig.xor_many(&xs);
        let c = aig.and_many(&xs[..3]);
        let m = aig.and(s, c.not());
        aig.output(s);
        aig.output(c);
        aig.output(m);
        let mut rng = PatternRng::new(0xA5A5);
        let wide: Vec<WideWord> = (0..6).map(|_| rng.next_wide()).collect();
        let got = simulate_wide(&aig, &wide);
        for w in 0..WIDE_WORDS {
            let narrow: Vec<u64> = wide.iter().map(|b| b[w]).collect();
            let expect = simulate64(&aig, &narrow);
            for (o, e) in expect.iter().enumerate() {
                assert_eq!(got[o][w], *e, "output {o}, lane {w}");
            }
        }
    }

    #[test]
    fn next_wide_is_four_narrow_draws() {
        let mut a = PatternRng::new(7);
        let mut b = PatternRng::new(7);
        let block = a.next_wide();
        for w in block {
            assert_eq!(w, b.next_word());
        }
    }

    #[test]
    fn complemented_outputs() {
        let mut aig = Aig::new();
        let a = aig.input();
        aig.output(a.not());
        assert_eq!(evaluate(&aig, &[true]), vec![false]);
        assert_eq!(evaluate(&aig, &[false]), vec![true]);
    }

    #[test]
    fn constant_output() {
        let mut aig = Aig::new();
        let _ = aig.input();
        aig.output(Lit::TRUE);
        assert_eq!(evaluate(&aig, &[false]), vec![true]);
    }
}
