//! AIGER reader/writer, ASCII (`aag`) and binary (`aig`).
//!
//! The benchmark circuits in this repository are synthetic stand-ins; the
//! AIGER format bridge lets users run the *original* ISCAS'85/MCNC
//! netlists (or anything else ABC can export with `write_aiger -s` or
//! `write_aiger`) through the exact same characterize → map → estimate
//! pipeline. [`from_aiger_auto`] sniffs the header and accepts either
//! format.
//!
//! Only the combinational subset is supported: latches are rejected.

use crate::graph::{Aig, Lit};
use std::fmt::Write as _;

/// Error produced when parsing an AIGER file fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAigerError {
    message: String,
    line: usize,
}

impl ParseAigerError {
    fn new(message: impl Into<String>, line: usize) -> Self {
        Self {
            message: message.into(),
            line,
        }
    }
}

impl std::fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at line {}", self.message, self.line)
    }
}

impl std::error::Error for ParseAigerError {}

/// Serializes an AIG in AIGER ASCII format (`aag`).
///
/// Node indices are renumbered densely: inputs first, then AND nodes in
/// topological order, as the format requires.
pub fn to_aiger_ascii(aig: &Aig) -> String {
    use crate::graph::Node;
    // Map node index -> aiger variable (1-based; 0 is constant false).
    let mut var_of = vec![0u32; aig.len()];
    let mut next = 1u32;
    for &i in aig.input_nodes() {
        var_of[i as usize] = next;
        next += 1;
    }
    let mut ands = Vec::new();
    for (i, node) in aig.nodes().enumerate() {
        if let Node::And(a, b) = node {
            var_of[i] = next;
            next += 1;
            ands.push((i, a, b));
        }
    }
    let aiger_lit =
        |l: Lit| -> u32 { 2 * var_of[l.node() as usize] + u32::from(l.is_complement()) };
    let m = next - 1;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "aag {m} {} 0 {} {}",
        aig.input_count(),
        aig.output_count(),
        ands.len()
    );
    for k in 0..aig.input_count() {
        let _ = writeln!(out, "{}", 2 * (k as u32 + 1));
    }
    for o in aig.output_lits() {
        let _ = writeln!(out, "{}", aiger_lit(*o));
    }
    for (i, a, b) in ands {
        let lhs = 2 * var_of[i];
        // AIGER requires lhs > rhs0 >= rhs1.
        let (r0, r1) = {
            let x = aiger_lit(a);
            let y = aiger_lit(b);
            if x >= y {
                (x, y)
            } else {
                (y, x)
            }
        };
        let _ = writeln!(out, "{lhs} {r0} {r1}");
    }
    out
}

/// Parses an AIGER ASCII (`aag`) file into an [`Aig`].
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed input, latches (sequential
/// AIGs are out of scope), or forward references.
pub fn from_aiger_ascii(text: &str) -> Result<Aig, ParseAigerError> {
    let mut lines = text.lines().enumerate();
    let (line_no, header) = lines
        .next()
        .ok_or_else(|| ParseAigerError::new("empty file", 0))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(ParseAigerError::new(
            "expected `aag M I L O A` header",
            line_no + 1,
        ));
    }
    let parse = |s: &str, line: usize| -> Result<usize, ParseAigerError> {
        s.parse()
            .map_err(|_| ParseAigerError::new(format!("bad number `{s}`"), line))
    };
    let m = parse(fields[1], 1)?;
    let i = parse(fields[2], 1)?;
    let l = parse(fields[3], 1)?;
    let o = parse(fields[4], 1)?;
    let a = parse(fields[5], 1)?;
    if l != 0 {
        return Err(ParseAigerError::new("latches are not supported", 1));
    }
    if m < i + a {
        return Err(ParseAigerError::new("header M below I + A", 1));
    }

    let mut aig = Aig::new();
    // aiger var -> our literal (positive).
    let mut lit_of: Vec<Option<Lit>> = vec![None; m + 1];
    lit_of[0] = Some(Lit::FALSE);
    let mut input_vars = Vec::with_capacity(i);
    for k in 0..i {
        let (line_no, line) = lines
            .next()
            .ok_or_else(|| ParseAigerError::new("missing input line", k + 2))?;
        let v = parse(line.trim(), line_no + 1)?;
        if v % 2 != 0 || v == 0 {
            return Err(ParseAigerError::new(
                "input literal must be even and nonzero",
                line_no + 1,
            ));
        }
        input_vars.push(v / 2);
    }
    // Allocate inputs in file order.
    for &v in &input_vars {
        if v > m || lit_of[v].is_some() {
            return Err(ParseAigerError::new("duplicate or out-of-range input", 1));
        }
        lit_of[v] = Some(aig.input());
    }
    // Output literals (resolve after ANDs are built).
    let mut output_lits_raw = Vec::with_capacity(o);
    for k in 0..o {
        let (line_no, line) = lines
            .next()
            .ok_or_else(|| ParseAigerError::new("missing output line", i + k + 2))?;
        output_lits_raw.push((parse(line.trim(), line_no + 1)?, line_no + 1));
    }
    // AND definitions.
    let mut and_defs = Vec::with_capacity(a);
    for k in 0..a {
        let (line_no, line) = lines
            .next()
            .ok_or_else(|| ParseAigerError::new("missing and line", i + o + k + 2))?;
        let nums: Vec<&str> = line.split_whitespace().collect();
        if nums.len() != 3 {
            return Err(ParseAigerError::new(
                "and line needs three literals",
                line_no + 1,
            ));
        }
        let lhs = parse(nums[0], line_no + 1)?;
        let r0 = parse(nums[1], line_no + 1)?;
        let r1 = parse(nums[2], line_no + 1)?;
        if lhs % 2 != 0 {
            return Err(ParseAigerError::new("and lhs must be even", line_no + 1));
        }
        and_defs.push((lhs / 2, r0, r1, line_no + 1));
    }
    // Build ANDs; AIGER guarantees topological order (lhs > rhs).
    for (var, r0, r1, line_no) in and_defs {
        let resolve = |raw: usize| -> Result<Lit, ParseAigerError> {
            let v = raw / 2;
            let base =
                lit_of.get(v).copied().flatten().ok_or_else(|| {
                    ParseAigerError::new(format!("undefined literal {raw}"), line_no)
                })?;
            Ok(if raw % 2 == 1 { base.not() } else { base })
        };
        let fa = resolve(r0)?;
        let fb = resolve(r1)?;
        if var > m || lit_of[var].is_some() {
            return Err(ParseAigerError::new(
                "duplicate or out-of-range and",
                line_no,
            ));
        }
        lit_of[var] = Some(aig.and(fa, fb));
    }
    for (raw, line_no) in output_lits_raw {
        let v = raw / 2;
        let base = lit_of.get(v).copied().flatten().ok_or_else(|| {
            ParseAigerError::new(format!("undefined output literal {raw}"), line_no)
        })?;
        aig.output(if raw % 2 == 1 { base.not() } else { base });
    }
    Ok(aig)
}

/// Serializes an AIG in AIGER binary format (`aig`): implicit input
/// literals, outputs as ASCII lines, AND definitions as LEB128 deltas.
///
/// Node indices are renumbered densely (inputs first, then AND nodes in
/// topological order) exactly as in [`to_aiger_ascii`], which guarantees
/// the `lhs > rhs0 >= rhs1` ordering the binary format requires.
pub fn to_aiger_binary(aig: &Aig) -> Vec<u8> {
    use crate::graph::Node;
    let mut var_of = vec![0u32; aig.len()];
    let mut next = 1u32;
    for &i in aig.input_nodes() {
        var_of[i as usize] = next;
        next += 1;
    }
    let mut ands = Vec::new();
    for (i, node) in aig.nodes().enumerate() {
        if let Node::And(a, b) = node {
            var_of[i] = next;
            next += 1;
            ands.push((i, a, b));
        }
    }
    let aiger_lit =
        |l: Lit| -> u32 { 2 * var_of[l.node() as usize] + u32::from(l.is_complement()) };
    let m = next - 1;
    let mut out: Vec<u8> = Vec::new();
    out.extend_from_slice(
        format!(
            "aig {m} {} 0 {} {}\n",
            aig.input_count(),
            aig.output_count(),
            ands.len()
        )
        .as_bytes(),
    );
    for o in aig.output_lits() {
        out.extend_from_slice(format!("{}\n", aiger_lit(*o)).as_bytes());
    }
    for (i, a, b) in ands {
        let lhs = 2 * var_of[i];
        let (r0, r1) = {
            let x = aiger_lit(a);
            let y = aiger_lit(b);
            if x >= y {
                (x, y)
            } else {
                (y, x)
            }
        };
        write_varint(&mut out, lhs - r0);
        write_varint(&mut out, r0 - r1);
    }
    out
}

/// LEB128-style unsigned varint (7 bits per byte, MSB = continuation).
fn write_varint(out: &mut Vec<u8>, mut x: u32) {
    while x >= 0x80 {
        out.push((x & 0x7F) as u8 | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u32, ParseAigerError> {
    // Accumulate in u64 so the fifth byte (shift 28) cannot silently drop
    // high bits; anything that does not fit u32 is a malformed file.
    let mut x: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*pos)
            .ok_or_else(|| ParseAigerError::new("truncated delta", 0))?;
        *pos += 1;
        if shift > 28 {
            return Err(ParseAigerError::new("delta overflows 32 bits", 0));
        }
        x |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return u32::try_from(x)
                .map_err(|_| ParseAigerError::new("delta overflows 32 bits", 0));
        }
        shift += 7;
    }
}

/// Parses an AIGER binary (`aig`) file into an [`Aig`].
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed input or latches.
pub fn from_aiger_binary(bytes: &[u8]) -> Result<Aig, ParseAigerError> {
    // Header and output lines are ASCII, terminated by '\n'.
    let mut pos = 0usize;
    let read_line = |pos: &mut usize| -> Result<String, ParseAigerError> {
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos] != b'\n' {
            *pos += 1;
        }
        if *pos >= bytes.len() {
            return Err(ParseAigerError::new("missing newline", 0));
        }
        let line = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| ParseAigerError::new("non-UTF-8 header", 0))?
            .to_owned();
        *pos += 1;
        Ok(line)
    };
    let header = read_line(&mut pos)?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aig" {
        return Err(ParseAigerError::new("expected `aig M I L O A` header", 1));
    }
    let parse = |s: &str| -> Result<usize, ParseAigerError> {
        s.parse()
            .map_err(|_| ParseAigerError::new(format!("bad number `{s}`"), 1))
    };
    let m = parse(fields[1])?;
    let i = parse(fields[2])?;
    let l = parse(fields[3])?;
    let o = parse(fields[4])?;
    let a = parse(fields[5])?;
    if l != 0 {
        return Err(ParseAigerError::new("latches are not supported", 1));
    }
    if i.checked_add(a) != Some(m) {
        return Err(ParseAigerError::new("binary header requires M = I + A", 1));
    }
    // Sanity bounds before any allocation: literals must fit the u32
    // packing, every AND costs at least two delta bytes and every output
    // line at least two characters on disk. Inputs have no on-disk
    // footprint in the binary format, so a crafted header could demand
    // terabyte allocations from a few-byte file — cap them at a count no
    // real netlist approaches.
    const MAX_BINARY_INPUTS: usize = 1 << 24;
    if i > MAX_BINARY_INPUTS {
        return Err(ParseAigerError::new("input count implausibly large", 1));
    }
    if a > bytes.len() / 2 || o > bytes.len() || m > (u32::MAX / 2 - 1) as usize {
        return Err(ParseAigerError::new("header counts exceed file size", 1));
    }
    let mut outputs = Vec::with_capacity(o);
    for k in 0..o {
        let line = read_line(&mut pos)?;
        let raw: usize = line
            .trim()
            .parse()
            .map_err(|_| ParseAigerError::new("bad output literal", k + 2))?;
        outputs.push(raw);
    }
    let mut aig = Aig::new();
    let mut lit_of: Vec<Lit> = Vec::with_capacity(m + 1);
    lit_of.push(Lit::FALSE);
    for _ in 0..i {
        lit_of.push(aig.input());
    }
    for k in 0..a {
        let lhs = 2 * (i + k + 1) as u32;
        let d0 = read_varint(bytes, &mut pos)?;
        let d1 = read_varint(bytes, &mut pos)?;
        let r0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| ParseAigerError::new("delta0 exceeds lhs", 0))?;
        let r1 = r0
            .checked_sub(d1)
            .ok_or_else(|| ParseAigerError::new("delta1 exceeds rhs0", 0))?;
        if r0 >= lhs {
            return Err(ParseAigerError::new("rhs not below lhs", 0));
        }
        let resolve = |raw: u32| -> Lit {
            let base = lit_of[(raw / 2) as usize];
            if raw % 2 == 1 {
                base.not()
            } else {
                base
            }
        };
        let (fa, fb) = (resolve(r0), resolve(r1));
        lit_of.push(aig.and(fa, fb));
    }
    for raw in outputs {
        if raw / 2 > m {
            return Err(ParseAigerError::new(
                format!("undefined output literal {raw}"),
                0,
            ));
        }
        let base = lit_of[raw / 2];
        aig.output(if raw % 2 == 1 { base.not() } else { base });
    }
    Ok(aig)
}

/// Parses either AIGER format, sniffing the `aag`/`aig` header.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed input in either format.
pub fn from_aiger_auto(bytes: &[u8]) -> Result<Aig, ParseAigerError> {
    if bytes.starts_with(b"aig ") {
        from_aiger_binary(bytes)
    } else {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| ParseAigerError::new("not UTF-8 and not binary AIGER", 1))?;
        from_aiger_ascii(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::equivalent;

    fn sample_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let x = aig.xor(a, b);
        let f = aig.and(x, c.not());
        aig.output(f);
        aig.output(x.not());
        aig
    }

    #[test]
    fn roundtrip_preserves_function() {
        let aig = sample_aig();
        let text = to_aiger_ascii(&aig);
        let parsed = from_aiger_ascii(&text).expect("own output parses");
        assert_eq!(parsed.input_count(), aig.input_count());
        assert_eq!(parsed.output_count(), aig.output_count());
        assert!(equivalent(&aig, &parsed, 0xA1A2, 32));
    }

    #[test]
    fn parses_handwritten_and_gate() {
        // AND of two inputs, straight from the AIGER spec examples.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let aig = from_aiger_ascii(text).expect("valid aag");
        assert_eq!(aig.input_count(), 2);
        assert_eq!(aig.and_count(), 1);
        let out = crate::sim::evaluate(&aig, &[true, true]);
        assert_eq!(out, vec![true]);
        let out = crate::sim::evaluate(&aig, &[true, false]);
        assert_eq!(out, vec![false]);
    }

    #[test]
    fn rejects_latches() {
        let text = "aag 4 2 1 1 1\n2\n4\n6 8\n8\n8 2 4\n";
        assert!(from_aiger_ascii(text).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_aiger_ascii("").is_err());
        assert!(from_aiger_ascii("aig 1 1 0 1 0\n2\n2\n").is_err());
        assert!(from_aiger_ascii("aag 1 1 0 1\n2\n2\n").is_err());
        // Odd input literal.
        assert!(from_aiger_ascii("aag 1 1 0 1 0\n3\n2\n").is_err());
        // Undefined output.
        assert!(from_aiger_ascii("aag 1 1 0 1 0\n2\n8\n").is_err());
    }

    #[test]
    fn constant_outputs_serialize() {
        let mut aig = Aig::new();
        let _ = aig.input();
        aig.output(Lit::TRUE);
        let text = to_aiger_ascii(&aig);
        let parsed = from_aiger_ascii(&text).expect("parses");
        assert_eq!(crate::sim::evaluate(&parsed, &[false]), vec![true]);
    }

    #[test]
    fn binary_roundtrip_preserves_function() {
        let aig = sample_aig();
        let bytes = to_aiger_binary(&aig);
        let parsed = from_aiger_binary(&bytes).expect("own output parses");
        assert_eq!(parsed.input_count(), aig.input_count());
        assert_eq!(parsed.output_count(), aig.output_count());
        assert!(equivalent(&aig, &parsed, 0xB1B2, 8));
    }

    #[test]
    fn auto_detects_both_formats() {
        let aig = sample_aig();
        let ascii = to_aiger_ascii(&aig);
        let binary = to_aiger_binary(&aig);
        let from_ascii = from_aiger_auto(ascii.as_bytes()).expect("ascii parses");
        let from_binary = from_aiger_auto(&binary).expect("binary parses");
        assert!(equivalent(&from_ascii, &from_binary, 7, 8));
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(from_aiger_binary(b"").is_err());
        assert!(from_aiger_binary(b"aag 1 1 0 1 0\n2\n2\n").is_err());
        // Latches.
        assert!(from_aiger_binary(b"aig 2 1 1 0 0\n2\n").is_err());
        // Header M != I + A.
        assert!(from_aiger_binary(b"aig 9 1 0 1 0\n2\n").is_err());
        // Truncated AND section.
        assert!(from_aiger_binary(b"aig 3 2 0 1 1\n6\n").is_err());
        // Delta varint overflowing 32 bits must be rejected, not
        // silently truncated into a different (valid-looking) circuit.
        assert!(from_aiger_binary(b"aig 3 2 0 1 1\n6\n\xFF\xFF\xFF\xFF\x7F\x00").is_err());
        assert!(from_aiger_binary(b"aig 3 2 0 1 1\n6\n\x80\x80\x80\x80\x80\x01\x00").is_err());
        // Absurd header counts must be a parse error, not an
        // allocation-failure abort or an integer overflow.
        assert!(from_aiger_binary(b"aig 4000000000000 4000000000000 0 0 0\n").is_err());
        assert!(from_aiger_binary(b"aig 200000000 200000000 0 0 0\n").is_err());
        assert!(from_aiger_binary(b"aig 1000000 0 0 1000000 0\n2\n").is_err());
        let max = usize::MAX;
        let overflow = format!("aig {max} {max} 0 0 {max}\n");
        assert!(from_aiger_binary(overflow.as_bytes()).is_err());
    }

    #[test]
    fn binary_varints_cover_multi_byte_deltas() {
        // A wide OR forces AND deltas beyond one varint byte.
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..80).map(|_| aig.input()).collect();
        // Serial chain so late ANDs reference early inputs (big deltas).
        let mut acc = aig.and(xs[0], xs[1]);
        for &x in &xs[2..] {
            acc = aig.and(acc, x);
        }
        aig.output(acc);
        let bytes = to_aiger_binary(&aig);
        let parsed = from_aiger_binary(&bytes).expect("parses");
        assert!(equivalent(&aig, &parsed, 3, 8));
    }

    #[test]
    fn benchmark_roundtrip() {
        // A real generated circuit survives the round trip.
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..6).map(|_| aig.input()).collect();
        let p = aig.xor_many(&xs);
        let q = aig.and_many(&xs[..3]);
        let f = aig.mux(p, q, xs[5]);
        aig.output(f);
        let text = to_aiger_ascii(&aig);
        let parsed = from_aiger_ascii(&text).expect("parses");
        assert!(equivalent(&aig, &parsed, 99, 16));
    }
}
