//! DAG-aware cut rewriting (ABC's `rewrite`, NPN-class based).
//!
//! Every 4-input cut function falls into one of the 222 NPN classes; a
//! process-wide [`RewriteLibrary`] stores one precomputed compact AIG
//! subgraph per class (built once behind a `OnceLock`, like the engine's
//! NPN match caches). The [`rewrite`] pass walks the network in
//! topological order, and for each AND node prices every non-trivial
//! 4-cut: the class subgraph is instantiated *on paper* against the
//! output graph's structural hash ([`crate::Aig::find_and`]) to count the
//! nodes it would add, and the cut's MFFC (maximal fanout-free cone — the
//! nodes only this root keeps alive) is dereferenced to count the nodes
//! it would free. The best positive-gain candidate replaces the node;
//! with [`RewriteConfig::zero_gain`] (`rw -z`) zero-gain replacements are
//! taken too, perturbing the structure so that later passes can escape
//! local minima.
//!
//! The pass never grows the network: if the rewritten result ends up
//! larger after cleanup (possible in principle, since gains are estimated
//! against the evolving output graph), the cleaned input is returned
//! unchanged.

use crate::cuts::{CutConfig, CutDb, CutSource};
use crate::graph::{compose_maps, Aig, Lit, Node};
use logic::npn::{npn_canon, NpnCanon};
use logic::sop::isop;
use logic::TruthTable;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Rewriting knobs.
#[derive(Clone, Copy, Debug)]
pub struct RewriteConfig {
    /// Accept zero-gain replacements (`rw -z`): the node count stays the
    /// same but the structure changes, enabling later passes to improve.
    pub zero_gain: bool,
    /// Depth-aware mode (`rw -l`): reject any candidate whose dry-run
    /// root level exceeds the level the root would get from the plain
    /// structural copy, so a size gain can never buy local depth growth.
    pub level_aware: bool,
    /// Priority-cut cap per node (cut width is fixed at 4 — the library
    /// covers exactly the 4-variable NPN classes).
    pub max_cuts: usize,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        Self {
            zero_gain: false,
            level_aware: false,
            max_cuts: 8,
        }
    }
}

/// The precomputed optimal-subgraph library: one compact AIG structure
/// per 4-variable NPN class, all sharing one structurally hashed arena.
///
/// Built once per process via [`library`]; construction enumerates the
/// 65 536 four-variable functions, synthesizes each class representative
/// through best-of decompositions (AND/OR/XOR cofactor splits, both-phase
/// irredundant SOPs, Shannon muxes) and marks the representative's whole
/// NPN orbit as classified, so only the 222 class reps are synthesized.
#[derive(Debug)]
pub struct RewriteLibrary {
    /// The shared arena: exactly four primary inputs plus the class
    /// subgraphs (structurally hashed across classes). Input `k` of the
    /// arena is variable `k` of every stored function.
    arena: Aig,
    /// Canonical truth-table bits → root literal realizing the canonical
    /// function over the arena leaves.
    classes: HashMap<u64, Lit>,
    /// Root node → its cone in topological (ascending-index) order,
    /// precomputed so pricing/instantiating a cut never re-walks the
    /// arena.
    cones: HashMap<u32, Vec<u32>>,
}

/// A priced replacement: the class subgraph plus the pin binding that
/// makes it compute a concrete cut function over concrete leaf literals.
#[derive(Clone, Debug)]
pub struct Plan {
    root: Lit,
    pins: [Lit; 4],
    output_flip: bool,
}

/// A dry-run literal: either an existing literal of the target graph or
/// a virtual literal over a node the plan would create (identified by
/// the arena node that first produced it, with the complement in bit 0 —
/// mirroring [`Lit`]'s encoding).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum DryLit {
    Real(Lit),
    New(u32),
}

impl DryLit {
    const FALSE: DryLit = DryLit::Real(Lit::FALSE);
    const TRUE: DryLit = DryLit::Real(Lit::TRUE);

    /// A fresh positive virtual literal for arena node `n`.
    fn fresh(n: u32) -> DryLit {
        DryLit::New(n << 1)
    }

    fn not(self) -> DryLit {
        match self {
            DryLit::Real(l) => DryLit::Real(l.not()),
            DryLit::New(v) => DryLit::New(v ^ 1),
        }
    }
}

/// Operand-order-independent key for the virtual structural hash
/// (mirrors `Aig::and` sorting its operand pair).
fn normalize_pair(a: DryLit, b: DryLit) -> (DryLit, DryLit) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

static LIBRARY: OnceLock<RewriteLibrary> = OnceLock::new();
static LIBRARY_BUILDS: AtomicUsize = AtomicUsize::new(0);

/// The process-wide rewrite library. The first call builds it (a few
/// milliseconds); every later call from any thread returns the same
/// `&'static` reference. `ambipolar::engine::rewrite_library` re-exports
/// this next to the library and match caches it manages.
pub fn library() -> &'static RewriteLibrary {
    LIBRARY.get_or_init(|| {
        LIBRARY_BUILDS.fetch_add(1, Ordering::Relaxed);
        RewriteLibrary::new()
    })
}

/// How many times the rewrite library has been built in this process
/// (test hook: at most once, however many passes ran).
pub fn library_build_count() -> usize {
    LIBRARY_BUILDS.load(Ordering::Relaxed)
}

impl RewriteLibrary {
    /// Builds the library from scratch. Prefer [`library`] (the shared
    /// instance); this constructor exists for benchmarks that time the
    /// cold build.
    pub fn new() -> Self {
        let mut arena = Aig::new();
        let leaves = [arena.input(), arena.input(), arena.input(), arena.input()];
        let mut builder = Builder {
            arena,
            leaves,
            memo: HashMap::new(),
        };
        let mut classes = HashMap::new();
        let mut seen = vec![false; 1 << 16];
        let perms = permutations4();
        for bits in 0..(1u64 << 16) {
            if seen[bits as usize] {
                continue;
            }
            // Ascending enumeration means the first unseen member of a
            // class is its canonical representative (minimal packed bits).
            let f = TruthTable::from_bits(4, bits);
            debug_assert_eq!(npn_canon(f).canonical.bits(), bits);
            let root = builder.build_fn(f);
            classes.insert(bits, root);
            mark_orbit(f, &perms, &mut seen);
        }
        // The builder's arena holds every candidate it ever tried;
        // compact to the union of the winning cones — the rewrite hot
        // loop walks these, so a small arena pays on every cut priced.
        let (arena, classes) = compact(&builder.arena, &classes);
        // Each class cone is static; precompute it once (topological
        // order = ascending node index) instead of re-deriving it per
        // priced cut.
        let mut cones: HashMap<u32, Vec<u32>> = HashMap::new();
        for &root in classes.values() {
            cones
                .entry(root.node())
                .or_insert_with(|| cone_of(&arena, root));
        }
        Self {
            arena,
            classes,
            cones,
        }
    }

    /// Number of NPN classes indexed (222 for four variables).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// AND nodes in the shared arena (structures overlap, so this is far
    /// below the sum of per-class cone sizes).
    pub fn and_count(&self) -> usize {
        self.arena.and_count()
    }

    /// The canonical functions and their subgraph roots, for exhaustive
    /// verification (iteration order is unspecified).
    pub fn class_roots(&self) -> impl Iterator<Item = (TruthTable, Lit)> + '_ {
        self.classes
            .iter()
            .map(|(&bits, &root)| (TruthTable::from_bits(4, bits), root))
    }

    /// The function a subgraph root computes over the arena leaves —
    /// evaluated by simulation, independent of how the structure was
    /// built (verification hook).
    pub fn realized_function(&self, root: Lit) -> TruthTable {
        let mut tts: Vec<TruthTable> = Vec::with_capacity(self.arena.len());
        for node in self.arena.nodes() {
            let tt = match node {
                Node::Const => TruthTable::zero(4),
                Node::Input(k) => TruthTable::var(4, k as usize),
                Node::And(a, b) => {
                    let ta = edge_tt(tts[a.node() as usize], a);
                    let tb = edge_tt(tts[b.node() as usize], b);
                    ta & tb
                }
            };
            tts.push(tt);
        }
        edge_tt(tts[root.node() as usize], root)
    }

    /// Binds the class subgraph of a canonized cut function to concrete
    /// leaf literals: pin `v` of the subgraph reads
    /// `leaf_lits[inv_perm(v)]`, complemented per the inverse transform's
    /// input flips (the inverse transform maps the canonical
    /// representative back onto the original function). `leaf_lits[i]`
    /// carries variable `i` of the canonized function; missing trailing
    /// variables are irrelevant and bind to constant false.
    pub fn plan(&self, canon: &NpnCanon, leaf_lits: &[Lit]) -> Plan {
        let root = *self
            .classes
            .get(&canon.canonical.bits())
            .expect("the library indexes every 4-variable NPN class");
        let u = canon.transform.inverse();
        let mut inv_perm = [0usize; 4];
        for k in 0..4 {
            inv_perm[u.perm[k] as usize] = k;
        }
        let mut pins = [Lit::FALSE; 4];
        for (v, pin) in pins.iter_mut().enumerate() {
            let src = inv_perm[v];
            let base = leaf_lits.get(src).copied().unwrap_or(Lit::FALSE);
            *pin = if (u.input_flips >> v) & 1 == 1 {
                base.not()
            } else {
                base
            };
        }
        Plan {
            root,
            pins,
            output_flip: u.output_flip,
        }
    }

    /// Canonizes `f` (up to four variables) and builds its class subgraph
    /// into `out` over the given leaf literals (`leaf_lits[i]` = variable
    /// `i` of `f`). Convenience entry for tests and one-off callers; the
    /// rewriting pass prices plans with [`RewriteLibrary::count_new`]
    /// first.
    pub fn realize(&self, out: &mut Aig, f: TruthTable, leaf_lits: &[Lit]) -> Lit {
        assert!(f.n_vars() <= 4, "the rewrite library covers 4-input cuts");
        let f4 = f.extend_to(4);
        let plan = self.plan(&npn_canon(f4), leaf_lits);
        self.instantiate(out, &plan)
    }

    /// The precomputed cone of a class root, in topological order.
    fn cone(&self, root: Lit) -> &[u32] {
        self.cones
            .get(&root.node())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Exactly how many AND nodes [`RewriteLibrary::instantiate`] would
    /// allocate in `out` for this plan, without committing anything: cone
    /// nodes whose fanins all resolve to existing literals are folded or
    /// probed against `out`'s structural hash; would-be-new nodes get
    /// *virtual* identities so that the folding rules — and structural
    /// hashing among the new nodes themselves — apply to them exactly as
    /// `Aig::and` would. (Distinct arena nodes can collapse to one new
    /// node when pin substitution makes their fanin pairs coincide, e.g.
    /// when two cut leaves map to the same literal; counting per arena
    /// node would over-price such plans.)
    pub fn count_new(&self, out: &Aig, plan: &Plan) -> usize {
        self.count_new_with_level(out, out.node_levels(), plan).0
    }

    /// Like [`RewriteLibrary::count_new`], additionally returning the
    /// logic level the plan's root would have in `out` (`out_levels` is
    /// the per-node level array of `out`, maintained incrementally by
    /// the rewriting pass). Virtual nodes get
    /// `1 + max(level(fanin_a), level(fanin_b))` exactly as the
    /// committed instantiation would; folds and strash hits take the
    /// level of the literal they resolve to. The depth-aware `rw -l`
    /// mode prices candidates with this before committing anything.
    pub fn count_new_with_level(&self, out: &Aig, out_levels: &[u32], plan: &Plan) -> (usize, u32) {
        let mut count = 0usize;
        let mut resolved: HashMap<u32, DryLit> = HashMap::new();
        // Level of each virtual literal, keyed by its `DryLit::New`
        // payload with the complement bit cleared.
        let mut virt_level: HashMap<u32, u32> = HashMap::new();
        let level_of = |l: DryLit, virt_level: &HashMap<u32, u32>| -> u32 {
            match l {
                DryLit::Real(x) => out_levels[x.node() as usize],
                DryLit::New(v) => virt_level[&(v & !1)],
            }
        };
        // Structural hash of the virtual nodes: normalized fanin pair →
        // the virtual literal standing for that new AND.
        let mut virtual_strash: HashMap<(DryLit, DryLit), DryLit> = HashMap::new();
        for &n in self.cone(plan.root) {
            let Node::And(a, b) = self.arena.node(n) else {
                unreachable!("cone contains only AND nodes");
            };
            let fa = self.resolve_edge(a, &plan.pins, &resolved);
            let fb = self.resolve_edge(b, &plan.pins, &resolved);
            let mut fresh = |fa: DryLit, fb: DryLit, virt_level: &mut HashMap<u32, u32>| {
                let lvl = 1 + level_of(fa, virt_level).max(level_of(fb, virt_level));
                *virtual_strash
                    .entry(normalize_pair(fa, fb))
                    .or_insert_with(|| {
                        count += 1;
                        let l = DryLit::fresh(n);
                        virt_level.insert(n << 1, lvl);
                        l
                    })
            };
            let r = match (fa, fb) {
                (DryLit::Real(x), DryLit::Real(y)) => match out.find_and(x, y) {
                    Some(hit) => DryLit::Real(hit),
                    None => fresh(fa, fb, &mut virt_level),
                },
                // The trivial cases `Aig::and` folds without allocating,
                // now applicable to virtual operands too.
                _ if fa == DryLit::FALSE || fb == DryLit::FALSE || fa == fb.not() => DryLit::FALSE,
                _ if fa == DryLit::TRUE => fb,
                _ if fb == DryLit::TRUE || fa == fb => fa,
                _ => fresh(fa, fb, &mut virt_level),
            };
            resolved.insert(n, r);
        }
        let root = self.resolve_edge(plan.root, &plan.pins, &resolved);
        (count, level_of(root, &virt_level))
    }

    /// Builds the plan's subgraph into `out`, returning the literal that
    /// computes the planned function. Structural hashing in `out` reuses
    /// every node that already exists.
    pub fn instantiate(&self, out: &mut Aig, plan: &Plan) -> Lit {
        let mut built: HashMap<u32, Lit> = HashMap::new();
        for &n in self.cone(plan.root) {
            let Node::And(a, b) = self.arena.node(n) else {
                unreachable!("cone contains only AND nodes");
            };
            let fa = self.built_edge(a, &plan.pins, &built);
            let fb = self.built_edge(b, &plan.pins, &built);
            built.insert(n, out.and(fa, fb));
        }
        let lit = self.built_edge(plan.root, &plan.pins, &built);
        if plan.output_flip {
            lit.not()
        } else {
            lit
        }
    }

    /// Resolves an arena edge for the dry run: a real `out` literal, or a
    /// virtual literal standing for a node that would have to be created.
    fn resolve_edge(&self, e: Lit, pins: &[Lit; 4], resolved: &HashMap<u32, DryLit>) -> DryLit {
        let base = match self.arena.node(e.node()) {
            Node::Const => DryLit::FALSE,
            Node::Input(k) => DryLit::Real(pins[k as usize]),
            Node::And(_, _) => resolved[&e.node()],
        };
        if e.is_complement() {
            base.not()
        } else {
            base
        }
    }

    /// Resolves an arena edge during committed instantiation.
    fn built_edge(&self, e: Lit, pins: &[Lit; 4], built: &HashMap<u32, Lit>) -> Lit {
        let base = match self.arena.node(e.node()) {
            Node::Const => Lit::FALSE,
            Node::Input(k) => pins[k as usize],
            Node::And(_, _) => built[&e.node()],
        };
        if e.is_complement() {
            base.not()
        } else {
            base
        }
    }
}

impl Default for RewriteLibrary {
    fn default() -> Self {
        Self::new()
    }
}

fn edge_tt(tt: TruthTable, e: Lit) -> TruthTable {
    if e.is_complement() {
        !tt
    } else {
        tt
    }
}

/// Nodes of the cone of `root` in `arena`, ascending (= topological)
/// order, stopping at inputs and the constant.
fn cone_of(arena: &Aig, root: Lit) -> Vec<u32> {
    let mut in_cone = vec![false; arena.len()];
    let mut stack = vec![root.node()];
    while let Some(n) = stack.pop() {
        if in_cone[n as usize] {
            continue;
        }
        if let Node::And(a, b) = arena.node(n) {
            in_cone[n as usize] = true;
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    (0..arena.len() as u32)
        .filter(|&n| in_cone[n as usize])
        .collect()
}

/// Rebuilds the builder's arena keeping only the union of the winning
/// class cones (the builder tries many candidate structures per class
/// and abandons the losers in place), remapping the class roots.
fn compact(arena: &Aig, classes: &HashMap<u64, Lit>) -> (Aig, HashMap<u64, Lit>) {
    let mut needed = vec![false; arena.len()];
    for root in classes.values() {
        let mut stack = vec![root.node()];
        while let Some(n) = stack.pop() {
            if needed[n as usize] {
                continue;
            }
            if let Node::And(a, b) = arena.node(n) {
                needed[n as usize] = true;
                stack.push(a.node());
                stack.push(b.node());
            }
        }
    }
    let mut out = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; arena.len()];
    for &i in arena.input_nodes() {
        map[i as usize] = out.input();
    }
    for n in 0..arena.len() {
        if !needed[n] {
            continue;
        }
        let Node::And(a, b) = arena.node(n as u32) else {
            continue;
        };
        let fa = edge(map[a.node() as usize], a);
        let fb = edge(map[b.node() as usize], b);
        map[n] = out.and(fa, fb);
    }
    let remapped = classes
        .iter()
        .map(|(&bits, &root)| (bits, edge(map[root.node() as usize], root)))
        .collect();
    (out, remapped)
}

/// All 24 permutations of `[0, 1, 2, 3]`.
fn permutations4() -> Vec<[usize; 4]> {
    let mut out = Vec::with_capacity(24);
    let mut items = [0usize, 1, 2, 3];
    heap_permute(&mut items, 0, &mut out);
    out
}

fn heap_permute(items: &mut [usize; 4], at: usize, out: &mut Vec<[usize; 4]>) {
    if at == items.len() {
        out.push(*items);
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        heap_permute(items, at + 1, out);
        items.swap(at, i);
    }
}

/// Marks every member of `f`'s NPN orbit as classified.
fn mark_orbit(f: TruthTable, perms: &[[usize; 4]], seen: &mut [bool]) {
    for perm in perms {
        let permuted = f.permute(perm);
        // Gray-code walk over input flips: one cheap `flip_var` per step.
        let mut cur = permuted;
        for gray in 0u16..16 {
            if gray > 0 {
                cur = cur.flip_var(gray.trailing_zeros() as usize);
            }
            seen[cur.bits() as usize] = true;
            seen[(!cur).bits() as usize] = true;
        }
    }
}

/// The library construction scratch: the arena plus a function → literal
/// memo shared across classes (cofactors recur heavily).
struct Builder {
    arena: Aig,
    leaves: [Lit; 4],
    memo: HashMap<u64, Lit>,
}

impl Builder {
    fn build_fn(&mut self, f: TruthTable) -> Lit {
        if let Some(&l) = self.memo.get(&f.bits()) {
            return l;
        }
        let lit = self.build_uncached(f);
        self.memo.insert(f.bits(), lit);
        lit
    }

    fn build_uncached(&mut self, f: TruthTable) -> Lit {
        if f.is_zero() {
            return Lit::FALSE;
        }
        if f.is_one() {
            return Lit::TRUE;
        }
        for v in 0..4 {
            let x = TruthTable::var(4, v);
            if f == x {
                return self.leaves[v];
            }
            if f == !x {
                return self.leaves[v].not();
            }
        }
        let support: Vec<usize> = (0..4).filter(|&v| f.depends_on(v)).collect();
        let mut candidates: Vec<Lit> = Vec::new();
        // Cofactor decompositions: f = x·c1, x̄·c0, x + c0, x̄ + c1, x ⊕ c0.
        for &v in &support {
            let c0 = f.cofactor0(v);
            let c1 = f.cofactor1(v);
            let x = self.leaves[v];
            if c0.is_zero() {
                let g = self.build_fn(c1);
                candidates.push(self.arena.and(x, g));
            } else if c1.is_zero() {
                let g = self.build_fn(c0);
                candidates.push(self.arena.and(x.not(), g));
            } else if c1.is_one() {
                let g = self.build_fn(c0);
                candidates.push(self.arena.or(x, g));
            } else if c0.is_one() {
                let g = self.build_fn(c1);
                candidates.push(self.arena.or(x.not(), g));
            } else if c0 == !c1 {
                let g = self.build_fn(c0);
                candidates.push(self.arena.xor(x, g));
            }
        }
        // Irredundant SOPs of both phases.
        let pos = isop(f);
        let lit = self.sop_lit(&pos);
        candidates.push(lit);
        let neg = isop(!f);
        let lit = self.sop_lit(&neg);
        candidates.push(lit.not());
        // Shannon muxes (only useful when no cheap decomposition exists,
        // but cost selection sorts that out).
        for &v in &support {
            let g1 = self.build_fn(f.cofactor1(v));
            let g0 = self.build_fn(f.cofactor0(v));
            candidates.push(self.arena.mux(self.leaves[v], g1, g0));
        }
        candidates
            .into_iter()
            .min_by_key(|&l| {
                (
                    cone_size(&self.arena, l),
                    self.arena.level(l.node()),
                    l.0, // deterministic final tie-break
                )
            })
            .expect("at least the SOP candidates exist")
    }

    fn sop_lit(&mut self, cover: &[logic::Cube]) -> Lit {
        let mut terms = Vec::with_capacity(cover.len());
        for cube in cover {
            let mut lits = Vec::new();
            for (v, &leaf) in self.leaves.iter().enumerate() {
                if (cube.care >> v) & 1 == 1 {
                    lits.push(if (cube.polarity >> v) & 1 == 1 {
                        leaf
                    } else {
                        leaf.not()
                    });
                }
            }
            terms.push(self.arena.and_many(&lits));
        }
        self.arena.or_many(&terms)
    }
}

/// AND nodes in the cone of `lit` (stopping at inputs and the constant).
fn cone_size(aig: &Aig, lit: Lit) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![lit.node()];
    let mut count = 0usize;
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        if let Node::And(a, b) = aig.node(n) {
            count += 1;
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    count
}

/// One rewriting pass with default configuration (positive gain only).
/// See [`rewrite_with`].
pub fn rewrite(aig: &Aig) -> Aig {
    rewrite_with(aig, &RewriteConfig::default())
}

/// Minimum AND nodes on one level before candidate scoring fans the
/// level out across worker threads.
const PAR_LEVEL_THRESHOLD: usize = 16;

/// The commit-independent half of one cut candidate's price, computed in
/// the parallel scoring phase: everything that is a pure function of the
/// *input* graph (cut function, NPN canonization, MFFC size). The
/// out-graph-dependent half — pin binding, structural-hash dry run, level
/// pricing — stays in the serial commit loop.
struct ScoredCut {
    /// Cut leaves in support order (the pin binding order).
    leaf_nodes: Vec<u32>,
    canon: NpnCanon,
    /// MFFC size: AND nodes freed if the root is re-expressed over the
    /// leaves.
    freed: i64,
}

/// One DAG-aware rewriting pass. The returned AIG is functionally
/// equivalent and never larger than the (cleaned) input; callers — the
/// [`Flow`](crate::synth::Flow) engine — additionally gate acceptance on
/// their own criteria and, in debug builds, on a SAT equivalence proof.
///
/// The pass is split into a scoring phase and a commit phase. Scoring —
/// cut truth tables, NPN canonization, MFFC sizing — depends only on the
/// immutable input graph, so it fans out over topological levels
/// (order-preserving `par_iter`, serial fallback under the level-size
/// threshold) and is bit-identical to serial at any thread count. The
/// commit loop walks nodes in order exactly as before, pricing each
/// pre-scored candidate against the evolving output graph.
pub fn rewrite_with(aig: &Aig, config: &RewriteConfig) -> Aig {
    let mut db = CutDb::new(CutConfig {
        k: 4,
        max_cuts: config.max_cuts,
    });
    rewrite_clean(aig, config, &mut db).0
}

/// [`rewrite_core`] behind the same input `cleanup` the public wrapper
/// performs — the pass's result must not depend on whether the caller
/// hands it a compact network, and the commit loop walks the arena in
/// index order, so a dangling node or a different numbering would shift
/// its tie-breaks. The database arrives keyed to `aig`, is retargeted
/// onto the cleaned copy for the core, and is re-keyed to `aig`'s node
/// space afterwards so the caller's bookkeeping (the flow retargets it
/// through the returned map on acceptance) stays valid. The returned
/// map is over `aig`'s node space: the cleanup map composed with the
/// core's.
pub(crate) fn rewrite_clean(
    aig: &Aig,
    config: &RewriteConfig,
    db: &mut CutDb,
) -> (Aig, Vec<Option<Lit>>) {
    let (clean, to_clean) = aig.cleanup_with_map();
    db.retarget(aig, &clean, &to_clean);
    let (out, core_map) = rewrite_core(&clean, config, db);
    // The cleanup map is injective on surviving nodes, so it inverts
    // into a clean-node → old-literal map that re-keys the database.
    let mut from_clean: Vec<Option<Lit>> = vec![None; clean.len()];
    from_clean[0] = Some(Lit::FALSE);
    for (i, slot) in to_clean.iter().enumerate() {
        if let Some(l) = slot {
            if l.node() != 0 {
                from_clean[l.node() as usize] = Some(Lit::new(i as u32, l.is_complement()));
            }
        }
    }
    db.retarget(&clean, aig, &from_clean);
    let map = to_clean
        .iter()
        .map(|slot| {
            slot.and_then(|l| {
                core_map[l.node() as usize].map(|m| if l.is_complement() { m.not() } else { m })
            })
        })
        .collect();
    (out, map)
}

/// [`rewrite_with`] against a persistent cut database: cuts of `aig` are
/// taken from (and missing ones computed into) `db`, and the old-node →
/// new-literal map of the transformation is returned alongside the
/// network so the caller can retarget its databases. Unlike the public
/// wrapper this does not clean up the input first — the flow engine
/// always hands it a compact network the database is keyed to.
pub(crate) fn rewrite_core(
    aig: &Aig,
    config: &RewriteConfig,
    db: &mut CutDb,
) -> (Aig, Vec<Option<Lit>>) {
    let lib = library();
    let input = aig;
    db.ensure(input);
    let cuts: &CutDb = db;
    let refs = input.fanout_counts();

    // Scoring phase: pure per-(node, cut) work over the fixed input.
    let score_node = |idx: u32, memo: &mut HashMap<u64, NpnCanon>| -> Vec<ScoredCut> {
        cuts.cuts_of(idx)
            .iter()
            .filter(|cut| !cut.is_trivial(idx))
            .map(|cut| {
                let (fs, leaf_nodes) = cut.function_over_support();
                let f4 = fs.extend_to(4);
                let canon = *memo.entry(f4.bits()).or_insert_with(|| npn_canon(f4));
                let freed = mffc_size_ro(input, idx, &cut.leaves, refs) as i64;
                ScoredCut {
                    leaf_nodes,
                    canon,
                    freed,
                }
            })
            .collect()
    };
    let mut scored: Vec<Vec<ScoredCut>> = Vec::new();
    scored.resize_with(input.len(), Vec::new);
    // Per-pass canonization memo: the same cut function recurs across
    // many nodes (mirrors the mapper's `Matcher`). Parallel tasks use
    // per-task memos instead — canonization is deterministic, so the
    // values cannot differ, only the cache locality does.
    let mut canon_memo: HashMap<u64, NpnCanon> = HashMap::new();
    let parallel = rayon::current_num_threads() > 1;
    for level in input.and_level_groups() {
        if parallel && level.len() >= PAR_LEVEL_THRESHOLD {
            let computed: Vec<Vec<ScoredCut>> = level
                .par_iter()
                .map(|&i| score_node(i, &mut HashMap::new()))
                .collect();
            for (&i, s) in level.iter().zip(computed) {
                scored[i as usize] = s;
            }
        } else {
            for &i in &level {
                scored[i as usize] = score_node(i, &mut canon_memo);
            }
        }
    }

    // Commit phase: serial, in node order, pricing against the evolving
    // output graph (whose arena maintains levels incrementally, so the
    // depth-aware mode reads them for free).
    let mut out = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; input.len()];
    for &i in input.input_nodes() {
        map[i as usize] = out.input();
    }
    let threshold = if config.zero_gain { 0 } else { 1 };
    for idx in 0..input.len() {
        let Node::And(a, b) = input.node(idx as u32) else {
            continue;
        };
        // The level the root gets from the plain structural copy — the
        // bar a depth-aware candidate must not exceed.
        let copy_level = {
            let fa = edge(map[a.node() as usize], a);
            let fb = edge(map[b.node() as usize], b);
            match out.find_and(fa, fb) {
                Some(hit) => out.level(hit.node()),
                None => 1 + out.level(fa.node()).max(out.level(fb.node())),
            }
        };
        let mut best: Option<(i64, i64, Plan)> = None;
        for sc in &scored[idx] {
            let leaf_lits: Vec<Lit> = sc.leaf_nodes.iter().map(|&n| map[n as usize]).collect();
            let plan = lib.plan(&sc.canon, &leaf_lits);
            let (added, root_level) = lib.count_new_with_level(&out, out.node_levels(), &plan);
            if config.level_aware && root_level > copy_level {
                continue;
            }
            let gain = sc.freed - added as i64;
            if best.as_ref().is_none_or(|(g, _, _)| gain > *g) {
                best = Some((gain, added as i64, plan));
            }
        }
        map[idx] = match best {
            Some((gain, added, plan)) if gain >= threshold => {
                let before = out.and_count();
                let lit = lib.instantiate(&mut out, &plan);
                debug_assert_eq!(
                    (out.and_count() - before) as i64,
                    added,
                    "dry-run pricing must match committed instantiation"
                );
                lit
            }
            _ => {
                let fa = edge(map[a.node() as usize], a);
                let fb = edge(map[b.node() as usize], b);
                out.and(fa, fb)
            }
        };
    }
    for o in input.output_lits() {
        let l = edge(map[o.node() as usize], *o);
        out.output(l);
    }
    let (result, cleanup_map) = out.cleanup_with_map();
    if result.and_count() > input.and_count() {
        // No-growth guard: fall back to the input unchanged, with the
        // identity map (every node survives as itself).
        let identity = (0..input.len())
            .map(|i| Some(Lit::new(i as u32, false)))
            .collect();
        (input.clone(), identity)
    } else {
        let node_map = compose_maps(&map, &cleanup_map);
        (result, node_map)
    }
}

fn edge(mapped: Lit, e: Lit) -> Lit {
    if e.is_complement() {
        mapped.not()
    } else {
        mapped
    }
}

/// Size of the maximal fanout-free cone of `root` above `leaves`: the AND
/// nodes (root included) that die when the root is re-expressed over the
/// leaves — the classic dereference walk, run against a *read-only*
/// fanout array. Decrements are tracked in a small per-call overlay map,
/// so concurrent scoring tasks can share one `refs` slice without cloning
/// it or taking turns; the cone of a 4-cut is a handful of nodes, so the
/// overlay stays tiny.
fn mffc_size_ro(aig: &Aig, root: u32, leaves: &[u32], refs: &[u32]) -> usize {
    let mut overlay: HashMap<u32, u32> = HashMap::new();
    deref_ro(aig, root, leaves, refs, &mut overlay)
}

fn deref_ro(
    aig: &Aig,
    node: u32,
    leaves: &[u32],
    refs: &[u32],
    overlay: &mut HashMap<u32, u32>,
) -> usize {
    let Node::And(a, b) = aig.node(node) else {
        return 0;
    };
    let mut count = 1;
    for e in [a, b] {
        let f = e.node();
        if leaves.binary_search(&f).is_ok() {
            continue;
        }
        let remaining = *overlay.get(&f).unwrap_or(&refs[f as usize]) - 1;
        overlay.insert(f, remaining);
        if remaining == 0 {
            count += deref_ro(aig, f, leaves, refs, overlay);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_equivalence;
    use crate::check::Equivalence;

    #[test]
    fn library_covers_every_class_once() {
        let lib = library();
        assert_eq!(
            lib.class_count(),
            222,
            "four variables have exactly 222 NPN classes"
        );
        assert!(library_build_count() <= 1);
    }

    #[test]
    fn every_class_subgraph_realizes_its_canonical_function() {
        // The acceptance-criterion exhaustive check: simulate every class
        // subgraph and compare against the canonical representative.
        let lib = library();
        let mut checked = 0;
        for (canonical, root) in lib.class_roots() {
            assert_eq!(
                lib.realized_function(root),
                canonical,
                "class {canonical:?} structure is wrong"
            );
            checked += 1;
        }
        assert_eq!(checked, 222);
    }

    #[test]
    fn realize_reconstructs_sampled_functions_through_npn_transforms() {
        // Instantiation goes through the inverse NPN transform; exercise
        // it on a deterministic sample of raw (non-canonical) functions,
        // verified by bit-parallel simulation of the built structure.
        let lib = library();
        let vars = [
            logic::truthtable::VAR_MASK[0],
            logic::truthtable::VAR_MASK[1],
            logic::truthtable::VAR_MASK[2],
            logic::truthtable::VAR_MASK[3],
        ];
        for bits in (0u64..(1 << 16)).step_by(13) {
            let f = TruthTable::from_bits(4, bits);
            let mut aig = Aig::new();
            let leaf_lits: Vec<Lit> = (0..4).map(|_| aig.input()).collect();
            let lit = lib.realize(&mut aig, f, &leaf_lits);
            aig.output(lit);
            let word = crate::sim::simulate64(&aig, &vars)[0];
            assert_eq!(word & 0xFFFF, bits, "realize({bits:#06x}) diverges");
        }
    }

    #[test]
    fn count_new_matches_committed_instantiation() {
        let lib = library();
        let mut out = Aig::new();
        let leaf_lits: Vec<Lit> = (0..4).map(|_| out.input()).collect();
        // Instantiate a mix of functions twice: the second build must be
        // fully shared (count 0) and the dry-run must predict both.
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 2);
        let d = TruthTable::var(4, 3);
        for f in [(a & b) | (c & d), a ^ b ^ c ^ d, (a | b) & !(c | d)] {
            for round in 0..2 {
                let plan = lib.plan(&npn_canon(f), &leaf_lits);
                let predicted = lib.count_new(&out, &plan);
                let before = out.and_count();
                let lit = lib.instantiate(&mut out, &plan);
                assert_eq!(out.and_count() - before, predicted, "round {round}");
                if round == 1 {
                    assert_eq!(predicted, 0, "second build must be fully shared");
                }
                let _ = lit;
            }
        }
    }

    #[test]
    fn count_new_is_exact_with_coincident_pins() {
        // When pin substitution maps distinct cut leaves onto the same
        // literal (which happens once earlier rewrites strash-merge
        // functionally equal nodes), distinct arena nodes can collapse
        // into one new node. The dry run must price that exactly — its
        // virtual structural hash mirrors `Aig::and`. Regression: the
        // per-arena-node counting over-predicted (e.g. 6 vs 3 for
        // f = 0x011f bound to [a, a, c, c]).
        let lib = library();
        for bits in (0u64..(1 << 16)).step_by(257) {
            let f = TruthTable::from_bits(4, bits);
            let mut out = Aig::new();
            let a = out.input();
            let b = out.input();
            let c = out.input();
            for binding in [
                [a, a, c, c],
                [a, b, a, b],
                [a, a.not(), b, c],
                [a, a, a, a.not()],
            ] {
                let plan = lib.plan(&npn_canon(f), &binding);
                let predicted = lib.count_new(&out, &plan);
                let before = out.and_count();
                let _ = lib.instantiate(&mut out, &plan);
                assert_eq!(
                    out.and_count() - before,
                    predicted,
                    "f = {bits:#06x}, binding {binding:?}"
                );
            }
        }
    }

    #[test]
    fn mffc_accounts_for_external_references() {
        // f = (a&b)&c and g = (a&b)&d: the shared (a&b) node is outside
        // both MFFCs.
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let d = aig.input();
        let ab = aig.and(a, b);
        let f = aig.and(ab, c);
        let g = aig.and(ab, d);
        aig.output(f);
        aig.output(g);
        let leaves = {
            let mut l = vec![a.node(), b.node(), c.node()];
            l.sort_unstable();
            l
        };
        assert_eq!(
            mffc_size_ro(&aig, f.node(), &leaves, aig.fanout_counts()),
            1
        );
        // Without g, the ab node joins f's MFFC.
        let mut aig2 = Aig::new();
        let a = aig2.input();
        let b = aig2.input();
        let c = aig2.input();
        let ab = aig2.and(a, b);
        let f = aig2.and(ab, c);
        aig2.output(f);
        let leaves2 = {
            let mut l = vec![a.node(), b.node(), c.node()];
            l.sort_unstable();
            l
        };
        assert_eq!(
            mffc_size_ro(&aig2, f.node(), &leaves2, aig2.fanout_counts()),
            2
        );
    }

    #[test]
    fn rewrite_shrinks_a_redundant_network_and_preserves_function() {
        // (a&b) | (a&!b) = a — rewriting must collapse the cone.
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let t1 = aig.and(a, b);
        let t2 = aig.and(a, b.not());
        let f = aig.or(t1, t2);
        let g = aig.and(f, c);
        aig.output(g);
        let rewritten = rewrite(&aig);
        assert_eq!(check_equivalence(&aig, &rewritten), Ok(Equivalence::Equal));
        assert!(
            rewritten.and_count() < aig.and_count(),
            "{} vs {}",
            rewritten.and_count(),
            aig.and_count()
        );
    }

    #[test]
    fn rewrite_never_grows() {
        // A network rewriting cannot improve must come back unchanged in
        // size (the no-growth guarantee is structural, not statistical).
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..6).map(|_| aig.input()).collect();
        let p = aig.xor_many(&xs);
        aig.output(p);
        let rewritten = rewrite(&aig);
        assert!(rewritten.and_count() <= aig.cleanup().and_count());
        assert_eq!(check_equivalence(&aig, &rewritten), Ok(Equivalence::Equal));
    }

    #[test]
    fn zero_gain_mode_is_still_sound_and_no_larger() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..5).map(|_| aig.input()).collect();
        let m = aig.mux(xs[0], xs[1], xs[2]);
        let n = aig.xor(m, xs[3]);
        let o = aig.or(n, xs[4]);
        aig.output(o);
        let z = rewrite_with(
            &aig,
            &RewriteConfig {
                zero_gain: true,
                ..RewriteConfig::default()
            },
        );
        assert_eq!(check_equivalence(&aig, &z), Ok(Equivalence::Equal));
        assert!(z.and_count() <= aig.cleanup().and_count());
    }

    #[test]
    fn level_aware_mode_never_deepens() {
        // `rw -l` prices every candidate's root level against the plain
        // structural copy, which composes into a global guarantee: the
        // rewritten network is never deeper than the (cleaned) input.
        for seed in [1u64, 9, 0xBEE, 0xFEED] {
            let mut aig = Aig::new();
            let xs: Vec<Lit> = (0..7).map(|_| aig.input()).collect();
            let mut nets = xs.clone();
            let mut s = seed | 1;
            for _ in 0..50 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let a = nets[(s as usize) % nets.len()];
                let b = nets[(s as usize >> 8) % nets.len()];
                let f = match s % 3 {
                    0 => aig.and(a, b.not()),
                    1 => aig.xor(a, b),
                    _ => aig.or(a, b),
                };
                nets.push(f);
            }
            for k in 0..4 {
                aig.output(nets[nets.len() - 1 - k]);
            }
            let cleaned = aig.cleanup();
            let rewritten = rewrite_with(
                &aig,
                &RewriteConfig {
                    level_aware: true,
                    ..RewriteConfig::default()
                },
            );
            assert_eq!(check_equivalence(&aig, &rewritten), Ok(Equivalence::Equal));
            assert!(
                rewritten.depth() <= cleaned.depth(),
                "seed {seed:#x}: rw -l deepened {} -> {}",
                cleaned.depth(),
                rewritten.depth()
            );
            assert!(rewritten.and_count() <= cleaned.and_count());
        }
    }

    #[test]
    fn count_new_with_level_predicts_committed_levels() {
        let lib = library();
        let mut out = Aig::new();
        let leaf_lits: Vec<Lit> = (0..4).map(|_| out.input()).collect();
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 2);
        let d = TruthTable::var(4, 3);
        for f in [(a & b) | (c & d), a ^ b ^ c ^ d, (a | b) & !(c | d)] {
            let plan = lib.plan(&npn_canon(f), &leaf_lits);
            let (added, level) = lib.count_new_with_level(&out, out.node_levels(), &plan);
            let before = out.and_count();
            let lit = lib.instantiate(&mut out, &plan);
            assert_eq!(out.and_count() - before, added);
            assert_eq!(
                out.level(lit.node()),
                level,
                "dry-run level must match the committed level for {f:?}"
            );
        }
    }

    #[test]
    fn rewrite_handles_constant_cones() {
        // (a & !a) never survives construction, but a cut function can
        // still be constant through reconvergence: f = (a|b) & !(a&b) on
        // inputs wired so the cone collapses. Use a directly constant
        // cut: (a ^ b) ^ (a ^ b) = 0 via two separate XOR structures.
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x1 = aig.xor(a, b);
        let x2 = aig.xor(b, a);
        let f = aig.xor(x1, x2);
        let g = aig.or(f, a);
        aig.output(g);
        let rewritten = rewrite(&aig);
        assert_eq!(check_equivalence(&aig, &rewritten), Ok(Equivalence::Equal));
        // f is constant false, so g collapses to a.
        assert_eq!(rewritten.and_count(), 0);
    }
}
