//! Cut-based refactoring: rebuild small cones from irredundant SOPs of
//! their cut functions when the SOP form is cheaper (ABC's `refactor`,
//! first-order).

use crate::cuts::{CutConfig, CutDb, CutSource};
use crate::graph::{compose_maps, Aig, Lit, Node};
use logic::sop::isop;

/// The enumeration parameters the refactoring pass uses (and the flow's
/// refactor cut database is keyed to).
pub(crate) const REFACTOR_CUTS: CutConfig = CutConfig { k: 4, max_cuts: 6 };

/// One refactoring pass. The returned AIG is functionally equivalent;
/// callers (see [`synthesize`](crate::synth::synthesize)) keep it only when
/// it actually shrinks the network.
pub fn refactor(aig: &Aig) -> Aig {
    let mut db = CutDb::new(REFACTOR_CUTS);
    refactor_core(aig, &mut db).0
}

/// [`refactor`] against a persistent cut database: cuts of `aig` are
/// taken from (and missing ones computed into) `db`, and the old-node →
/// new-literal map of the transformation is returned alongside the
/// network so the caller can retarget its databases.
pub(crate) fn refactor_core(aig: &Aig, db: &mut CutDb) -> (Aig, Vec<Option<Lit>>) {
    db.ensure(aig);
    let cuts: &CutDb = db;
    let mut out = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.len()];
    for (pos, &i) in aig.input_nodes().iter().enumerate() {
        debug_assert_eq!(pos, out.input_count());
        map[i as usize] = out.input();
    }
    for (idx, node) in aig.nodes().enumerate() {
        let Node::And(a, b) = node else { continue };
        // Default: structural copy.
        let fa = apply(map[a.node() as usize], a);
        let fb = apply(map[b.node() as usize], b);
        let copied = out.and(fa, fb);
        // Alternative: SOP rebuild of the best non-trivial cut.
        let mut best = copied;
        let mut best_cost = usize::MAX;
        for cut in cuts.cuts_of(idx as u32) {
            if cut.leaves.len() < 2 || cut.leaves.len() > 4 {
                continue;
            }
            let cone = cone_size(aig, idx as u32, &cut.leaves);
            let cover = isop(cut.tt);
            let sop_cost: usize = cover
                .iter()
                .map(|c| c.literal_count().saturating_sub(1))
                .sum::<usize>()
                + cover.len().saturating_sub(1);
            if sop_cost < cone && sop_cost < best_cost {
                let leaf_lits: Vec<Lit> = cut.leaves.iter().map(|&l| map[l as usize]).collect();
                let rebuilt = sop_to_aig(&mut out, &cover, &leaf_lits, cut.tt.n_vars());
                best = rebuilt;
                best_cost = sop_cost;
            }
        }
        map[idx] = best;
    }
    for o in aig.output_lits() {
        let l = apply(map[o.node() as usize], *o);
        out.output(l);
    }
    let (result, cleanup_map) = out.cleanup_with_map();
    let node_map = compose_maps(&map, &cleanup_map);
    (result, node_map)
}

fn apply(mapped: Lit, edge: Lit) -> Lit {
    if edge.is_complement() {
        mapped.not()
    } else {
        mapped
    }
}

/// Number of AND nodes strictly inside the cone of `root` above `leaves`
/// (an optimistic estimate of what a rebuild could save).
fn cone_size(aig: &Aig, root: u32, leaves: &[u32]) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![root];
    let mut count = 0usize;
    while let Some(n) = stack.pop() {
        if leaves.binary_search(&n).is_ok() || !seen.insert(n) {
            continue;
        }
        if let Node::And(a, b) = aig.node(n) {
            count += 1;
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    count
}

/// Builds an SOP into the AIG over the given leaf literals.
#[allow(clippy::needless_range_loop)] // `v` indexes cube bit masks, not just `leaves`
fn sop_to_aig(out: &mut Aig, cover: &[logic::Cube], leaves: &[Lit], n_vars: usize) -> Lit {
    if cover.is_empty() {
        return Lit::FALSE;
    }
    let mut terms = Vec::with_capacity(cover.len());
    for cube in cover {
        let mut lits = Vec::new();
        for v in 0..n_vars {
            if (cube.care >> v) & 1 == 1 {
                let base = leaves[v];
                lits.push(if (cube.polarity >> v) & 1 == 1 {
                    base
                } else {
                    base.not()
                });
            }
        }
        terms.push(out.and_many(&lits));
    }
    out.or_many(&terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::equivalent;

    #[test]
    fn preserves_function_on_random_networks() {
        // Build a messy network and check equivalence after refactoring.
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..8).map(|_| aig.input()).collect();
        let mut nets = xs.clone();
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..60 {
            let a = nets[(rnd() as usize) % nets.len()];
            let b = nets[(rnd() as usize) % nets.len()];
            let f = match rnd() % 3 {
                0 => aig.and(a, b.not()),
                1 => aig.or(a, b),
                _ => aig.xor(a, b),
            };
            nets.push(f);
        }
        for &n in nets.iter().rev().take(6) {
            aig.output(n);
        }
        let refactored = refactor(&aig);
        assert!(equivalent(&aig, &refactored, 42, 64));
    }

    #[test]
    fn shrinks_redundant_sop() {
        // f = (a&b) | (a&c) | (a&d) built naively, refactor can share `a`:
        // ISOP gives a&(b|c|d) — fewer ANDs.
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let d = aig.input();
        let t1 = aig.and(a, b);
        let t2 = aig.and(a, c);
        let t3 = aig.and(a, d);
        let o1 = aig.or(t1, t2);
        let f = aig.or(o1, t3);
        aig.output(f);
        let before = aig.and_count();
        let refactored = refactor(&aig);
        assert!(equivalent(&aig, &refactored, 5, 16));
        assert!(
            refactored.and_count() <= before,
            "refactor must not grow a cleanly coverable cone: {} vs {before}",
            refactored.and_count()
        );
    }

    #[test]
    fn handles_constants_and_passthrough() {
        let mut aig = Aig::new();
        let a = aig.input();
        aig.output(a);
        aig.output(a.not());
        aig.output(Lit::TRUE);
        let r = refactor(&aig);
        assert!(equivalent(&aig, &r, 8, 8));
    }
}
