//! Combinational equivalence checking by simulation: exhaustive when the
//! input count is small, random otherwise.

use crate::graph::Aig;
use crate::sim::simulate64;

/// Checks whether two AIGs compute the same outputs.
///
/// With ≤ 16 inputs the check is exhaustive (sound and complete); beyond
/// that, `rounds` words of 64 random patterns are simulated, making a
/// `false` answer definitive and a `true` answer probabilistic — the usual
/// simulation-based CEC trade-off, sufficient for the synthetic benchmarks
/// here.
///
/// # Panics
///
/// Panics if the two AIGs disagree on input or output counts.
pub fn equivalent(a: &Aig, b: &Aig, seed: u64, rounds: usize) -> bool {
    assert_eq!(a.input_count(), b.input_count(), "input count mismatch");
    assert_eq!(a.output_count(), b.output_count(), "output count mismatch");
    let n = a.input_count();
    if n == 0 {
        return simulate64(a, &[]) == simulate64(b, &[]);
    }
    if n <= 16 {
        return exhaustive(a, b);
    }
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for _ in 0..rounds {
        let inputs: Vec<u64> = (0..n).map(|_| next()).collect();
        if simulate64(a, &inputs) != simulate64(b, &inputs) {
            return false;
        }
    }
    true
}

/// Exhaustive check over all `2^n` assignments, 64 at a time.
fn exhaustive(a: &Aig, b: &Aig) -> bool {
    let n = a.input_count();
    let total: u64 = 1u64 << n;
    let mut base = 0u64;
    while base < total {
        // Pattern k of this word is assignment (base + k).
        let inputs: Vec<u64> = (0..n)
            .map(|i| {
                let mut w = 0u64;
                for k in 0..64u64 {
                    if ((base + k) >> i) & 1 == 1 {
                        w |= 1 << k;
                    }
                }
                w
            })
            .collect();
        let va = simulate64(a, &inputs);
        let vb = simulate64(b, &inputs);
        let valid_bits = (total - base).min(64);
        let mask = if valid_bits == 64 {
            u64::MAX
        } else {
            (1u64 << valid_bits) - 1
        };
        for (x, y) in va.iter().zip(vb.iter()) {
            if (x ^ y) & mask != 0 {
                return false;
            }
        }
        base += 64;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Lit;

    fn xor_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.xor(a, b);
        aig.output(x);
        aig
    }

    #[test]
    fn equivalent_to_itself() {
        let a = xor_aig();
        assert!(equivalent(&a, &a, 1, 4));
    }

    #[test]
    fn detects_difference() {
        let a = xor_aig();
        let mut b = Aig::new();
        let x = b.input();
        let y = b.input();
        let f = b.and(x, y);
        b.output(f);
        assert!(!equivalent(&a, &b, 1, 4));
    }

    #[test]
    fn demorgan_forms_are_equivalent() {
        // !(a & b) == !a | !b.
        let mut lhs = Aig::new();
        let a = lhs.input();
        let b = lhs.input();
        let nand = lhs.and(a, b).not();
        lhs.output(nand);

        let mut rhs = Aig::new();
        let x = rhs.input();
        let y = rhs.input();
        let or = rhs.or(x.not(), y.not());
        rhs.output(or);
        assert!(equivalent(&lhs, &rhs, 3, 4));
    }

    #[test]
    fn exhaustive_catches_single_minterm_difference() {
        // Two 10-input functions differing in exactly one assignment.
        let build = |tweak: bool| {
            let mut aig = Aig::new();
            let xs: Vec<Lit> = (0..10).map(|_| aig.input()).collect();
            let all = aig.and_many(&xs);
            let f = if tweak {
                let extra = aig.xor_many(&xs);
                let not_any = aig.or_many(&xs).not();
                let bump = aig.and(extra.not(), not_any);
                aig.or(all, bump)
            } else {
                all
            };
            aig.output(f);
            aig
        };
        let a = build(false);
        let b = build(true);
        assert!(!equivalent(&a, &b, 1, 4));
    }

    #[test]
    fn constant_outputs() {
        let mut a = Aig::new();
        let _ = a.input();
        a.output(Lit::TRUE);
        let mut b = Aig::new();
        let x = b.input();
        let one = b.or(x, x.not());
        b.output(one);
        assert!(equivalent(&a, &b, 9, 4));
    }
}
