//! Combinational equivalence checking: random-simulation filtering closed
//! by SAT — sound and complete at every input count.
//!
//! The checker is a SAT sweeper in the spirit of ABC's `cec`/fraiging:
//! both networks are imported into one structurally hashed graph over
//! shared inputs, nodes are partitioned into candidate-equivalence
//! classes by 64-bit random simulation, and each candidate is either
//! *proven* equal to its class representative (a budgeted incremental SAT
//! query over the Tseitin encoding) and merged, or *refuted* by a model
//! that becomes a new distinguishing simulation pattern. The primary
//! outputs are then proven pairwise equal with unbounded queries, so
//! [`Equivalence::Equal`] is a theorem, not a sample — and a failed proof
//! yields a concrete [`Equivalence::Counterexample`] input pattern.

use crate::graph::{Aig, Lit, Node};
use rayon::prelude::*;
use sat::{SolveResult, Solver};
use std::collections::HashMap;

/// Outcome of an equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Equivalence {
    /// The two networks compute the same function (SAT-proven).
    Equal,
    /// A concrete input assignment (one bool per primary input, in input
    /// order) on which the networks disagree.
    Counterexample(Vec<bool>),
}

impl Equivalence {
    /// Whether the check proved equality.
    pub fn is_equal(&self) -> bool {
        matches!(self, Equivalence::Equal)
    }
}

/// The two networks cannot be compared: their interface widths differ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShapeMismatch {
    /// `(left, right)` primary-input counts.
    pub inputs: (usize, usize),
    /// `(left, right)` primary-output counts.
    pub outputs: (usize, usize),
}

impl std::fmt::Display for ShapeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shape mismatch: {} vs {} inputs, {} vs {} outputs",
            self.inputs.0, self.inputs.1, self.outputs.0, self.outputs.1
        )
    }
}

impl std::error::Error for ShapeMismatch {}

fn check_shapes(a: &Aig, b: &Aig) -> Result<(), ShapeMismatch> {
    if a.input_count() != b.input_count() || a.output_count() != b.output_count() {
        return Err(ShapeMismatch {
            inputs: (a.input_count(), b.input_count()),
            outputs: (a.output_count(), b.output_count()),
        });
    }
    Ok(())
}

/// Builds the miter of two same-shape networks: one structurally hashed
/// graph over shared inputs whose single output is 1 iff the networks
/// disagree on some output (OR over per-output XORs) — the classic CEC
/// construction. `miter(a, b)` is satisfiable iff `a` and `b` differ.
///
/// # Errors
///
/// [`ShapeMismatch`] when input or output counts differ.
///
/// # Example
///
/// ```
/// use aig::{Aig, check::miter};
///
/// let mut x = Aig::new();
/// let (a, b) = (x.input(), x.input());
/// let f = x.and(a, b);
/// x.output(f);
/// let m = miter(&x, &x).expect("same shape");
/// assert_eq!(m.input_count(), 2);
/// assert_eq!(m.output_count(), 1);
/// // Identical structure cancels outright: the miter output is constant
/// // false, so no SAT call is even needed here.
/// assert_eq!(m.output_lits()[0], aig::Lit::FALSE);
/// ```
pub fn miter(a: &Aig, b: &Aig) -> Result<Aig, ShapeMismatch> {
    check_shapes(a, b)?;
    let mut m = Aig::new();
    let inputs: Vec<Lit> = (0..a.input_count()).map(|_| m.input()).collect();
    let oa = copy_into(&mut m, a, &inputs);
    let ob = copy_into(&mut m, b, &inputs);
    let diffs: Vec<Lit> = oa
        .iter()
        .zip(ob.iter())
        .map(|(&x, &y)| m.xor(x, y))
        .collect();
    let out = m.or_many(&diffs);
    m.output(out);
    Ok(m)
}

/// Structurally copies `src` into `dst` with `src`'s primary inputs bound
/// to `inputs`; returns the copied output literals.
fn copy_into(dst: &mut Aig, src: &Aig, inputs: &[Lit]) -> Vec<Lit> {
    let mut map: Vec<Lit> = vec![Lit::FALSE; src.len()];
    for (i, node) in src.nodes().enumerate() {
        map[i] = match node {
            Node::Const => Lit::FALSE,
            Node::Input(k) => inputs[k as usize],
            Node::And(a, b) => {
                let fa = resolve(&map, a);
                let fb = resolve(&map, b);
                dst.and(fa, fb)
            }
        };
    }
    src.output_lits()
        .iter()
        .map(|&l| resolve(&map, l))
        .collect()
}

fn resolve(map: &[Lit], l: Lit) -> Lit {
    let base = map[l.node() as usize];
    if l.is_complement() {
        base.not()
    } else {
        base
    }
}

/// Checks two networks for equivalence (sound and complete).
///
/// Random simulation filters candidate equivalences; incremental SAT over
/// the shared fraig closes the proof. See the module docs for the
/// algorithm.
///
/// # Errors
///
/// [`ShapeMismatch`] when input or output counts differ — the typed
/// replacement for the panic the old probabilistic checker raised.
///
/// # Example
///
/// ```
/// use aig::{Aig, check::{check_equivalence, Equivalence}};
///
/// // !(a & b) == !a | !b (DeMorgan) — proven, not sampled.
/// let mut lhs = Aig::new();
/// let (a, b) = (lhs.input(), lhs.input());
/// let nand = lhs.and(a, b).not();
/// lhs.output(nand);
///
/// let mut rhs = Aig::new();
/// let (x, y) = (rhs.input(), rhs.input());
/// let or = rhs.or(x.not(), y.not());
/// rhs.output(or);
///
/// assert_eq!(check_equivalence(&lhs, &rhs), Ok(Equivalence::Equal));
/// ```
pub fn check_equivalence(a: &Aig, b: &Aig) -> Result<Equivalence, ShapeMismatch> {
    check_equivalence_seeded(a, b, 0x5EED_CEC1, 8)
}

/// [`check_equivalence`] with an explicit simulation seed and initial
/// random-word count (64 patterns per word). More words refine candidate
/// classes harder before SAT gets involved; the result is identical.
pub fn check_equivalence_seeded(
    a: &Aig,
    b: &Aig,
    seed: u64,
    words: usize,
) -> Result<Equivalence, ShapeMismatch> {
    check_shapes(a, b)?;
    let a = a.cleanup();
    let b = b.cleanup();
    let mut sweeper = Sweeper::new(a.input_count(), seed, words.clamp(1, 64));
    let oa = sweeper.import(&a);
    let ob = sweeper.import(&b);
    for (&la, &lb) in oa.iter().zip(ob.iter()) {
        if la == lb {
            continue;
        }
        // Simulation refutes first (free); SAT decides the rest.
        if let Some(cex) = sweeper.sim_difference(la, lb) {
            return Ok(Equivalence::Counterexample(cex));
        }
        match sweeper.prove_lits_equal(la, lb, None) {
            Prove::Equal => {}
            Prove::Diff(cex) => return Ok(Equivalence::Counterexample(cex)),
            Prove::Unknown => unreachable!("unbounded query cannot give up"),
        }
    }
    Ok(Equivalence::Equal)
}

/// Compatibility wrapper: `true` iff the networks are provably
/// equivalent.
///
/// Unlike the pre-SAT version this is **sound and complete at any input
/// count** — `seed` and `rounds` only steer the simulation prefilter
/// (`rounds` random 64-pattern words), never the verdict. Networks of
/// mismatched shape compare unequal instead of panicking; use
/// [`check_equivalence`] to observe the mismatch or the counterexample.
pub fn equivalent(a: &Aig, b: &Aig, seed: u64, rounds: usize) -> bool {
    matches!(
        check_equivalence_seeded(a, b, seed, rounds.clamp(1, 64)),
        Ok(Equivalence::Equal)
    )
}

/// Conflict budget for speculative class-merge queries; unproven
/// candidates just stay unmerged (sound), so this only trades sweep
/// strength against time.
const MERGE_CONFLICT_BUDGET: u64 = 1_000;

/// Interned handle for the per-proof conflict histogram (one registry
/// lookup for the process, not one per SAT query).
fn conflicts_per_proof() -> &'static obs::Histogram {
    static H: std::sync::OnceLock<&'static obs::Histogram> = std::sync::OnceLock::new();
    H.get_or_init(|| obs::histogram("sat_conflicts_per_proof"))
}

enum Prove {
    Equal,
    Diff(Vec<bool>),
    Unknown,
}

/// Minimum AND nodes on one level before the sweeper's resimulation
/// fans the level out across worker threads. The effective floor is
/// width-aware: levels narrower than 4× the pool size stay serial, since
/// splitting them buys less than the task-spawn overhead costs.
const PAR_LEVEL_THRESHOLD: usize = 64;

/// Signature words are allocated in cache-line blocks of this many
/// `u64`s. The slack between the logical width and the allocated stride
/// lets refinement append a word in place; the block re-strides (one
/// full copy) only once every `SIG_WORD_BLOCK` refinement rounds instead
/// of on every counterexample.
const SIG_WORD_BLOCK: usize = 4;

/// All simulation signatures in one flat node-major block: node `i`'s
/// `words` live 64-pattern words sit at `data[i*stride..i*stride+words]`,
/// with `stride - words` zeroed slack lanes behind them. One bump-grown
/// allocation for the whole fraig instead of a heap `Vec<u64>` per node —
/// signature reads during fraiging become offset arithmetic into one
/// contiguous region.
struct SigBlock {
    /// Logical signature width, in 64-pattern words (uniform across
    /// nodes).
    words: usize,
    /// Allocated words per node (`words.next_multiple_of(SIG_WORD_BLOCK)`).
    stride: usize,
    data: Vec<u64>,
}

impl SigBlock {
    fn new(words: usize) -> Self {
        Self {
            words,
            stride: words.next_multiple_of(SIG_WORD_BLOCK).max(SIG_WORD_BLOCK),
            data: Vec::new(),
        }
    }

    /// Borrowed signature of one node — no allocation.
    fn sig(&self, node: u32) -> &[u64] {
        let start = node as usize * self.stride;
        &self.data[start..start + self.words]
    }

    /// Word `w` of a literal's signature (complement applied).
    fn lit_word(&self, l: Lit, w: usize) -> u64 {
        let v = self.data[l.node() as usize * self.stride + w];
        if l.is_complement() {
            !v
        } else {
            v
        }
    }

    /// Opens one fresh node slot (all lanes zero), returning its offset.
    fn grow(&mut self) -> usize {
        let base = self.data.len();
        self.data.resize(base + self.stride, 0);
        base
    }

    /// Re-strides the block with one more slack block per node; live
    /// words are copied, new lanes are zero.
    fn widen(&mut self) {
        let nodes = self.data.len() / self.stride;
        let stride = self.stride + SIG_WORD_BLOCK;
        let mut data = vec![0u64; nodes * stride];
        for i in 0..nodes {
            data[i * stride..i * stride + self.words]
                .copy_from_slice(&self.data[i * self.stride..i * self.stride + self.words]);
        }
        self.stride = stride;
        self.data = data;
    }
}

/// The SAT sweeper: a growing fraig with per-node simulation signatures,
/// candidate classes, and an incremental Tseitin encoding.
///
/// Crate-visible so the choice subsystem ([`crate::choice`]) can run the
/// same sim-signature + budgeted-incremental-SAT sweep over a set of
/// equivalent snapshots and read the merge structure back out
/// ([`Sweeper::into_parts`]).
pub(crate) struct Sweeper {
    f: Aig,
    solver: Solver,
    /// Solver variable per fraig node (encoded at creation).
    enc: Vec<sat::Var>,
    /// Flat node-major simulation signatures.
    sigs: SigBlock,
    /// Representative literal per fraig node (identity unless merged).
    repr: Vec<Lit>,
    /// Fingerprint of the normalized signature → class-representative
    /// nodes. Keys are 64-bit FNV hashes of the signature slice, so a
    /// lookup allocates nothing; [`Sweeper::try_merge`] re-checks the
    /// actual signatures before trusting a bucket hit, so a fingerprint
    /// collision costs one slice compare, never a wrong merge.
    classes: HashMap<u64, Vec<u32>>,
    /// Fraig node index of each primary input.
    input_nodes: Vec<u32>,
    rng: crate::sim::PatternRng,
}

impl Sweeper {
    pub(crate) fn new(n_inputs: usize, seed: u64, words: usize) -> Self {
        let mut s = Self {
            f: Aig::new(),
            solver: Solver::new(),
            enc: Vec::new(),
            sigs: SigBlock::new(words),
            repr: Vec::new(),
            classes: HashMap::new(),
            input_nodes: Vec::new(),
            rng: crate::sim::PatternRng::new(seed),
        };
        // Constant node: a variable forced false, an all-zero signature.
        let v0 = s.solver.new_var();
        s.solver.add_clause(&[sat::Lit::negative(v0)]);
        s.enc.push(v0);
        s.sigs.grow();
        s.repr.push(Lit::FALSE);
        s.register_class(0);
        for _ in 0..n_inputs {
            let lit = s.f.input();
            let node = lit.node();
            s.input_nodes.push(node);
            s.enc.push(s.solver.new_var());
            let base = s.sigs.grow();
            for w in 0..words {
                s.sigs.data[base + w] = s.rng.next_word();
            }
            s.repr.push(lit);
            s.register_class(node);
        }
        s
    }

    /// FNV-1a fingerprint of the phase-normalized signature (complemented
    /// if pattern 0 reads 1), as the class key — hashes the slice in
    /// place instead of allocating a normalized `Vec<u64>` per lookup.
    fn class_key(&self, node: u32) -> u64 {
        let sig = self.sigs.sig(node);
        let flip = if sig[0] & 1 == 1 { u64::MAX } else { 0 };
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in sig {
            h ^= w ^ flip;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn register_class(&mut self, node: u32) {
        let key = self.class_key(node);
        self.classes.entry(key).or_default().push(node);
    }

    fn resolve(&self, l: Lit) -> Lit {
        let r = self.repr[l.node() as usize];
        if l.is_complement() {
            r.not()
        } else {
            r
        }
    }

    /// Consumes the sweeper, returning the fraig arena and the
    /// per-node representative literals (identity for unmerged nodes).
    /// Every AND node in the arena reads representative literals: fanins
    /// are resolved through `repr` *before* a node is created, and a
    /// representative never loses that status later — the invariant the
    /// choice subsystem's ring construction builds on.
    pub(crate) fn into_parts(self) -> (Aig, Vec<Lit>) {
        (self.f, self.repr)
    }

    /// Imports a source network, returning its output literals in the
    /// fraig (representative-resolved).
    pub(crate) fn import(&mut self, src: &Aig) -> Vec<Lit> {
        self.import_with_map(src).0
    }

    /// Like [`Sweeper::import`], additionally returning the source-node →
    /// fraig-literal map. Map entries are representative-resolved at
    /// creation time; resolve them again through the final `repr` to read
    /// the up-to-date equivalence class of each source node.
    pub(crate) fn import_with_map(&mut self, src: &Aig) -> (Vec<Lit>, Vec<Lit>) {
        let mut map: Vec<Lit> = vec![Lit::FALSE; src.len()];
        for (i, node) in src.nodes().enumerate() {
            map[i] = match node {
                Node::Const => Lit::FALSE,
                Node::Input(k) => Lit::new(self.input_nodes[k as usize], false),
                Node::And(a, b) => {
                    let fa = self.resolve(resolve(&map, a));
                    let fb = self.resolve(resolve(&map, b));
                    self.fraig_and(fa, fb)
                }
            };
        }
        let outputs = src
            .output_lits()
            .iter()
            .map(|&l| self.resolve(resolve(&map, l)))
            .collect();
        (outputs, map)
    }

    /// Strashed AND with on-the-fly fraiging: a structurally new node is
    /// Tseitin-encoded, simulated, and — when simulation puts it in an
    /// existing candidate class — SAT-merged into the class
    /// representative.
    fn fraig_and(&mut self, a: Lit, b: Lit) -> Lit {
        let before = self.f.len();
        let raw = self.f.and(a, b);
        if (raw.node() as usize) < before {
            // Constant folding or a strash hit: decided earlier.
            return self.resolve(raw);
        }
        let node = raw.node();
        // Tseitin clauses for node = a ∧ b.
        let v = self.solver.new_var();
        let la = sat::Lit::new(self.enc[a.node() as usize], a.is_complement());
        let lb = sat::Lit::new(self.enc[b.node() as usize], b.is_complement());
        let lv = sat::Lit::positive(v);
        self.solver.add_clause(&[!lv, la]);
        self.solver.add_clause(&[!lv, lb]);
        self.solver.add_clause(&[lv, !la, !lb]);
        self.enc.push(v);
        // Signature from the fanin signatures, bumped onto the block
        // (slack lanes stay zero until a refinement claims them).
        let base = self.sigs.grow();
        for w in 0..self.sigs.words {
            self.sigs.data[base + w] = self.sigs.lit_word(a, w) & self.sigs.lit_word(b, w);
        }
        crate::profile::add_sim_words(self.sigs.words as u64);
        self.repr.push(raw);
        debug_assert_eq!(self.enc.len(), self.f.len());
        self.try_merge(node);
        self.resolve(raw)
    }

    /// Attempts to merge `node` into an existing class representative.
    /// A refuted candidate is skipped for the rest of the attempt and its
    /// distinguishing pattern banked; up to 64 counterexamples from one
    /// bucket scan are packed into a *single* refinement word, so a node
    /// that separates itself from many bucket-mates pays one fraig
    /// resimulation per round instead of one per counterexample.
    fn try_merge(&mut self, node: u32) {
        let mut refuted: Vec<u32> = Vec::new();
        loop {
            let key = self.class_key(node);
            let bucket: Vec<u32> = self.classes.get(&key).cloned().unwrap_or_default();
            let mut batch: Vec<Vec<bool>> = Vec::new();
            for cand in bucket {
                // Skip self, already-refuted candidates, and stale
                // entries (a candidate that itself merged after
                // registration — its representative is in this bucket
                // too, so nothing is lost).
                if cand == node
                    || self.repr[cand as usize] != Lit::new(cand, false)
                    || refuted.contains(&cand)
                {
                    continue;
                }
                // Keys are fingerprints, so confirm the signatures are
                // actually equal or complementary; a collision just
                // means the candidate is not comparable.
                let ns = self.sigs.sig(node);
                let cs = self.sigs.sig(cand);
                let equal = ns == cs;
                let compl = !equal && ns.iter().zip(cs).all(|(&x, &y)| x == !y);
                if !equal && !compl {
                    continue;
                }
                let phase = compl;
                let target = Lit::new(cand, phase);
                crate::profile::add_sat_merge_call();
                match self.prove_lits_equal(
                    Lit::new(node, false),
                    target,
                    Some(MERGE_CONFLICT_BUDGET),
                ) {
                    Prove::Equal => {
                        crate::profile::add_sat_merge_proven();
                        self.repr[node as usize] = target;
                        // Record the proven equivalence as clauses; they
                        // are implied, and they help later queries.
                        let ln = sat::Lit::positive(self.enc[node as usize]);
                        let lc = sat::Lit::new(self.enc[cand as usize], phase);
                        self.solver.add_clause(&[!ln, lc]);
                        self.solver.add_clause(&[ln, !lc]);
                        // The banked counterexamples still split other
                        // class pairs — spend them before returning.
                        if !batch.is_empty() {
                            self.refine(&batch);
                        }
                        return;
                    }
                    Prove::Diff(pattern) => {
                        crate::profile::add_sat_merge_refuted();
                        refuted.push(cand);
                        batch.push(pattern);
                        if batch.len() == 64 {
                            break; // the word is full; refine, then rescan
                        }
                    }
                    Prove::Unknown => {
                        // Budget out: try the next candidate.
                        crate::profile::add_sat_merge_budget_out();
                    }
                }
            }
            if batch.is_empty() {
                // A refine round rebuilds `classes` with `node` already
                // in it; guard against registering it twice.
                let bucket = self.classes.entry(key).or_default();
                if !bucket.contains(&node) {
                    bucket.push(node);
                }
                return;
            }
            self.refine(&batch);
        }
    }

    /// Proves two fraig literals equal (both implications UNSAT), or
    /// returns a distinguishing input pattern, or gives up on budget.
    /// Each proof attempt's conflict cost lands in the
    /// `sat_conflicts_per_proof` histogram.
    fn prove_lits_equal(&mut self, x: Lit, y: Lit, budget: Option<u64>) -> Prove {
        let conflicts_before = self.solver.conflict_count();
        let result = self.prove_lits_equal_inner(x, y, budget);
        conflicts_per_proof().observe(
            self.solver
                .conflict_count()
                .saturating_sub(conflicts_before),
        );
        result
    }

    fn prove_lits_equal_inner(&mut self, x: Lit, y: Lit, budget: Option<u64>) -> Prove {
        let (vx, cx) = (self.enc[x.node() as usize], x.is_complement());
        let (vy, cy) = (self.enc[y.node() as usize], y.is_complement());
        // Query 1: x true, y false; query 2: x false, y true.
        for (ax, ay) in [(cx, !cy), (!cx, cy)] {
            let assumptions = [sat::Lit::new(vx, ax), sat::Lit::new(vy, ay)];
            match budget {
                Some(limit) => match self.solver.solve_limited(&assumptions, limit) {
                    Some(SolveResult::Unsat) => {}
                    Some(SolveResult::Sat) => return Prove::Diff(self.model_pattern()),
                    None => return Prove::Unknown,
                },
                None => match self.solver.solve_assuming(&assumptions) {
                    SolveResult::Unsat => {}
                    SolveResult::Sat => return Prove::Diff(self.model_pattern()),
                },
            }
        }
        Prove::Equal
    }

    /// The primary-input assignment of the solver's current model.
    fn model_pattern(&self) -> Vec<bool> {
        self.input_nodes
            .iter()
            .map(|&n| {
                self.solver
                    .model_value(self.enc[n as usize])
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Appends one simulation word carrying the batched counterexamples
    /// (`patterns[j]` at bit `j`) topped up with fresh random patterns,
    /// resimulates the whole fraig, and rebuilds the candidate classes.
    ///
    /// The word lands in a pre-allocated slack lane of the signature
    /// block when one is free (the block re-strides only every
    /// [`SIG_WORD_BLOCK`]th round), then propagates one level frontier at
    /// a time: a node's word depends only on its fanins' words on
    /// strictly lower levels, so wide frontiers fan out over the worker
    /// pool and commit serially in node order — bit-identical to the
    /// serial walk.
    fn refine(&mut self, patterns: &[Vec<bool>]) {
        debug_assert!(!patterns.is_empty() && patterns.len() <= 64);
        let mut span = obs::span!("verify/refine");
        span.record("patterns", patterns.len() as u64);
        crate::profile::add_refine_round();
        if self.sigs.words == self.sigs.stride {
            self.sigs.widen();
        }
        let words = self.sigs.words;
        let stride = self.sigs.stride;
        // Forced counterexample bits occupy the low lanes of the new
        // word; the rest stay random. Input words draw from the rng
        // serially, in input order — the stream is part of the
        // determinism contract (with a single pattern this reproduces
        // the unbatched stream exactly).
        let forced = if patterns.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << patterns.len()) - 1
        };
        for (k, &n) in self.input_nodes.iter().enumerate() {
            let mut w = self.rng.next_word() & !forced;
            for (j, p) in patterns.iter().enumerate() {
                w |= u64::from(p[k]) << j;
            }
            self.sigs.data[n as usize * stride + words] = w;
        }
        crate::profile::add_sim_words(self.f.len() as u64);
        // The constant keeps its zeroed lane. ANDs propagate per
        // frontier; levels narrower than the width-aware floor stay
        // serial.
        let parallel = rayon::current_num_threads() > 1;
        let floor = PAR_LEVEL_THRESHOLD.max(4 * rayon::current_num_threads());
        for level in self.f.and_level_groups() {
            if parallel && level.len() >= floor {
                crate::profile::add_par_tasks(level.len() as u64);
                let computed: Vec<u64> = {
                    let data = &self.sigs.data;
                    let word_of = |l: Lit| {
                        data[l.node() as usize * stride + words]
                            ^ if l.is_complement() { u64::MAX } else { 0 }
                    };
                    level
                        .par_iter()
                        .map(|&i| {
                            let Node::And(a, b) = self.f.node(i) else {
                                unreachable!("only AND nodes are grouped by level");
                            };
                            word_of(a) & word_of(b)
                        })
                        .collect()
                };
                for (&i, w) in level.iter().zip(computed) {
                    self.sigs.data[i as usize * stride + words] = w;
                }
            } else {
                for &i in &level {
                    let Node::And(a, b) = self.f.node(i) else {
                        unreachable!("only AND nodes are grouped by level");
                    };
                    let data = &self.sigs.data;
                    let wa = data[a.node() as usize * stride + words]
                        ^ if a.is_complement() { u64::MAX } else { 0 };
                    let wb = data[b.node() as usize * stride + words]
                        ^ if b.is_complement() { u64::MAX } else { 0 };
                    self.sigs.data[i as usize * stride + words] = wa & wb;
                }
            }
        }
        self.sigs.words = words + 1;
        // Rebuild classes from the (still live) representatives.
        let live: Vec<u32> = (0..self.f.len() as u32)
            .filter(|&n| self.repr[n as usize] == Lit::new(n, false))
            .collect();
        self.classes.clear();
        for n in live {
            self.register_class(n);
        }
    }

    /// A counterexample straight from the simulation signatures, if the
    /// two literals already differ on a simulated pattern.
    fn sim_difference(&self, x: Lit, y: Lit) -> Option<Vec<bool>> {
        for w in 0..self.sigs.words {
            let diff = self.sigs.lit_word(x, w) ^ self.sigs.lit_word(y, w);
            if diff != 0 {
                let bit = diff.trailing_zeros();
                return Some(
                    self.input_nodes
                        .iter()
                        .map(|&n| (self.sigs.sig(n)[w] >> bit) & 1 == 1)
                        .collect(),
                );
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::evaluate;

    fn xor_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.xor(a, b);
        aig.output(x);
        aig
    }

    #[test]
    fn equivalent_to_itself() {
        let a = xor_aig();
        assert_eq!(check_equivalence(&a, &a), Ok(Equivalence::Equal));
        assert!(equivalent(&a, &a, 1, 4));
    }

    #[test]
    fn detects_difference_with_counterexample() {
        let a = xor_aig();
        let mut b = Aig::new();
        let x = b.input();
        let y = b.input();
        let f = b.and(x, y);
        b.output(f);
        let Ok(Equivalence::Counterexample(cex)) = check_equivalence(&a, &b) else {
            panic!("must find a counterexample");
        };
        assert_ne!(evaluate(&a, &cex), evaluate(&b, &cex), "cex must be real");
        assert!(!equivalent(&a, &b, 1, 4));
    }

    #[test]
    fn shape_mismatch_is_a_typed_error_not_a_panic() {
        let a = xor_aig();
        let mut b = Aig::new();
        let x = b.input();
        b.output(x);
        let err = check_equivalence(&a, &b).expect_err("shapes differ");
        assert_eq!(err.inputs, (2, 1));
        assert_eq!(err.outputs, (1, 1));
        assert!(err.to_string().contains("2 vs 1 inputs"));
        // The bool wrapper reports inequivalence instead of panicking.
        assert!(!equivalent(&a, &b, 1, 4));
    }

    #[test]
    fn demorgan_forms_are_equivalent() {
        let mut lhs = Aig::new();
        let a = lhs.input();
        let b = lhs.input();
        let nand = lhs.and(a, b).not();
        lhs.output(nand);

        let mut rhs = Aig::new();
        let x = rhs.input();
        let y = rhs.input();
        let or = rhs.or(x.not(), y.not());
        rhs.output(or);
        assert_eq!(check_equivalence(&lhs, &rhs), Ok(Equivalence::Equal));
    }

    #[test]
    fn single_minterm_difference_is_found_at_any_width() {
        // Two 24-input functions differing in exactly one assignment —
        // beyond the old 16-input exhaustive window, hopeless for random
        // simulation, easy for SAT.
        let build = |tweak: bool| {
            let mut aig = Aig::new();
            let xs: Vec<Lit> = (0..24).map(|_| aig.input()).collect();
            let all = aig.and_many(&xs);
            let f = if tweak {
                let none = aig.or_many(&xs).not();
                aig.or(all, none)
            } else {
                all
            };
            aig.output(f);
            aig
        };
        let a = build(false);
        let b = build(true);
        let Ok(Equivalence::Counterexample(cex)) = check_equivalence(&a, &b) else {
            panic!("must find the single differing minterm");
        };
        assert!(cex.iter().all(|&x| !x), "the all-zero minterm is the diff");
        assert_ne!(evaluate(&a, &cex), evaluate(&b, &cex));
    }

    #[test]
    fn constant_outputs() {
        let mut a = Aig::new();
        let _ = a.input();
        a.output(Lit::TRUE);
        let mut b = Aig::new();
        let x = b.input();
        let one = b.or(x, x.not());
        b.output(one);
        assert_eq!(check_equivalence(&a, &b), Ok(Equivalence::Equal));
    }

    #[test]
    fn zero_input_networks() {
        let mut a = Aig::new();
        a.output(Lit::TRUE);
        let mut b = Aig::new();
        b.output(Lit::FALSE);
        assert_eq!(
            check_equivalence(&a, &b),
            Ok(Equivalence::Counterexample(Vec::new()))
        );
        assert_eq!(check_equivalence(&a, &a), Ok(Equivalence::Equal));
    }

    #[test]
    fn miter_of_equal_circuits_is_unsat() {
        let a = xor_aig();
        let mut b = Aig::new();
        let x = b.input();
        let y = b.input();
        let t1 = b.and(x, y.not());
        let t2 = b.and(x.not(), y);
        let f = b.or(t1, t2);
        b.output(f);
        let m = miter(&a, &b).expect("same shape");
        assert_eq!(m.input_count(), 2);
        assert_eq!(m.output_count(), 1);
        let mut solver = Solver::new();
        let enc = crate::cnf::encode(&m, &mut solver);
        solver.add_clause(&[enc.outputs[0]]);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn miter_of_different_circuits_is_sat() {
        let a = xor_aig();
        let mut b = Aig::new();
        let x = b.input();
        let y = b.input();
        let f = b.or(x, y);
        b.output(f);
        let m = miter(&a, &b).expect("same shape");
        let mut solver = Solver::new();
        let enc = crate::cnf::encode(&m, &mut solver);
        solver.add_clause(&[enc.outputs[0]]);
        assert_eq!(solver.solve(), SolveResult::Sat);
        // The model is a real disagreement.
        let cex: Vec<bool> = enc
            .inputs
            .iter()
            .map(|&v| solver.model_value(v).unwrap_or(false))
            .collect();
        assert_ne!(evaluate(&a, &cex), evaluate(&b, &cex));
    }

    #[test]
    fn miter_shape_mismatch() {
        let a = xor_aig();
        let mut b = Aig::new();
        let x = b.input();
        b.output(x);
        b.output(x.not());
        assert!(miter(&a, &b).is_err());
    }

    #[test]
    fn sweeper_merges_shared_structure() {
        // A moderately wide adder checked against itself restructured:
        // the sweep must prove it without the exhaustive 2^n walk.
        let build = |serial: bool| {
            let mut aig = Aig::new();
            let xs: Vec<Lit> = (0..20).map(|_| aig.input()).collect();
            let f = if serial {
                let mut acc = xs[0];
                for &x in &xs[1..] {
                    acc = aig.xor(acc, x);
                }
                acc
            } else {
                aig.xor_many(&xs)
            };
            aig.output(f);
            aig
        };
        let a = build(true);
        let b = build(false);
        assert_eq!(check_equivalence(&a, &b), Ok(Equivalence::Equal));
    }

    /// A messy deterministic network: xorshift-driven mix of
    /// AND/OR/XOR/MUX over `n_inputs` with `n_ops` operations.
    fn messy_aig(seed: u64, n_inputs: usize, n_ops: usize) -> Aig {
        let mut aig = Aig::new();
        let mut nets: Vec<Lit> = (0..n_inputs).map(|_| aig.input()).collect();
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..n_ops {
            let a = nets[(rnd() as usize) % nets.len()];
            let b = nets[(rnd() as usize) % nets.len()];
            let f = match rnd() % 4 {
                0 => aig.and(a, b.not()),
                1 => aig.or(a, b),
                2 => aig.xor(a, b),
                _ => {
                    let c = nets[(rnd() as usize) % nets.len()];
                    aig.mux(a, b, c)
                }
            };
            nets.push(f);
        }
        for k in 0..nets.len().min(4) {
            aig.output(nets[nets.len() - 1 - k]);
        }
        aig
    }

    /// Sweeps `src` at the given signature width and reads back the
    /// semantic partition of its nodes: for each source node, the id of
    /// its equivalence class (classes numbered in first-appearance
    /// order) and its phase relative to the class leader.
    fn sweep_partition(src: &Aig, words: usize) -> Vec<(usize, bool)> {
        let mut sweeper = Sweeper::new(src.input_count(), 0xD5, words);
        let (_, map) = sweeper.import_with_map(src);
        let mut ids: HashMap<u32, (usize, bool)> = HashMap::new();
        map.iter()
            .map(|&l| {
                let r = sweeper.resolve(l);
                let next = ids.len();
                let (id, leader_phase) = *ids.entry(r.node()).or_insert((next, r.is_complement()));
                (id, r.is_complement() != leader_phase)
            })
            .collect()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        // Batched refinement at the widened 4-word signature width must
        // discover exactly the merges of the 1-word path: with the SAT
        // budget never exhausted on networks this size, both converge to
        // the true semantic equivalence classes, so the source-node
        // partitions agree even though the signature streams (and hence
        // bucket scan orders) differ.
        #[test]
        fn batched_wide_refinement_matches_the_one_word_path(
            seed in proptest::prelude::any::<u64>(),
            n_ops in 5usize..60,
        ) {
            let src = messy_aig(seed, 5, n_ops).cleanup();
            proptest::prop_assert_eq!(sweep_partition(&src, 1), sweep_partition(&src, 4));
        }
    }
}
