//! Lightweight global performance counters for the synthesis engine.
//!
//! The hot loops (cut enumeration, SAT sweeping, signature simulation,
//! parallel dispatch) bump relaxed atomics; the flow manager snapshots
//! them around each pass so a [`crate::FlowReport`] can attribute cost
//! to a phase instead of a wall-clock blur. Counters are process-global
//! and monotone — consumers always work with deltas between two
//! [`snapshot`]s, never with absolute values.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static CUTS_REUSED: AtomicU64 = AtomicU64::new(0);
static CUTS_COMPUTED: AtomicU64 = AtomicU64::new(0);
static SAT_MERGE_CALLS: AtomicU64 = AtomicU64::new(0);
static SAT_MERGE_PROVEN: AtomicU64 = AtomicU64::new(0);
static SAT_MERGE_REFUTED: AtomicU64 = AtomicU64::new(0);
static SAT_MERGE_BUDGET_OUT: AtomicU64 = AtomicU64::new(0);
static SIM_WORDS: AtomicU64 = AtomicU64::new(0);
static REFINE_ROUNDS: AtomicU64 = AtomicU64::new(0);
static PAR_TASKS: AtomicU64 = AtomicU64::new(0);

/// A consistent-enough view of every engine counter (each field is read
/// individually; the counters are independent, so tearing across fields
/// is acceptable for profiling).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Cut sets served from the incremental database without recompute.
    pub cuts_reused: u64,
    /// Cut sets enumerated from fanin cut sets.
    pub cuts_computed: u64,
    /// SAT equivalence queries issued by the sweeper.
    pub sat_merge_calls: u64,
    /// Queries that proved equivalence (a merge happened).
    pub sat_merge_proven: u64,
    /// Queries refuted by a counterexample.
    pub sat_merge_refuted: u64,
    /// Queries abandoned at the conflict budget.
    pub sat_merge_budget_out: u64,
    /// 64-pattern signature words evaluated (node visits × words).
    pub sim_words: u64,
    /// Signature-refinement rounds (class rebuilds) in the sweeper.
    pub refine_rounds: u64,
    /// Tasks dispatched to the worker pool by the parallel hot loops.
    pub par_tasks: u64,
}

impl Counters {
    /// Counter-by-counter difference `self - earlier` (saturating, so a
    /// stale snapshot can never underflow).
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        Counters {
            cuts_reused: self.cuts_reused.saturating_sub(earlier.cuts_reused),
            cuts_computed: self.cuts_computed.saturating_sub(earlier.cuts_computed),
            sat_merge_calls: self.sat_merge_calls.saturating_sub(earlier.sat_merge_calls),
            sat_merge_proven: self
                .sat_merge_proven
                .saturating_sub(earlier.sat_merge_proven),
            sat_merge_refuted: self
                .sat_merge_refuted
                .saturating_sub(earlier.sat_merge_refuted),
            sat_merge_budget_out: self
                .sat_merge_budget_out
                .saturating_sub(earlier.sat_merge_budget_out),
            sim_words: self.sim_words.saturating_sub(earlier.sim_words),
            refine_rounds: self.refine_rounds.saturating_sub(earlier.refine_rounds),
            par_tasks: self.par_tasks.saturating_sub(earlier.par_tasks),
        }
    }

    /// The counters as `(name, value)` pairs, in a stable order — the one
    /// serialization (flow reports, bench JSON) iterates.
    pub fn pairs(&self) -> [(&'static str, u64); 9] {
        [
            ("cuts_reused", self.cuts_reused),
            ("cuts_computed", self.cuts_computed),
            ("sat_merge_calls", self.sat_merge_calls),
            ("sat_merge_proven", self.sat_merge_proven),
            ("sat_merge_refuted", self.sat_merge_refuted),
            ("sat_merge_budget_out", self.sat_merge_budget_out),
            ("sim_words", self.sim_words),
            ("refine_rounds", self.refine_rounds),
            ("par_tasks", self.par_tasks),
        ]
    }

    /// Whether every counter is zero (an empty delta).
    pub fn is_zero(&self) -> bool {
        self.pairs().iter().all(|&(_, v)| v == 0)
    }
}

/// Reads every counter.
pub fn snapshot() -> Counters {
    Counters {
        cuts_reused: CUTS_REUSED.load(Relaxed),
        cuts_computed: CUTS_COMPUTED.load(Relaxed),
        sat_merge_calls: SAT_MERGE_CALLS.load(Relaxed),
        sat_merge_proven: SAT_MERGE_PROVEN.load(Relaxed),
        sat_merge_refuted: SAT_MERGE_REFUTED.load(Relaxed),
        sat_merge_budget_out: SAT_MERGE_BUDGET_OUT.load(Relaxed),
        sim_words: SIM_WORDS.load(Relaxed),
        refine_rounds: REFINE_ROUNDS.load(Relaxed),
        par_tasks: PAR_TASKS.load(Relaxed),
    }
}

pub(crate) fn add_cuts_reused(n: u64) {
    CUTS_REUSED.fetch_add(n, Relaxed);
}

pub(crate) fn add_cuts_computed(n: u64) {
    CUTS_COMPUTED.fetch_add(n, Relaxed);
}

pub(crate) fn add_sat_merge_call() {
    SAT_MERGE_CALLS.fetch_add(1, Relaxed);
}

pub(crate) fn add_sat_merge_proven() {
    SAT_MERGE_PROVEN.fetch_add(1, Relaxed);
}

pub(crate) fn add_sat_merge_refuted() {
    SAT_MERGE_REFUTED.fetch_add(1, Relaxed);
}

pub(crate) fn add_sat_merge_budget_out() {
    SAT_MERGE_BUDGET_OUT.fetch_add(1, Relaxed);
}

pub(crate) fn add_sim_words(n: u64) {
    SIM_WORDS.fetch_add(n, Relaxed);
}

pub(crate) fn add_refine_round() {
    REFINE_ROUNDS.fetch_add(1, Relaxed);
}

pub(crate) fn add_par_tasks(n: u64) {
    PAR_TASKS.fetch_add(n, Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_monotone_and_saturating() {
        let before = snapshot();
        add_cuts_reused(3);
        add_cuts_computed(2);
        add_par_tasks(1);
        let after = snapshot();
        let d = after.delta_since(&before);
        // Other tests may run concurrently and also bump the globals, so
        // only lower bounds are stable.
        assert!(d.cuts_reused >= 3);
        assert!(d.cuts_computed >= 2);
        assert!(d.par_tasks >= 1);
        // Reversed order saturates to zero instead of wrapping.
        let z = before.delta_since(&after);
        assert_eq!(z.cuts_reused, 0);
        assert!(!d.is_zero());
    }

    #[test]
    fn pairs_cover_every_field() {
        let c = Counters {
            cuts_reused: 1,
            cuts_computed: 2,
            sat_merge_calls: 3,
            sat_merge_proven: 4,
            sat_merge_refuted: 5,
            sat_merge_budget_out: 6,
            sim_words: 7,
            refine_rounds: 8,
            par_tasks: 9,
        };
        let sum: u64 = c.pairs().iter().map(|&(_, v)| v).sum();
        assert_eq!(sum, 45, "every field appears exactly once");
    }
}
