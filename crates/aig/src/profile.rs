//! Lightweight global performance counters for the synthesis engine.
//!
//! The hot loops (cut enumeration, SAT sweeping, signature simulation,
//! parallel dispatch) bump relaxed atomics; the flow manager snapshots
//! them around each pass so a [`crate::FlowReport`] can attribute cost
//! to a phase instead of a wall-clock blur. Counters are process-global
//! and monotone — consumers always work with deltas between two
//! [`snapshot`]s, never with absolute values.
//!
//! When several requests run concurrently in one process (the `synthd`
//! server), global deltas blur together: another thread's work lands
//! between any two snapshots. A [`JobScope`] gives each request its own
//! accumulator — every bump goes to the process-wide totals *and* to the
//! scope installed on the bumping thread, and the scope token rides the
//! vendored rayon shim's task-context hooks onto every parallel worker a
//! request's tasks fan out to, so a scope's counters are exactly the
//! work its own request performed.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

static CUTS_REUSED: AtomicU64 = AtomicU64::new(0);
static CUTS_COMPUTED: AtomicU64 = AtomicU64::new(0);
static SAT_MERGE_CALLS: AtomicU64 = AtomicU64::new(0);
static SAT_MERGE_PROVEN: AtomicU64 = AtomicU64::new(0);
static SAT_MERGE_REFUTED: AtomicU64 = AtomicU64::new(0);
static SAT_MERGE_BUDGET_OUT: AtomicU64 = AtomicU64::new(0);
static SIM_WORDS: AtomicU64 = AtomicU64::new(0);
static REFINE_ROUNDS: AtomicU64 = AtomicU64::new(0);
static PAR_TASKS: AtomicU64 = AtomicU64::new(0);

/// A consistent-enough view of every engine counter (each field is read
/// individually; the counters are independent, so tearing across fields
/// is acceptable for profiling).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Cut sets served from the incremental database without recompute.
    pub cuts_reused: u64,
    /// Cut sets enumerated from fanin cut sets.
    pub cuts_computed: u64,
    /// SAT equivalence queries issued by the sweeper.
    pub sat_merge_calls: u64,
    /// Queries that proved equivalence (a merge happened).
    pub sat_merge_proven: u64,
    /// Queries refuted by a counterexample.
    pub sat_merge_refuted: u64,
    /// Queries abandoned at the conflict budget.
    pub sat_merge_budget_out: u64,
    /// 64-pattern signature words evaluated (node visits × words).
    pub sim_words: u64,
    /// Signature-refinement rounds (class rebuilds) in the sweeper.
    pub refine_rounds: u64,
    /// Tasks dispatched to the worker pool by the parallel hot loops.
    pub par_tasks: u64,
}

impl Counters {
    /// Counter-by-counter difference `self - earlier` (saturating, so a
    /// stale snapshot can never underflow).
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        Counters {
            cuts_reused: self.cuts_reused.saturating_sub(earlier.cuts_reused),
            cuts_computed: self.cuts_computed.saturating_sub(earlier.cuts_computed),
            sat_merge_calls: self.sat_merge_calls.saturating_sub(earlier.sat_merge_calls),
            sat_merge_proven: self
                .sat_merge_proven
                .saturating_sub(earlier.sat_merge_proven),
            sat_merge_refuted: self
                .sat_merge_refuted
                .saturating_sub(earlier.sat_merge_refuted),
            sat_merge_budget_out: self
                .sat_merge_budget_out
                .saturating_sub(earlier.sat_merge_budget_out),
            sim_words: self.sim_words.saturating_sub(earlier.sim_words),
            refine_rounds: self.refine_rounds.saturating_sub(earlier.refine_rounds),
            par_tasks: self.par_tasks.saturating_sub(earlier.par_tasks),
        }
    }

    /// The counters as `(name, value)` pairs, in a stable order — the one
    /// serialization (flow reports, bench JSON) iterates.
    pub fn pairs(&self) -> [(&'static str, u64); 9] {
        [
            ("cuts_reused", self.cuts_reused),
            ("cuts_computed", self.cuts_computed),
            ("sat_merge_calls", self.sat_merge_calls),
            ("sat_merge_proven", self.sat_merge_proven),
            ("sat_merge_refuted", self.sat_merge_refuted),
            ("sat_merge_budget_out", self.sat_merge_budget_out),
            ("sim_words", self.sim_words),
            ("refine_rounds", self.refine_rounds),
            ("par_tasks", self.par_tasks),
        ]
    }

    /// Whether every counter is zero (an empty delta).
    pub fn is_zero(&self) -> bool {
        self.pairs().iter().all(|&(_, v)| v == 0)
    }
}

/// Reads every counter.
pub fn snapshot() -> Counters {
    Counters {
        cuts_reused: CUTS_REUSED.load(Relaxed),
        cuts_computed: CUTS_COMPUTED.load(Relaxed),
        sat_merge_calls: SAT_MERGE_CALLS.load(Relaxed),
        sat_merge_proven: SAT_MERGE_PROVEN.load(Relaxed),
        sat_merge_refuted: SAT_MERGE_REFUTED.load(Relaxed),
        sat_merge_budget_out: SAT_MERGE_BUDGET_OUT.load(Relaxed),
        sim_words: SIM_WORDS.load(Relaxed),
        refine_rounds: REFINE_ROUNDS.load(Relaxed),
        par_tasks: PAR_TASKS.load(Relaxed),
    }
}

/// The atomic accumulator block behind one [`JobScope`].
#[derive(Default)]
struct ScopeCounters {
    cuts_reused: AtomicU64,
    cuts_computed: AtomicU64,
    sat_merge_calls: AtomicU64,
    sat_merge_proven: AtomicU64,
    sat_merge_refuted: AtomicU64,
    sat_merge_budget_out: AtomicU64,
    sim_words: AtomicU64,
    refine_rounds: AtomicU64,
    par_tasks: AtomicU64,
}

impl ScopeCounters {
    fn load(&self) -> Counters {
        Counters {
            cuts_reused: self.cuts_reused.load(Relaxed),
            cuts_computed: self.cuts_computed.load(Relaxed),
            sat_merge_calls: self.sat_merge_calls.load(Relaxed),
            sat_merge_proven: self.sat_merge_proven.load(Relaxed),
            sat_merge_refuted: self.sat_merge_refuted.load(Relaxed),
            sat_merge_budget_out: self.sat_merge_budget_out.load(Relaxed),
            sim_words: self.sim_words.load(Relaxed),
            refine_rounds: self.refine_rounds.load(Relaxed),
            par_tasks: self.par_tasks.load(Relaxed),
        }
    }
}

/// Live scopes by token. Only consulted on a per-thread cache miss (the
/// first bump after a scope change), never in the steady-state hot path.
fn registry() -> &'static Mutex<HashMap<u64, Arc<ScopeCounters>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u64, Arc<ScopeCounters>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Scope-token allocator (0 is reserved for "no scope").
static NEXT_SCOPE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Scope token installed on this thread (0 = none). Worker threads
    /// inherit it through the rayon shim's task-context hooks.
    static CURRENT_SCOPE: Cell<u64> = const { Cell::new(0) };
    /// Cache of the current token's accumulator, refreshed on mismatch.
    static SCOPE_CACHE: RefCell<Option<(u64, Arc<ScopeCounters>)>> = const { RefCell::new(None) };
}

/// Registers the context hooks with the rayon shim (idempotent).
fn register_propagation() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        rayon::register_task_context_hooks(rayon::TaskContextHooks {
            capture: || CURRENT_SCOPE.with(|c| c.get()),
            install: |token| CURRENT_SCOPE.with(|c| c.set(token)),
        });
    });
}

/// Runs `f` against the thread's current scope accumulator, if any. A
/// scope that finished while one of its parallel tasks was still running
/// simply absorbs late bumps into a dead block — harmless by design.
fn with_scope(f: impl Fn(&ScopeCounters)) {
    let token = CURRENT_SCOPE.with(|c| c.get());
    if token == 0 {
        return;
    }
    SCOPE_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some((cached, counters)) = cache.as_ref() {
            if *cached == token {
                f(counters);
                return;
            }
        }
        let looked_up = registry()
            .lock()
            .expect("scope registry")
            .get(&token)
            .cloned();
        if let Some(counters) = looked_up {
            f(&counters);
            *cache = Some((token, counters));
        }
    });
}

/// A per-request profiling scope: every engine counter bumped on the
/// thread holding the scope — and on any rayon workers its parallel
/// tasks fan out to — accumulates into this scope in addition to the
/// process-wide totals. Scopes nest last-wins per thread; dropping one
/// restores whatever was installed when it began.
pub struct JobScope {
    token: u64,
    counters: Arc<ScopeCounters>,
    prev: u64,
}

impl JobScope {
    /// Opens a scope on the current thread.
    pub fn begin() -> Self {
        register_propagation();
        let token = NEXT_SCOPE.fetch_add(1, Relaxed);
        let counters = Arc::new(ScopeCounters::default());
        registry()
            .lock()
            .expect("scope registry")
            .insert(token, counters.clone());
        let prev = CURRENT_SCOPE.with(|c| c.replace(token));
        Self {
            token,
            counters,
            prev,
        }
    }

    /// The counters this scope has accumulated so far.
    pub fn counters(&self) -> Counters {
        self.counters.load()
    }

    /// Ends the scope and returns its accumulated counters.
    pub fn finish(self) -> Counters {
        self.counters()
    }
}

impl Drop for JobScope {
    fn drop(&mut self) {
        registry()
            .lock()
            .expect("scope registry")
            .remove(&self.token);
        CURRENT_SCOPE.with(|c| {
            if c.get() == self.token {
                c.set(self.prev);
            }
        });
    }
}

pub(crate) fn add_cuts_reused(n: u64) {
    CUTS_REUSED.fetch_add(n, Relaxed);
    with_scope(|s| {
        s.cuts_reused.fetch_add(n, Relaxed);
    });
}

pub(crate) fn add_cuts_computed(n: u64) {
    CUTS_COMPUTED.fetch_add(n, Relaxed);
    with_scope(|s| {
        s.cuts_computed.fetch_add(n, Relaxed);
    });
}

pub(crate) fn add_sat_merge_call() {
    SAT_MERGE_CALLS.fetch_add(1, Relaxed);
    with_scope(|s| {
        s.sat_merge_calls.fetch_add(1, Relaxed);
    });
}

pub(crate) fn add_sat_merge_proven() {
    SAT_MERGE_PROVEN.fetch_add(1, Relaxed);
    with_scope(|s| {
        s.sat_merge_proven.fetch_add(1, Relaxed);
    });
}

pub(crate) fn add_sat_merge_refuted() {
    SAT_MERGE_REFUTED.fetch_add(1, Relaxed);
    with_scope(|s| {
        s.sat_merge_refuted.fetch_add(1, Relaxed);
    });
}

pub(crate) fn add_sat_merge_budget_out() {
    SAT_MERGE_BUDGET_OUT.fetch_add(1, Relaxed);
    with_scope(|s| {
        s.sat_merge_budget_out.fetch_add(1, Relaxed);
    });
}

pub(crate) fn add_sim_words(n: u64) {
    SIM_WORDS.fetch_add(n, Relaxed);
    with_scope(|s| {
        s.sim_words.fetch_add(n, Relaxed);
    });
}

pub(crate) fn add_refine_round() {
    REFINE_ROUNDS.fetch_add(1, Relaxed);
    with_scope(|s| {
        s.refine_rounds.fetch_add(1, Relaxed);
    });
}

pub(crate) fn add_par_tasks(n: u64) {
    PAR_TASKS.fetch_add(n, Relaxed);
    with_scope(|s| {
        s.par_tasks.fetch_add(n, Relaxed);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_monotone_and_saturating() {
        let before = snapshot();
        add_cuts_reused(3);
        add_cuts_computed(2);
        add_par_tasks(1);
        let after = snapshot();
        let d = after.delta_since(&before);
        // Other tests may run concurrently and also bump the globals, so
        // only lower bounds are stable.
        assert!(d.cuts_reused >= 3);
        assert!(d.cuts_computed >= 2);
        assert!(d.par_tasks >= 1);
        // Reversed order saturates to zero instead of wrapping.
        let z = before.delta_since(&after);
        assert_eq!(z.cuts_reused, 0);
        assert!(!d.is_zero());
    }

    #[test]
    fn job_scope_attributes_only_its_own_work() {
        let scope = JobScope::begin();
        add_cuts_computed(5);
        // Unscoped work on another thread must not leak into this scope.
        std::thread::spawn(|| add_cuts_computed(1000))
            .join()
            .expect("bump thread");
        add_cuts_reused(2);
        let c = scope.finish();
        assert_eq!(c.cuts_computed, 5);
        assert_eq!(c.cuts_reused, 2);
    }

    #[test]
    fn job_scope_propagates_to_parallel_workers() {
        use rayon::prelude::*;
        let scope = JobScope::begin();
        (0..64usize).into_par_iter().for_each(|_| add_sim_words(1));
        let c = scope.finish();
        assert_eq!(
            c.sim_words, 64,
            "scoped bumps from rayon workers must land in the scope"
        );
    }

    #[test]
    fn job_scopes_nest_and_restore() {
        let outer = JobScope::begin();
        add_refine_round();
        {
            let inner = JobScope::begin();
            add_refine_round();
            let ci = inner.finish();
            assert_eq!(ci.refine_rounds, 1, "inner sees only inner work");
        }
        add_refine_round();
        let co = outer.finish();
        assert_eq!(
            co.refine_rounds, 2,
            "outer resumes after the inner scope ends (inner bumps are the inner scope's)"
        );
    }

    #[test]
    fn pairs_cover_every_field() {
        let c = Counters {
            cuts_reused: 1,
            cuts_computed: 2,
            sat_merge_calls: 3,
            sat_merge_proven: 4,
            sat_merge_refuted: 5,
            sat_merge_budget_out: 6,
            sim_words: 7,
            refine_rounds: 8,
            par_tasks: 9,
        };
        let sum: u64 = c.pairs().iter().map(|&(_, v)| v).sum();
        assert_eq!(sum, 45, "every field appears exactly once");
    }
}
