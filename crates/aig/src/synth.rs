//! The `resyn2rs`-style synthesis script: interleaved balancing and
//! refactoring with revert-on-regression.

use crate::balance::balance;
use crate::graph::Aig;
use crate::refactor::refactor;

/// Synthesizes an AIG: cleanup, then alternating balance/refactor rounds.
///
/// Every step is accepted only if it improves the (depth, size) objective
/// lexicographically the way ABC's scripts do in aggregate: `balance` must
/// not worsen size by more than it helps depth, `refactor` must strictly
/// reduce the AND count. Two rounds suffice to reach a fixpoint on the
/// benchmark set.
///
/// In debug builds, every accepted pass is SAT-proven equivalent to its
/// input ([`crate::check::check_equivalence`]); an unsound pass panics
/// with the counterexample pattern instead of silently corrupting the
/// network.
///
/// # Example
///
/// ```
/// use aig::{Aig, synthesize, equivalent};
///
/// let mut aig = Aig::new();
/// let xs: Vec<_> = (0..6).map(|_| aig.input()).collect();
/// let mut acc = xs[0];
/// for &x in &xs[1..] {
///     acc = aig.and(acc, x); // deliberately serial
/// }
/// aig.output(acc);
/// let opt = synthesize(&aig);
/// assert!(opt.depth() < aig.depth());
/// assert!(equivalent(&aig, &opt, 7, 32));
/// ```
pub fn synthesize(aig: &Aig) -> Aig {
    let mut best = aig.cleanup();
    for _round in 0..2 {
        let balanced = balance(&best);
        if accept_balance(&best, &balanced) {
            debug_assert_pass_sound(&best, &balanced, "balance");
            best = balanced;
        }
        let refactored = refactor(&best);
        if refactored.and_count() < best.and_count() {
            debug_assert_pass_sound(&best, &refactored, "refactor");
            best = refactored;
        }
    }
    // Final balance for depth.
    let balanced = balance(&best);
    if accept_balance(&best, &balanced) {
        debug_assert_pass_sound(&best, &balanced, "balance");
        best = balanced;
    }
    best
}

/// Debug-build soundness gate: an accepted pass must be SAT-provably
/// equivalent to its input. Compiled out of release builds.
fn debug_assert_pass_sound(before: &Aig, after: &Aig, pass: &str) {
    if cfg!(debug_assertions) {
        match crate::check::check_equivalence(before, after) {
            Ok(crate::check::Equivalence::Equal) => {}
            Ok(crate::check::Equivalence::Counterexample(cex)) => {
                panic!("{pass} changed the function; counterexample {cex:?}")
            }
            Err(e) => panic!("{pass} changed the interface: {e}"),
        }
    }
}

/// Accepts a balanced candidate when it helps depth without an outsized
/// size regression, or shrinks at equal depth.
fn accept_balance(current: &Aig, candidate: &Aig) -> bool {
    let (d0, n0) = (current.depth(), current.and_count());
    let (d1, n1) = (candidate.depth(), candidate.and_count());
    if d1 < d0 {
        n1 <= n0 + n0 / 5
    } else {
        d1 == d0 && n1 <= n0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::equivalent;
    use crate::graph::Lit;

    #[test]
    fn synthesis_preserves_function() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..10).map(|_| aig.input()).collect();
        // Mix of structures: parity, majority-ish, chains.
        let parity = aig.xor_many(&xs[..6]);
        let mut chain = xs[6];
        for &x in &xs[7..] {
            chain = aig.or(chain, x);
        }
        let t1 = aig.and(xs[0], xs[5]);
        let mixed = aig.mux(parity, chain, t1);
        aig.output(parity);
        aig.output(chain);
        aig.output(mixed);
        let opt = synthesize(&aig);
        assert!(equivalent(&aig, &opt, 0xA5, 64));
        assert!(opt.and_count() <= aig.and_count());
        assert!(opt.depth() <= aig.depth());
    }

    #[test]
    fn synthesis_never_grows() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        // Redundant logic: (a&b)|(a&!b) = a.
        let t1 = aig.and(a, b);
        let t2 = aig.and(a, b.not());
        let f = aig.or(t1, t2);
        let g = aig.and(f, c);
        aig.output(g);
        let opt = synthesize(&aig);
        assert!(equivalent(&aig, &opt, 77, 16));
        assert!(
            opt.and_count() < aig.and_count(),
            "redundancy should be removed: {} vs {}",
            opt.and_count(),
            aig.and_count()
        );
    }

    #[test]
    fn idempotent_fixpoint() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..5).map(|_| aig.input()).collect();
        let f = aig.xor_many(&xs);
        aig.output(f);
        let once = synthesize(&aig);
        let twice = synthesize(&once);
        assert_eq!(once.and_count(), twice.and_count());
        assert_eq!(once.depth(), twice.depth());
    }
}
